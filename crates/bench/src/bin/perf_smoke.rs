//! A `cargo bench`-free perf smoke check with two measurements on the `diff_scaling`
//! largest size:
//!
//! 1. **seed vs keyed** — one large scenario differenced by the frozen seed-style
//!    baseline (owned `EventKey`s, sequential) and by the keyed pipeline (interned
//!    `CompactEventKey`s, parallel view correlation), printing wall time and `CostMeter`
//!    compare/byte counts for both plus the wall-time speedup (the format recorded in
//!    `BENCH_1.json`);
//! 2. **prepared reuse** — the same trace pair diffed 3 times cold (each one-shot
//!    `views_diff` call re-deriving keys and webs) vs 3 times through an
//!    `rprism::Engine` whose `PreparedTrace` handles build both artifacts once and
//!    reuse them, printing the `prepared_reuse_speedup` (the headline number recorded
//!    in `BENCH_2.json`);
//! 3. **trace i/o** — the same large trace serialized and re-parsed through
//!    `rprism-format` in both encodings (in memory), printing bytes per entry and
//!    write/read throughput in entries per second — the ingestion budget of the
//!    on-disk pipeline;
//! 4. **streaming ingest** — the pair stored as `.rtr` files and brought back two
//!    ways: `load_trace` + artifact warm-up (the load-then-prepare path) vs
//!    `load_prepared` (the one-pass bounded-memory pipeline), printing wall time and
//!    peak heap growth for both plus the peak-memory reduction, and asserting the two
//!    kinds of handles diff identically (the numbers recorded in `BENCH_4.json`).
//!    Peaks come from a live/peak tracking global allocator.
//! 5. **server throughput** — an `rprism-server` daemon on a loopback port holding
//!    the stored pair; repeated remote diff requests (prepared/correlation cache hits
//!    doing the work) fired by 1 and by 4 concurrent clients over the same total
//!    request count, printing requests/second per configuration and the resulting
//!    concurrency speedup (the numbers recorded in `BENCH_5.json`). The speedup is
//!    hardware-dependent: the worker pool scales request throughput with available
//!    cores, so a single-core container pins it near 1×.
//! 6. **put durability** — the same batch of distinct blobs stored into a fresh
//!    repository with the crash-safe commit sequence (staging fsync → rename →
//!    directory fsync) and with `durable: false` (rename-commit only), printing
//!    puts per second for both and the fsync cost ratio — the price of the
//!    chaos-suite crash guarantees, and what `serve --no-fsync` buys back.
//! 7. **check throughput** — a large well-formed `gen` trace streamed through the
//!    `rprism-check` rule engine (`Engine::check_reader`: decode + all 20 rules,
//!    including the vector-clock race detector, in one bounded-memory pass),
//!    printing entries per second — the budget of a `check`-on-ingest gate (the
//!    number recorded in `BENCH_6.json`).
//! 8. **anchored scaling** — a 100k-entry well-formed `gen` trace against a copy with
//!    scattered mutations, differenced by the exact DP family (linear-space
//!    Hirschberg, the only exact configuration that fits in memory at this size) and
//!    by the anchored patience/histogram mode, printing wall time, matched pairs and
//!    compare ops for both plus the wall-time speedup and the fraction of the exact
//!    LCS the anchored matching recovers (the numbers recorded in `BENCH_7.json`;
//!    size override: `RPRISM_BENCH_ANCHORED_ENTRIES`).
//! 9. **watch latency** — the ordinary-evolution pair diffed live through
//!    `Engine::watch` (256-entry chunks, the streaming-ingest batch quantum):
//!    time to the first provisional event after the watch starts, verdict lag
//!    after the last entry arrives (`finish()` wall), and total watch wall vs
//!    the batch `Engine::diff` of the same pair, with identical matchings
//!    asserted (the numbers recorded in `BENCH_8.json`).
//! 10. **obs overhead** — the stored pair streamed in and diffed through an engine
//!     with the disabled observer (every recording call inert) vs one recording
//!     into an enabled `rprism-obs` domain (pipeline spans, phase timers,
//!     histograms, span ring), printing wall time for both and the overhead
//!     ratio, asserted ≤ 3% (above a small absolute jitter floor) with identical
//!     diffs (the numbers recorded in `BENCH_9.json`).
//!
//! The `--json` flag emits all numbers as one JSON object.
//!
//! Run with `cargo run -p rprism-bench --bin perf_smoke --release [-- --json] [iterations]`.

use std::time::Duration;

use rprism::Engine;
use rprism_bench::measure::{sample_env, TrackingAllocator};
use rprism_bench::seed_baseline::seed_views_diff;
use rprism_diff::{TraceDiffResult, ViewsDiffOptions};
use rprism_lang::parser::parse_program;
use rprism_trace::{Trace, TraceMeta};
use rprism_vm::{run_traced, VmConfig};

#[global_allocator]
static GLOBAL: TrackingAllocator = TrackingAllocator;

/// The `diff_scaling` bench program shape at its largest configured size, parameterized
/// by the range lower bound and the iteration count of each side. `(32, n)` vs `(1, n)`
/// is the heavily-divergent regression of the seed-vs-keyed comparison; the
/// prepared-reuse measurement uses `(32, n)` vs `(32, n + 4)` — ordinary evolution that
/// appends a few calls, the §4.1 expected-differences shape where almost all of a cold
/// call's cost *is* the preparation.
fn trace_pair(sides: [(i64, usize); 2]) -> (Trace, Trace) {
    let src = |(min, iterations): (i64, usize)| {
        format!(
            r#"
            class Ctr extends Object {{ Int i; }}
            class Range extends Object {{ Int min; Int max; }}
            class App extends Object {{
                Range r;
                Int hits;
                Unit setup() {{ this.r = new Range({min}, 127); }}
                Unit check(Int c) {{
                    if ((c >= this.r.min) && (c <= this.r.max)) {{ this.hits = this.hits + 1; }}
                }}
            }}
            main {{
                let a = new App(null, 0);
                a.setup();
                let c = new Ctr(0);
                while (c.i < {iterations}) {{
                    a.check(c.i % 200);
                    c.i = c.i + 1;
                }}
            }}
            "#
        )
    };
    let run = |source: &str, label: &str| {
        run_traced(
            &parse_program(source).unwrap(),
            TraceMeta::new(label, "", ""),
            VmConfig::default(),
        )
        .unwrap()
        .trace
    };
    (run(&src(sides[0]), "old"), run(&src(sides[1]), "new"))
}

struct Measured {
    wall: Duration,
    result: TraceDiffResult,
}

fn measure(samples: usize, mut f: impl FnMut() -> TraceDiffResult) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..samples {
        let result = f();
        let wall = result.elapsed;
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(Measured { wall, result });
        }
    }
    best.expect("at least one sample")
}

/// One-shot differencing including artifact preparation, exactly what a pre-session
/// caller pays on every call. This *is* the deprecated path — measured on purpose as the
/// cold baseline of the reuse comparison.
#[allow(deprecated)]
fn cold_views_diff(left: &Trace, right: &Trace, options: &ViewsDiffOptions) -> TraceDiffResult {
    rprism_diff::views_diff(left, right, options)
}

struct ReuseMeasured {
    cold_wall: Duration,
    prepared_wall: Duration,
    repeats: usize,
}

/// Times `repeats` diffs of the same pair, cold (per-call preparation) vs through
/// engine-prepared handles (preparation paid once, on the first diff). Fresh handles are
/// created per sample so every sample's first diff pays the one-time preparation; best
/// sample wins on both sides, and the results are asserted identical.
fn measure_reuse(
    samples: usize,
    repeats: usize,
    old: &Trace,
    new: &Trace,
    options: &ViewsDiffOptions,
) -> ReuseMeasured {
    let engine = Engine::builder().views_options(options.clone()).build();
    let mut cold_wall = Duration::MAX;
    let mut prepared_wall = Duration::MAX;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        let mut cold_last = None;
        for _ in 0..repeats {
            cold_last = Some(cold_views_diff(old, new, options));
        }
        cold_wall = cold_wall.min(start.elapsed());

        let (pold, pnew) = (
            engine.prepare(old.clone()),
            engine.prepare(new.clone()),
        );
        let start = std::time::Instant::now();
        let mut prepared_last = None;
        for _ in 0..repeats {
            prepared_last = Some(engine.diff(&pold, &pnew).expect("views never fails"));
        }
        prepared_wall = prepared_wall.min(start.elapsed());

        assert_eq!(pold.web_build_count(), 1, "web must be built exactly once");
        assert_eq!(
            cold_last.unwrap().matching.normalized_pairs(),
            prepared_last.unwrap().matching.normalized_pairs(),
            "prepared-handle diff diverged from the cold path"
        );
    }
    ReuseMeasured {
        cold_wall,
        prepared_wall,
        repeats,
    }
}

struct IoMeasured {
    encoding: rprism_format::Encoding,
    bytes: usize,
    write_wall: Duration,
    read_wall: Duration,
}

/// Times in-memory serialization and deserialization of `trace` in both encodings,
/// asserting exact round trips (best of `samples` on each side).
fn measure_trace_io(samples: usize, trace: &Trace) -> Vec<IoMeasured> {
    use rprism_format::{trace_from_bytes, trace_to_bytes, Encoding};
    [Encoding::Binary, Encoding::Jsonl]
        .into_iter()
        .map(|encoding| {
            let mut bytes = Vec::new();
            let mut write_wall = Duration::MAX;
            for _ in 0..samples {
                let start = std::time::Instant::now();
                bytes = trace_to_bytes(trace, encoding).expect("in-memory write");
                write_wall = write_wall.min(start.elapsed());
            }
            let mut read_wall = Duration::MAX;
            for _ in 0..samples {
                let start = std::time::Instant::now();
                let decoded = trace_from_bytes(&bytes).expect("round trip");
                read_wall = read_wall.min(start.elapsed());
                assert_eq!(&decoded, trace, "{encoding} round trip diverged");
            }
            IoMeasured {
                encoding,
                bytes: bytes.len(),
                write_wall,
                read_wall,
            }
        })
        .collect()
}

struct IngestMeasured {
    entries: usize,
    full_wall: Duration,
    full_peak: u64,
    streaming_wall: Duration,
    streaming_peak: u64,
}

impl IngestMeasured {
    fn peak_reduction(&self) -> f64 {
        self.full_peak as f64 / self.streaming_peak.max(1) as f64
    }
}

/// Stores the pair as binary `.rtr` files and measures load-then-prepare (whole trace +
/// `keyed()`/`web()` warm-up) against the streaming prepare pipeline: wall time and
/// peak heap growth per path (best wall / max peak over `samples`), with the resulting
/// handles asserted to diff identically.
fn measure_streaming_ingest(samples: usize, old: &Trace, new: &Trace) -> IngestMeasured {
    let dir = std::env::temp_dir().join(format!("rprism-perf-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let engine = Engine::new();
    let pa = dir.join("old.rtr");
    let pb = dir.join("new.rtr");
    engine.store_trace(&engine.prepare(old.clone()), &pa).unwrap();
    engine.store_trace(&engine.prepare(new.clone()), &pb).unwrap();

    let mut measured = IngestMeasured {
        entries: old.len() + new.len(),
        full_wall: Duration::MAX,
        full_peak: 0,
        streaming_wall: Duration::MAX,
        streaming_peak: 0,
    };
    for _ in 0..samples {
        let baseline = TrackingAllocator::reset_peak();
        let start = std::time::Instant::now();
        let fa = engine.load_trace(&pa).unwrap();
        let fb = engine.load_trace(&pb).unwrap();
        fa.keyed();
        fa.web();
        fb.keyed();
        fb.web();
        measured.full_wall = measured.full_wall.min(start.elapsed());
        measured.full_peak = measured
            .full_peak
            .max(TrackingAllocator::peak_since(baseline));

        let baseline = TrackingAllocator::reset_peak();
        let start = std::time::Instant::now();
        let sa = engine.load_prepared(&pa).unwrap();
        let sb = engine.load_prepared(&pb).unwrap();
        measured.streaming_wall = measured.streaming_wall.min(start.elapsed());
        measured.streaming_peak = measured
            .streaming_peak
            .max(TrackingAllocator::peak_since(baseline));

        // Equivalence: streamed handles must produce the exact diff of full handles.
        let full = engine.diff(&fa, &fb).expect("views never fails");
        let streamed = engine.diff(&sa, &sb).expect("views never fails");
        assert_eq!(
            full.matching.normalized_pairs(),
            streamed.matching.normalized_pairs(),
            "streaming-prepared diff diverged from load-then-prepare"
        );
        assert_eq!(full.cost.compare_ops, streamed.cost.compare_ops);
    }
    std::fs::remove_dir_all(&dir).ok();
    measured
}

struct ServerThroughputMeasured {
    total_requests: usize,
    threads: usize,
    one_client_wall: Duration,
    four_client_wall: Duration,
    /// Wall time of the same single-client request stream against a server whose
    /// prepared-handle budget fits nothing: every request re-streams both blobs and
    /// rebuilds the correlation — what each request would cost without the caches.
    cold_cache_wall: Duration,
}

impl ServerThroughputMeasured {
    fn requests_per_second(&self, wall: Duration) -> f64 {
        self.total_requests as f64 / wall.as_secs_f64().max(1e-12)
    }

    /// Throughput at 4 concurrent clients over throughput at 1 client (same total
    /// request count). Scales with available cores; ~1x on a single-core host.
    fn concurrency_speedup(&self) -> f64 {
        self.one_client_wall.as_secs_f64() / self.four_client_wall.as_secs_f64().max(1e-12)
    }

    /// Warm-cache throughput over cold-cache throughput (single client): how much of
    /// each request the prepared/correlation caches actually absorb.
    fn prepared_cache_speedup(&self) -> f64 {
        self.cold_cache_wall.as_secs_f64() / self.one_client_wall.as_secs_f64().max(1e-12)
    }
}

/// Stores the pair in a fresh repository behind an `rprism-server` daemon, warms its
/// prepared/correlation caches with one request, then fires the same total number of
/// repeated remote diffs from 1 and from 4 concurrent clients (best wall time of
/// `samples` runs each). Every request is a cache hit — the measurement isolates how
/// the shared-engine worker pool scales request throughput with concurrency.
fn measure_server_throughput(samples: usize, old: &Trace, new: &Trace) -> ServerThroughputMeasured {
    use rprism_server::{Client, Server, ServerConfig};

    const TIMEOUT: Duration = Duration::from_secs(120);
    const TOTAL_REQUESTS: usize = 48;
    // One worker per measured client plus one for the admin connection (a connected
    // client occupies a worker for its whole lifetime, so the pool must cover the
    // peak connection count or the extra clients queue).
    const THREADS: usize = 5;

    let dir = std::env::temp_dir().join(format!("rprism-perf-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create repo dir");
    let mut config = ServerConfig::new("127.0.0.1:0", &dir);
    config.threads = THREADS;
    let server = Server::bind(config).expect("bind server");
    let addr = server.local_addr().expect("local addr").to_string();
    let running = std::thread::spawn(move || server.run().expect("server run"));

    let mut admin = Client::connect(&addr, TIMEOUT).expect("connect");
    let left = admin
        .put_bytes(rprism_format::trace_to_bytes(old, rprism_format::Encoding::Binary).unwrap())
        .expect("put old")
        .hash;
    let right = admin
        .put_bytes(rprism_format::trace_to_bytes(new, rprism_format::Encoding::Binary).unwrap())
        .expect("put new")
        .hash;
    // Warm: stream both handles in and build the pair correlation once.
    let warm = admin.diff(left, right, 0).expect("warm diff");

    // One timed window per configuration: clients connect, a barrier releases them
    // together, a second barrier marks the last completed request.
    let timed = |clients: usize| -> Duration {
        let per_client = TOTAL_REQUESTS / clients;
        let mut best = Duration::MAX;
        for _ in 0..samples {
            let barrier = std::sync::Barrier::new(clients + 1);
            let mut wall = Duration::ZERO;
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    let addr = &addr;
                    let barrier = &barrier;
                    let warm = &warm;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr, TIMEOUT).expect("connect");
                        barrier.wait();
                        for _ in 0..per_client {
                            let diff = client.diff(left, right, 0).expect("remote diff");
                            assert_eq!(
                                diff.compare_ops, warm.compare_ops,
                                "remote diffs must be deterministic across clients"
                            );
                        }
                        barrier.wait();
                    });
                }
                barrier.wait(); // all clients connected and ready
                let start = std::time::Instant::now();
                barrier.wait(); // all clients finished their requests
                wall = start.elapsed();
            });
            best = best.min(wall);
        }
        best
    };

    let one_client_wall = timed(1);
    let four_client_wall = timed(4);

    let stats = admin.stats().expect("stats");
    assert_eq!(
        stats.correlation_builds, 1,
        "repeated diffs must be served by the correlation cache"
    );
    // The scaling gate, applied where it is physically measurable: with >= 4 cores
    // the 4-client configuration must reach >= 1.8x the single-client throughput
    // (anything less means the worker pool serializes — e.g. a lock held across the
    // diff). A single-core host pins the ratio at ~1x by construction, so the gate
    // would only measure the scheduler there; the artifact records host_cores so the
    // recorded ratio is interpretable either way.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores >= 4 {
        let speedup = one_client_wall.as_secs_f64() / four_client_wall.as_secs_f64().max(1e-12);
        assert!(
            speedup >= 1.8,
            "4-client throughput speedup {speedup:.2}x < 1.8x on a {cores}-core host: \
             the worker pool is not serving requests concurrently"
        );
    }
    admin.shutdown().expect("shutdown");
    running.join().expect("server thread");

    // The cold-cache baseline: a server whose prepared budget holds nothing, so every
    // request streams both blobs back in and rebuilds the pair correlation — the
    // per-request cost the warm caches absorb.
    let mut cold_config = ServerConfig::new("127.0.0.1:0", &dir);
    cold_config.threads = THREADS;
    cold_config.cache_budget = 1;
    let cold_server = Server::bind(cold_config).expect("bind cold server");
    let cold_addr = cold_server.local_addr().expect("local addr").to_string();
    let cold_running = std::thread::spawn(move || cold_server.run().expect("cold server run"));
    // One timed pass: with nothing cached, every request costs the same, so repeated
    // sampling only re-measures the identical cold path.
    let mut client = Client::connect(&cold_addr, TIMEOUT).expect("connect");
    let start = std::time::Instant::now();
    for _ in 0..TOTAL_REQUESTS {
        let diff = client.diff(left, right, 0).expect("cold remote diff");
        assert_eq!(diff.compare_ops, warm.compare_ops);
    }
    let cold_wall = start.elapsed();
    client.shutdown().expect("shutdown request");
    cold_running.join().expect("cold server thread");
    std::fs::remove_dir_all(&dir).ok();

    ServerThroughputMeasured {
        total_requests: TOTAL_REQUESTS,
        threads: THREADS,
        one_client_wall,
        four_client_wall,
        cold_cache_wall: cold_wall,
    }
}

struct DurabilityMeasured {
    puts: usize,
    durable_wall: Duration,
    fast_wall: Duration,
}

impl DurabilityMeasured {
    fn puts_per_second(&self, wall: Duration) -> f64 {
        self.puts as f64 / wall.as_secs_f64().max(1e-12)
    }

    /// Durable put cost over non-durable: how much the fsync pair costs per commit.
    fn fsync_cost_ratio(&self) -> f64 {
        self.durable_wall.as_secs_f64() / self.fast_wall.as_secs_f64().max(1e-12)
    }
}

/// Stores a batch of distinct blobs into a fresh repository per sample, once with the
/// crash-safe commit sequence (`durable: true`: staging fsync → rename → directory
/// fsync) and once with `durable: false` (rename-commit only, the pre-chaos behavior
/// and `serve --no-fsync`). Best wall per mode; blobs are pre-encoded so only the
/// storage path is timed.
fn measure_put_durability(samples: usize, old: &Trace) -> DurabilityMeasured {
    use rprism_server::{RepoOptions, TraceRepo};

    const PUTS: usize = 16;
    let entries = old.len().min(400);
    let blobs: Vec<Vec<u8>> = (0..PUTS)
        .map(|i| {
            // Distinct labels give distinct content hashes over identical entries,
            // so every put commits a new blob instead of deduplicating.
            let mut trace = Trace::new(TraceMeta::new(format!("durability-{i}"), "", ""));
            for entry in old.iter().take(entries) {
                trace.push(entry.clone());
            }
            rprism_format::trace_to_bytes(&trace, rprism_format::Encoding::Binary).unwrap()
        })
        .collect();

    let timed = |durable: bool| -> Duration {
        let mut best = Duration::MAX;
        for sample in 0..samples {
            let dir = std::env::temp_dir().join(format!(
                "rprism-perf-durability-{}-{durable}-{sample}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create repo dir");
            let repo = TraceRepo::open_with(
                &dir,
                Engine::new(),
                RepoOptions {
                    durable,
                    ..RepoOptions::default()
                },
            )
            .expect("open repo");
            let start = std::time::Instant::now();
            for bytes in &blobs {
                let (_, deduped, _) = repo.put_bytes(bytes).expect("put");
                assert!(!deduped, "durability blobs must be distinct");
            }
            best = best.min(start.elapsed());
            drop(repo);
            std::fs::remove_dir_all(&dir).ok();
        }
        best
    };

    DurabilityMeasured {
        puts: PUTS,
        durable_wall: timed(true),
        fast_wall: timed(false),
    }
}

struct AnchoredMeasured {
    entries: [usize; 2],
    mutations: usize,
    exact_wall: Duration,
    exact_pairs: usize,
    exact_compare_ops: u64,
    anchored_wall: Duration,
    anchored_pairs: usize,
    anchored_compare_ops: u64,
}

impl AnchoredMeasured {
    fn speedup(&self) -> f64 {
        self.exact_wall.as_secs_f64() / self.anchored_wall.as_secs_f64().max(1e-12)
    }

    /// Fraction of the exact LCS the anchored matching recovered (anchors commit
    /// early, so the anchored matching is valid but may be smaller).
    fn recovery(&self) -> f64 {
        self.anchored_pairs as f64 / self.exact_pairs.max(1) as f64
    }
}

/// The `anchored_scaling` measurement (BENCH_7): a 100k-entry well-formed `gen` trace
/// against a copy with scattered mutations (every 997th entry dropped, every 1499th
/// duplicated — the "huge trace, sparse change" shape anchoring targets), differenced
/// by the exact DP family and by the anchored mode.
///
/// The exact baseline is the *linear-space* configuration (`lcs_diff` with
/// Hirschberg): the only exact DP-family configuration that fits in memory at this
/// size — the quadratic table would need `4 * n * m` ≈ 40 GB — and it is measured
/// once (it dominates wall time; its cost is deterministic). The anchored side runs
/// best-of-`samples` with default options. Override the size with
/// `RPRISM_BENCH_ANCHORED_ENTRIES` (CI uses a reduced size).
fn measure_anchored_scaling(samples: usize) -> AnchoredMeasured {
    use rprism_diff::{anchored_diff, lcs_diff, AnchoredDiffOptions, LcsDiffOptions};
    use rprism_trace::testgen::{GenProfile, Rng};

    let entries = std::env::var("RPRISM_BENCH_ANCHORED_ENTRIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000usize);
    let base = GenProfile::WellFormed.generate(&mut Rng::new(41), entries);
    let mut new = Trace::new(TraceMeta::new("anchored-new", "", ""));
    let mut mutations = 0usize;
    for (i, entry) in base.iter().enumerate() {
        if i % 997 == 996 {
            mutations += 1; // deletion
            continue;
        }
        new.push(entry.clone());
        if i % 1499 == 1498 {
            mutations += 1; // insertion
            new.push(entry.clone());
        }
    }

    let exact = measure(1, || {
        lcs_diff(
            &base,
            &new,
            &LcsDiffOptions::builder().linear_space(true).build(),
        )
        .expect("linear-space LCS fits in memory")
    });
    let anchored = measure(samples, || {
        anchored_diff(&base, &new, &AnchoredDiffOptions::default())
    });

    let exact_pairs = exact.result.matching.normalized_pairs().len();
    let anchored_pairs = anchored.result.matching.normalized_pairs().len();
    assert!(
        anchored_pairs <= exact_pairs,
        "anchored matched more pairs ({anchored_pairs}) than the exact LCS ({exact_pairs})"
    );

    AnchoredMeasured {
        entries: [base.len(), new.len()],
        mutations,
        exact_wall: exact.wall,
        exact_pairs,
        exact_compare_ops: exact.result.cost.compare_ops,
        anchored_wall: anchored.wall,
        anchored_pairs,
        anchored_compare_ops: anchored.result.cost.compare_ops,
    }
}

struct CheckMeasured {
    entries: usize,
    bytes: usize,
    wall: Duration,
}

impl CheckMeasured {
    fn entries_per_second(&self) -> f64 {
        self.entries as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Streams a large well-formed `gen` trace (serialized binary, in memory) through
/// `Engine::check_reader` — one decode + rule-engine fold per sample, best wall wins.
/// The trace must check clean: a diagnostic here would mean the generator or a rule
/// regressed, which would also skew the measurement with diagnostic formatting.
fn measure_check_throughput(samples: usize) -> CheckMeasured {
    use rprism_trace::testgen::{GenProfile, Rng};

    const ENTRIES: usize = 100_000;
    let trace = GenProfile::WellFormed.generate(&mut Rng::new(6), ENTRIES);
    let bytes =
        rprism_format::trace_to_bytes(&trace, rprism_format::Encoding::Binary).unwrap();
    let engine = Engine::new();
    let mut wall = Duration::MAX;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        let report = engine.check_reader(&bytes[..]).expect("check streams");
        wall = wall.min(start.elapsed());
        assert!(report.is_clean(), "the well-formed profile must check clean");
        assert_eq!(report.entries, ENTRIES);
    }
    CheckMeasured {
        entries: ENTRIES,
        bytes: bytes.len(),
        wall,
    }
}

struct WatchLatencyMeasured {
    entries: usize,
    chunk: usize,
    batch_wall: Duration,
    first_event_wall: Duration,
    verdict_lag: Duration,
    total_wall: Duration,
    provisional_events: usize,
}

/// The `watch_latency` measurement (BENCH_8): the ordinary-evolution pair streamed
/// through a live [`Engine::watch`] in 256-entry chunks. Three numbers per sample —
/// time from watch start to the first provisional event, verdict lag after the last
/// entry (the `finish()` reconciliation), total watch wall — against the batch diff
/// of the same pair; best total wins, matchings are asserted identical.
fn measure_watch_latency(samples: usize, old: &Trace, new: &Trace) -> WatchLatencyMeasured {
    const CHUNK: usize = 256;
    let engine = Engine::new();
    let pold = engine.prepare(old.clone());
    let pnew = engine.prepare(new.clone());
    let batch = measure(samples, || engine.diff(&pold, &pnew).expect("views never fails"));

    let mut measured = WatchLatencyMeasured {
        entries: new.len(),
        chunk: CHUNK,
        batch_wall: batch.wall,
        first_event_wall: Duration::MAX,
        verdict_lag: Duration::MAX,
        total_wall: Duration::MAX,
        provisional_events: 0,
    };
    for _ in 0..samples {
        let start = std::time::Instant::now();
        let mut watch = engine.watch(&pold, new.meta.clone());
        let mut first_event = None;
        let mut provisional = 0usize;
        for slice in new.entries.chunks(CHUNK) {
            provisional += watch.push_entries(slice).expect("no ingest gate").len();
            if first_event.is_none() && provisional > 0 {
                first_event = Some(start.elapsed());
            }
        }
        let eof = start.elapsed();
        let outcome = watch.finish().expect("no ingest gate");
        let total = start.elapsed();
        assert_eq!(
            outcome.result.matching.normalized_pairs(),
            batch.result.matching.normalized_pairs(),
            "live watch diverged from the batch diff"
        );
        assert!(provisional > 0, "the evolution pair must stream events");
        if total < measured.total_wall {
            measured.total_wall = total;
            measured.first_event_wall = first_event.unwrap_or(total);
            measured.verdict_lag = total - eof;
            measured.provisional_events = provisional;
        }
    }
    measured
}

struct ObsOverheadMeasured {
    entries: usize,
    stripped_wall: Duration,
    instrumented_wall: Duration,
}

impl ObsOverheadMeasured {
    /// Fractional wall-time cost of full instrumentation: `instrumented/stripped - 1`.
    fn overhead_ratio(&self) -> f64 {
        self.instrumented_wall.as_secs_f64() / self.stripped_wall.as_secs_f64().max(1e-12)
            - 1.0
    }
}

/// The `obs_overhead` measurement (BENCH_9): the stored pair streamed in
/// (`load_prepared`) and diffed per sample, through an engine with the disabled
/// observer vs one recording into an enabled [`rprism::Obs`] domain — the full
/// instrumentation path: `engine.load` spans, per-phase decode/key/web timers,
/// log-scale histograms and the bounded span ring. Best wall per side over
/// `samples`, identical diffs asserted, and the overhead gated at 3% (beyond a
/// 2 ms absolute jitter floor, below which the ratio measures scheduler noise,
/// not instrumentation).
fn measure_obs_overhead(samples: usize, old: &Trace, new: &Trace) -> ObsOverheadMeasured {
    use rprism::Obs;

    let dir = std::env::temp_dir().join(format!("rprism-perf-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let store = Engine::new();
    let pa = dir.join("old.rtr");
    let pb = dir.join("new.rtr");
    store.store_trace(&store.prepare(old.clone()), &pa).unwrap();
    store.store_trace(&store.prepare(new.clone()), &pb).unwrap();

    let obs = Obs::enabled();
    let stripped = Engine::builder().build();
    let instrumented = Engine::builder().obs(obs.clone()).build();
    let timed = |engine: &Engine| -> (Duration, Vec<_>) {
        let mut wall = Duration::MAX;
        let mut pairs = Vec::new();
        for _ in 0..samples {
            let start = std::time::Instant::now();
            let la = engine.load_prepared(&pa).expect("load old");
            let lb = engine.load_prepared(&pb).expect("load new");
            let diff = engine.diff(&la, &lb).expect("views never fails");
            wall = wall.min(start.elapsed());
            pairs = diff.matching.normalized_pairs();
        }
        (wall, pairs)
    };

    let (stripped_wall, stripped_pairs) = timed(&stripped);
    let (instrumented_wall, instrumented_pairs) = timed(&instrumented);
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        stripped_pairs, instrumented_pairs,
        "instrumentation must not change the diff"
    );
    // Sanity: the instrumented side actually recorded — every sample's two loads
    // landed in the `engine.load` span histogram.
    let recorded = obs
        .snapshot()
        .entries
        .iter()
        .any(|(name, _)| name == "engine.load");
    assert!(recorded, "instrumented engine recorded no engine.load spans");

    let measured = ObsOverheadMeasured {
        entries: old.len() + new.len(),
        stripped_wall,
        instrumented_wall,
    };
    let delta = measured
        .instrumented_wall
        .saturating_sub(measured.stripped_wall);
    assert!(
        measured.overhead_ratio() <= 0.03 || delta <= Duration::from_millis(2),
        "observability overhead {:.2}% exceeds the 3% budget \
         (stripped {:?}, instrumented {:?})",
        measured.overhead_ratio() * 100.0,
        measured.stripped_wall,
        measured.instrumented_wall
    );
    measured
}

fn main() {
    let mut json = false;
    let mut iterations = 400usize;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if let Ok(n) = arg.parse() {
            iterations = n;
        }
    }
    let samples = sample_env(5);

    let (old, new) = trace_pair([(32, iterations), (1, iterations)]);
    let options = ViewsDiffOptions::default();

    let seed = measure(samples, || seed_views_diff(&old, &new, &options));
    let keyed = measure(samples, || cold_views_diff(&old, &new, &options));

    assert_eq!(
        seed.result.matching.normalized_pairs(),
        keyed.result.matching.normalized_pairs(),
        "refactored pipeline diverged from the seed algorithm"
    );

    let (reuse_old, reuse_new) = trace_pair([(32, iterations), (32, iterations + 4)]);
    let reuse = measure_reuse(samples, 3, &reuse_old, &reuse_new, &options);
    let io = measure_trace_io(samples, &old);
    let ingest = measure_streaming_ingest(samples, &old, &new);
    let server = measure_server_throughput(samples, &reuse_old, &reuse_new);
    let durability = measure_put_durability(samples, &old);
    let check = measure_check_throughput(samples);
    let anchored = measure_anchored_scaling(samples);
    let watch = measure_watch_latency(samples, &reuse_old, &reuse_new);
    let obs = measure_obs_overhead(samples, &reuse_old, &reuse_new);

    let speedup = seed.wall.as_secs_f64() / keyed.wall.as_secs_f64().max(1e-12);
    let reuse_speedup =
        reuse.cold_wall.as_secs_f64() / reuse.prepared_wall.as_secs_f64().max(1e-12);
    if json {
        println!("{{");
        println!("  \"scenario\": \"diff_scaling largest size (iterations={iterations})\",");
        println!("  \"trace_entries\": [{}, {}],", old.len(), new.len());
        println!("  \"samples\": {samples},");
        println!(
            "  \"seed_baseline\": {{ \"wall_seconds\": {:.6}, \"compare_ops\": {}, \"peak_bytes\": {} }},",
            seed.wall.as_secs_f64(),
            seed.result.cost.compare_ops,
            seed.result.cost.peak_bytes
        );
        println!(
            "  \"keyed_parallel\": {{ \"wall_seconds\": {:.6}, \"compare_ops\": {}, \"peak_bytes\": {} }},",
            keyed.wall.as_secs_f64(),
            keyed.result.cost.compare_ops,
            keyed.result.cost.peak_bytes
        );
        println!("  \"wall_time_speedup\": {speedup:.2},");
        println!(
            "  \"prepared_reuse\": {{ \"trace_entries\": [{}, {}], \"repeats\": {}, \"cold_wall_seconds\": {:.6}, \"prepared_wall_seconds\": {:.6}, \"prepared_reuse_speedup\": {:.2} }},",
            reuse_old.len(),
            reuse_new.len(),
            reuse.repeats,
            reuse.cold_wall.as_secs_f64(),
            reuse.prepared_wall.as_secs_f64(),
            reuse_speedup
        );
        let io_json: Vec<String> = io
            .iter()
            .map(|m| {
                format!(
                    "{{ \"encoding\": \"{}\", \"bytes\": {}, \"bytes_per_entry\": {:.1}, \"write_wall_seconds\": {:.6}, \"read_wall_seconds\": {:.6} }}",
                    m.encoding,
                    m.bytes,
                    m.bytes as f64 / old.len().max(1) as f64,
                    m.write_wall.as_secs_f64(),
                    m.read_wall.as_secs_f64()
                )
            })
            .collect();
        println!("  \"trace_io\": [{}],", io_json.join(", "));
        println!(
            "  \"streaming_ingest\": {{ \"trace_entries\": {}, \"full\": {{ \"wall_seconds\": {:.6}, \"peak_bytes\": {} }}, \"streaming\": {{ \"wall_seconds\": {:.6}, \"peak_bytes\": {} }}, \"peak_memory_reduction\": {:.2} }},",
            ingest.entries,
            ingest.full_wall.as_secs_f64(),
            ingest.full_peak,
            ingest.streaming_wall.as_secs_f64(),
            ingest.streaming_peak,
            ingest.peak_reduction()
        );
        println!(
            "  \"server_throughput\": {{ \"total_requests\": {}, \"server_threads\": {}, \"host_cores\": {}, \"one_client\": {{ \"wall_seconds\": {:.6}, \"requests_per_second\": {:.1} }}, \"four_clients\": {{ \"wall_seconds\": {:.6}, \"requests_per_second\": {:.1} }}, \"concurrency_speedup\": {:.2}, \"cold_cache\": {{ \"wall_seconds\": {:.6}, \"requests_per_second\": {:.1} }}, \"prepared_cache_speedup\": {:.2} }},",
            server.total_requests,
            server.threads,
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            server.one_client_wall.as_secs_f64(),
            server.requests_per_second(server.one_client_wall),
            server.four_client_wall.as_secs_f64(),
            server.requests_per_second(server.four_client_wall),
            server.concurrency_speedup(),
            server.cold_cache_wall.as_secs_f64(),
            server.requests_per_second(server.cold_cache_wall),
            server.prepared_cache_speedup()
        );
        println!(
            "  \"put_durability\": {{ \"puts\": {}, \"durable\": {{ \"wall_seconds\": {:.6}, \"puts_per_second\": {:.1} }}, \"no_fsync\": {{ \"wall_seconds\": {:.6}, \"puts_per_second\": {:.1} }}, \"fsync_cost_ratio\": {:.2} }},",
            durability.puts,
            durability.durable_wall.as_secs_f64(),
            durability.puts_per_second(durability.durable_wall),
            durability.fast_wall.as_secs_f64(),
            durability.puts_per_second(durability.fast_wall),
            durability.fsync_cost_ratio()
        );
        println!(
            "  \"check_throughput\": {{ \"trace_entries\": {}, \"bytes\": {}, \"wall_seconds\": {:.6}, \"entries_per_second\": {:.0} }},",
            check.entries,
            check.bytes,
            check.wall.as_secs_f64(),
            check.entries_per_second()
        );
        println!(
            "  \"anchored_scaling\": {{ \"trace_entries\": [{}, {}], \"mutations\": {}, \"exact_linear_space\": {{ \"wall_seconds\": {:.6}, \"pairs\": {}, \"compare_ops\": {} }}, \"anchored\": {{ \"wall_seconds\": {:.6}, \"pairs\": {}, \"compare_ops\": {} }}, \"matching_recovery\": {:.6}, \"wall_time_speedup\": {:.2} }},",
            anchored.entries[0],
            anchored.entries[1],
            anchored.mutations,
            anchored.exact_wall.as_secs_f64(),
            anchored.exact_pairs,
            anchored.exact_compare_ops,
            anchored.anchored_wall.as_secs_f64(),
            anchored.anchored_pairs,
            anchored.anchored_compare_ops,
            anchored.recovery(),
            anchored.speedup()
        );
        println!(
            "  \"watch_latency\": {{ \"trace_entries\": {}, \"chunk_entries\": {}, \"provisional_events\": {}, \"batch_wall_seconds\": {:.6}, \"first_event_seconds\": {:.6}, \"verdict_lag_seconds\": {:.6}, \"watch_total_wall_seconds\": {:.6} }},",
            watch.entries,
            watch.chunk,
            watch.provisional_events,
            watch.batch_wall.as_secs_f64(),
            watch.first_event_wall.as_secs_f64(),
            watch.verdict_lag.as_secs_f64(),
            watch.total_wall.as_secs_f64()
        );
        println!(
            "  \"obs_overhead\": {{ \"trace_entries\": {}, \"stripped\": {{ \"wall_seconds\": {:.6} }}, \"instrumented\": {{ \"wall_seconds\": {:.6} }}, \"overhead_ratio\": {:.4}, \"budget\": 0.03 }}",
            obs.entries,
            obs.stripped_wall.as_secs_f64(),
            obs.instrumented_wall.as_secs_f64(),
            obs.overhead_ratio()
        );
        println!("}}");
    } else {
        println!(
            "perf_smoke — diff_scaling largest size ({iterations} iterations, {} / {} trace entries, best of {samples})\n",
            old.len(),
            new.len()
        );
        println!(
            "  seed baseline (owned EventKeys):   wall {:>10.3?}  compare_ops {:>12}  peak_bytes {:>10}",
            seed.wall, seed.result.cost.compare_ops, seed.result.cost.peak_bytes
        );
        println!(
            "  keyed pipeline (interned, parallel): wall {:>10.3?}  compare_ops {:>12}  peak_bytes {:>10}",
            keyed.wall, keyed.result.cost.compare_ops, keyed.result.cost.peak_bytes
        );
        println!("\n  wall-time speedup: {speedup:.2}x");
        println!(
            "  results identical: {} similar pairs, {} differences",
            keyed.result.num_similar(),
            keyed.result.num_differences()
        );
        println!(
            "\n  prepared reuse ({}x same pair): cold {:>10.3?}  engine-prepared {:>10.3?}  speedup {reuse_speedup:.2}x",
            reuse.repeats, reuse.cold_wall, reuse.prepared_wall
        );
        println!(
            "\n  streaming ingest ({} entries across both sides):",
            ingest.entries
        );
        println!(
            "    load-then-prepare: wall {:>10.3?}  peak heap growth {:>12} bytes",
            ingest.full_wall, ingest.full_peak
        );
        println!(
            "    streaming prepare: wall {:>10.3?}  peak heap growth {:>12} bytes",
            ingest.streaming_wall, ingest.streaming_peak
        );
        println!(
            "    peak-memory reduction: {:.2}x (identical diffs asserted)",
            ingest.peak_reduction()
        );
        println!(
            "\n  server throughput ({} repeated remote diffs, {} worker threads, {} host cores):",
            server.total_requests,
            server.threads,
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        );
        println!(
            "    1 client:  wall {:>10.3?}  {:>8.1} requests/s",
            server.one_client_wall,
            server.requests_per_second(server.one_client_wall)
        );
        println!(
            "    4 clients: wall {:>10.3?}  {:>8.1} requests/s  (concurrency speedup {:.2}x; scales with cores)",
            server.four_client_wall,
            server.requests_per_second(server.four_client_wall),
            server.concurrency_speedup()
        );
        println!(
            "    cold caches: wall {:>9.3?}  {:>8.1} requests/s  (prepared-cache speedup {:.2}x)",
            server.cold_cache_wall,
            server.requests_per_second(server.cold_cache_wall),
            server.prepared_cache_speedup()
        );
        println!(
            "\n  put durability ({} distinct blobs into a fresh repo):",
            durability.puts
        );
        println!(
            "    durable (fsync + rename + dir fsync): wall {:>9.3?}  {:>8.1} puts/s",
            durability.durable_wall,
            durability.puts_per_second(durability.durable_wall)
        );
        println!(
            "    --no-fsync (rename-commit only):      wall {:>9.3?}  {:>8.1} puts/s  (fsync cost {:.2}x)",
            durability.fast_wall,
            durability.puts_per_second(durability.fast_wall),
            durability.fsync_cost_ratio()
        );
        println!(
            "\n  check throughput ({} entries, {} bytes, all 20 rules):",
            check.entries, check.bytes
        );
        println!(
            "    streaming check: wall {:>10.3?}  {:>10.0} entries/s",
            check.wall,
            check.entries_per_second()
        );
        println!(
            "\n  anchored scaling ({} / {} entries, {} scattered mutations):",
            anchored.entries[0], anchored.entries[1], anchored.mutations
        );
        println!(
            "    exact (linear-space DP): wall {:>10.3?}  {:>8} pairs  compare_ops {:>14}",
            anchored.exact_wall, anchored.exact_pairs, anchored.exact_compare_ops
        );
        println!(
            "    anchored:                wall {:>10.3?}  {:>8} pairs  compare_ops {:>14}",
            anchored.anchored_wall, anchored.anchored_pairs, anchored.anchored_compare_ops
        );
        println!(
            "    wall-time speedup: {:.2}x  (matching recovery {:.4})",
            anchored.speedup(),
            anchored.recovery()
        );
        println!(
            "\n  watch latency ({} streamed entries, {}-entry chunks, {} provisional events):",
            watch.entries, watch.chunk, watch.provisional_events
        );
        println!(
            "    batch diff wall {:>10.3?}   watch total {:>10.3?}",
            watch.batch_wall, watch.total_wall
        );
        println!(
            "    first provisional event after {:>10.3?}   verdict lag after EOF {:>10.3?}",
            watch.first_event_wall, watch.verdict_lag
        );
        println!(
            "\n  obs overhead ({} entries, load + diff per sample):",
            obs.entries
        );
        println!(
            "    disabled observer: wall {:>10.3?}   enabled (spans + histograms): wall {:>10.3?}",
            obs.stripped_wall, obs.instrumented_wall
        );
        println!(
            "    overhead: {:.2}% (budget 3%)",
            obs.overhead_ratio() * 100.0
        );
        println!("\n  trace i/o ({} entries):", old.len());
        for m in &io {
            let entries_per_sec =
                |wall: Duration| old.len() as f64 / wall.as_secs_f64().max(1e-12);
            println!(
                "    {:>6}: {:>9} bytes ({:>5.1} B/entry)  write {:>10.0} entries/s  read {:>10.0} entries/s",
                m.encoding.to_string(),
                m.bytes,
                m.bytes as f64 / old.len().max(1) as f64,
                entries_per_sec(m.write_wall),
                entries_per_sec(m.read_wall)
            );
        }
    }
}
