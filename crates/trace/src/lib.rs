//! # rprism-trace
//!
//! The execution-trace model of *Semantics-Aware Trace Analysis* (PLDI 2009), §2.2–§2.3
//! and Fig. 4/Fig. 8:
//!
//! * [`event`] — the trace event grammar: field events (`get`/`set`), method events
//!   (`call`/`return`), object events (`init`), and thread events (`fork`/`end`);
//! * [`entry`] — trace entries `entry(eid, tid, m, θ, e)` carrying the generic context
//!   (thread, enclosing method, enclosing receiver) plus an event;
//! * [`objrep`] — object representations: locations extended with recursively-computed
//!   value fingerprints (`E'#` of Fig. 8) and per-class creation sequence numbers, the two
//!   correlation bases used by the analyses;
//! * [`stack`] — call stacks `s(m, θ, θ')` and stack snapshots recorded by `fork`/`end`
//!   events (thread parentage);
//! * [`trace`] — trace containers, including segmented storage mimicking RPrism's
//!   "smart trace segmentation" (§5);
//! * [`eq`] — the event-equality relation `=e` on which all differencing is built;
//! * [`mod@intern`] — process-global string interning: names become dense `u32`
//!   [`Symbol`]s that compare and hash as integers;
//! * [`keyed`] — [`KeyedTrace`]: per-entry precomputed [`CompactEventKey`]s (interned
//!   symbols + value fingerprints + a 64-bit content hash) that make `=e` on the diff
//!   hot paths an allocation-free integer comparison;
//! * [`lean`] — [`LeanTrace`]: the bounded-memory per-entry context retained by
//!   streaming ingestion (thread id, interned method/class names, object correlation
//!   identities) in place of full entries;
//! * [`testgen`] — deterministic pseudo-random generators used by the workspace's
//!   property-style tests (the workspace carries no external test dependencies).
//!
//! The crate is deliberately independent of the interpreter: traces can be constructed by
//! `rprism-vm`, loaded from serialized form, or synthesized directly in tests.

pub mod entry;
pub mod eq;
pub mod event;
pub mod intern;
pub mod keyed;
pub mod lean;
pub mod objrep;
pub mod stack;
pub mod testgen;
pub mod trace;

pub use entry::{EntryId, ThreadId, TraceEntry};
pub use eq::{event_eq, events_eq, EventKey};
pub use event::{Event, EventKind};
pub use intern::{intern, resolve, Symbol};
pub use keyed::{CompactEventKey, KeyRef, KeyedTrace, OperandId};
pub use lean::{LeanEntry, LeanTrace, ObjIdent};
pub use objrep::{CreationSeq, Loc, ObjRep, ValueFingerprint, ValueRepr};
pub use stack::{StackFrame, StackSnapshot};
pub use trace::{SegmentedTrace, Trace, TraceMeta};
