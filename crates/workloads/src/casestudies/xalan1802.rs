//! The XALANJ-1802 regression (paper §5.2, third case study).
//!
//! Between Xalan 2.4.1 and 2.5.1 the namespace-handling module was completely
//! re-architected (twelve months of development, ~79 K changed lines), and the rewrite
//! contained a corner-case bug affecting namespace redeclarations in nested elements. The
//! interesting property for the analysis is the *churn*: the expected-differences set B is
//! large because the two versions differ structurally everywhere, yet the analysis still
//! has to isolate the one behavioural difference. We model the old version with a flat
//! `NamespaceResolver` and the new version with a re-architected `NamespaceContext` /
//! `PrefixTable` pair whose redeclaration handling at nested depth is wrong.

use rprism_lang::parser::parse_program;
use rprism_lang::Program;
use rprism_regress::GroundTruth;
use rprism_vm::VmConfig;

use crate::scenario::Scenario;

const COMMON: &str = r#"
    class Sys extends Object {
        Unit print(Str msg) { unit; }
        Unit fail(Str msg) { unit; }
    }
    class Ctr extends Object { Int i; }
    class Element extends Object {
        Int depth;
        Int prefix;
        Int uri;
        Bool redeclares;
    }
"#;

// Old architecture: a single resolver storing up to two bindings per prefix with explicit
// depth bookkeeping.
const OLD_NS: &str = r#"
    class NamespaceResolver extends Object {
        Int prefixA; Int uriA; Int depthA;
        Int prefixB; Int uriB; Int depthB;
        Int resolved;
        Unit declare(Int prefix, Int uri, Int depth) {
            if (depth <= 1) {
                this.prefixA = prefix;
                this.uriA = uri;
                this.depthA = depth;
            } else {
                this.prefixB = prefix;
                this.uriB = uri;
                this.depthB = depth;
            }
        }
        Int lookup(Int prefix, Int depth) {
            if ((this.prefixB == prefix) && (depth >= this.depthB)) {
                return this.uriB;
            }
            if (this.prefixA == prefix) {
                return this.uriA;
            }
            return 0 - 1;
        }
        Int process(Element e) {
            if (e.redeclares) {
                this.declare(e.prefix, e.uri, e.depth);
            }
            this.resolved = this.resolved + 1;
            return this.lookup(e.prefix, e.depth);
        }
    }
    class Transformer extends Object {
        NamespaceResolver ns;
        Int output;
        Unit transform(Element e, Sys sys) {
            let uri = this.ns.process(e);
            this.output = this.output + uri;
            if (uri < 0) { sys.print("unresolved"); }
        }
    }
"#;

// New architecture: the responsibilities are split across two classes with different
// method names and an extra caching layer; nested redeclarations (depth > 1) are handled
// incorrectly — the binding is recorded against the outer depth, so lookups at the nested
// depth fall back to the outer URI.
const NEW_NS: &str = r#"
    class PrefixTable extends Object {
        Int prefix0; Int uri0; Int depth0;
        Int prefix1; Int uri1; Int depth1;
        Unit bind(Int prefix, Int uri, Int depth) {
            if (depth <= 1) {
                this.prefix0 = prefix;
                this.uri0 = uri;
                this.depth0 = depth;
            } else {
                this.prefix1 = prefix;
                this.uri1 = uri;
                this.depth1 = 1;
            }
        }
        Int find(Int prefix, Int depth) {
            if ((this.prefix1 == prefix) && (depth >= this.depth1) && (this.uri1 > 0) && (depth > 1)) {
                if (this.depth1 >= depth) {
                    return this.uri1;
                }
                return this.uri0;
            }
            if (this.prefix0 == prefix) {
                return this.uri0;
            }
            return 0 - 1;
        }
    }
    class NamespaceContext extends Object {
        PrefixTable table;
        Int cacheHits;
        Int resolvedCount;
        Unit pushBinding(Int prefix, Int uri, Int depth) {
            this.table.bind(prefix, uri, depth);
        }
        Int resolvePrefix(Int prefix, Int depth) {
            this.resolvedCount = this.resolvedCount + 1;
            return this.table.find(prefix, depth);
        }
    }
    class Transformer extends Object {
        NamespaceContext ns;
        Int output;
        Unit transform(Element e, Sys sys) {
            if (e.redeclares) {
                this.ns.pushBinding(e.prefix, e.uri, e.depth);
            }
            let uri = this.ns.resolvePrefix(e.prefix, e.depth);
            this.output = this.output + uri;
            if (uri < 0) { sys.print("unresolved"); }
        }
    }
"#;

const OLD_DRIVER: &str = r#"
    main {
        let sys = new Sys();
        let ns = new NamespaceResolver(0, 0, 0, 0, 0, 0, 0);
        let t = new Transformer(ns, 0);
        REDECLARE_SECTION
        let c = new Ctr(0);
        while (c.i < 10) {
            t.transform(new Element(1, 7, 100, false), sys);
            c.i = c.i + 1;
        }
        sys.print(t.output);
    }
"#;

const NEW_DRIVER: &str = r#"
    main {
        let sys = new Sys();
        let table = new PrefixTable(0, 0, 0, 0, 0, 0);
        let ns = new NamespaceContext(table, 0, 0);
        let t = new Transformer(ns, 0);
        REDECLARE_SECTION
        let c = new Ctr(0);
        while (c.i < 10) {
            t.transform(new Element(1, 7, 100, false), sys);
            c.i = c.i + 1;
        }
        sys.print(t.output);
    }
"#;

/// The section of the input document exercising the corner case: declare prefix 7 at the
/// outer level and redeclare it with a different URI inside a nested element, then resolve
/// at the nested depth.
const REDECLARING_INPUT: &str = r#"
        t.transform(new Element(1, 7, 100, true), sys);
        t.transform(new Element(3, 7, 200, true), sys);
        t.transform(new Element(3, 7, 0, false), sys);
"#;

/// The similar non-regressing input: the nested element does not redeclare the prefix.
const PLAIN_INPUT: &str = r#"
        t.transform(new Element(1, 7, 100, true), sys);
        t.transform(new Element(3, 7, 0, false), sys);
        t.transform(new Element(3, 7, 0, false), sys);
"#;

fn version(classes: &str, driver: &str, input: &str) -> Program {
    let main = driver.replace("REDECLARE_SECTION", input);
    let src = format!("{COMMON}{classes}{main}");
    parse_program(&src).expect("the Xalan-1802 scenario sources are well-formed")
}

/// Builds the XALANJ-1802 scenario.
pub fn scenario() -> Scenario {
    let old_reg = version(OLD_NS, OLD_DRIVER, REDECLARING_INPUT);
    let new_reg = version(NEW_NS, NEW_DRIVER, REDECLARING_INPUT);
    let old_pass = version(OLD_NS, OLD_DRIVER, PLAIN_INPUT);
    let new_pass = version(NEW_NS, NEW_DRIVER, PLAIN_INPUT);

    Scenario {
        name: "xalan-1802".into(),
        description:
            "re-architected namespace handling mishandles nested prefix redeclarations".into(),
        old_version: Program {
            classes: old_reg.classes.clone(),
            main: vec![],
        },
        new_version: Program {
            classes: new_reg.classes.clone(),
            main: vec![],
        },
        // The drivers necessarily differ between versions (different constructors); the
        // scenario runner composes version classes with the matching driver, so we store
        // the *old* drivers here and override at run time via the version-specific mains.
        regressing_main: old_reg.main.clone(),
        passing_main: old_pass.main.clone(),
        new_regressing_main: None,
        new_passing_main: None,
        ground_truth: GroundTruth::new(["PrefixTable", "bind", "find"]),
        vm_config: VmConfig::default(),
        code_removal: false,
    }
    .with_version_specific_mains(new_reg.main, new_pass.main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_regress::DiffAlgorithm;

    #[test]
    fn nested_redeclaration_regresses_under_the_rewrite() {
        let traces = scenario().trace_all().unwrap();
        assert!(
            traces.exhibits_regression(),
            "outputs: reg {:?} vs {:?}, pass {:?} vs {:?}",
            traces.old_regressing_output(),
            traces.new_regressing_output(),
            traces.old_passing_output(),
            traces.new_passing_output()
        );
    }

    #[test]
    fn heavy_churn_produces_a_large_expected_set_yet_analysis_still_narrows() {
        let outcome = scenario()
            .analyze_and_evaluate(&DiffAlgorithm::Views(Default::default()))
            .unwrap();
        // The rewrite makes both A and B large.
        assert!(outcome.report.suspected.len() > 10);
        assert!(!outcome.report.expected.is_empty());
        // But the candidate set is much smaller than the suspected set.
        assert!(outcome.report.candidates.len() < outcome.report.suspected.len());
        assert!(outcome.report.num_regression_sequences() >= 1);
    }
}
