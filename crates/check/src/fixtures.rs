//! Hand-built fixture traces for the rule engine: one clean trace that satisfies every
//! rule, and one minimal violating trace per rule that trips *exactly* that rule.
//!
//! The fixtures mirror the instrumentation semantics faithfully (calls emitted in the
//! caller's context before the push, returns after the pop, `<main>` root frames, fork
//! parentage snapshots, per-class creation sequences), so they double as executable
//! documentation of what a well-formed trace looks like. The exhaustive test at the
//! bottom walks the whole registry and asserts the one-rule-per-fixture property — the
//! engine's cascade-avoidance gate.

use rprism_lang::{FieldName, MethodName};
use rprism_trace::{
    CreationSeq, Event, EntryId, Loc, ObjRep, StackFrame, StackSnapshot, ThreadId, Trace,
    TraceEntry,
};

/// An opaque heap object of `class` with per-class creation sequence `seq` at heap
/// location `loc`.
fn obj(class: &str, seq: u64, loc: u64) -> ObjRep {
    ObjRep::opaque_object(Loc(loc), class, CreationSeq(seq))
}

fn prim() -> ObjRep {
    ObjRep::prim("Int", "1")
}

/// The synthetic root frame END-E and FORK-E record: `<main>` invoked on `receiver`
/// from a null caller.
fn root_snapshot(receiver: &ObjRep) -> StackSnapshot {
    StackSnapshot::new(vec![StackFrame::new(
        MethodName::toplevel(),
        ObjRep::null(),
        receiver.clone(),
    )])
}

/// Trace construction helper: appends entries with positional eids.
struct Builder {
    trace: Trace,
}

impl Builder {
    fn new(name: &str) -> Builder {
        Builder {
            trace: Trace::named(name),
        }
    }

    fn push(&mut self, tid: u64, method: &str, active: ObjRep, event: Event) -> &mut Self {
        // `Trace::push` renumbers eids positionally; the placeholder id is irrelevant.
        self.trace.push(TraceEntry::new(
            EntryId(0),
            ThreadId(tid),
            MethodName::new(method),
            active,
            event,
        ));
        self
    }

    fn init(&mut self, tid: u64, method: &str, active: ObjRep, result: ObjRep) -> &mut Self {
        let class = result.class.clone();
        self.push(
            tid,
            method,
            active,
            Event::Init {
                class,
                args: vec![prim()],
                result,
            },
        )
    }

    fn end(&mut self, tid: u64, receiver: ObjRep) -> &mut Self {
        let stack = root_snapshot(&receiver);
        self.push(tid, "<main>", receiver, Event::End { stack })
    }

    fn done(&mut self) -> Trace {
        std::mem::replace(&mut self.trace, Trace::named("spent"))
    }
}

/// A small two-thread trace that satisfies every rule: an init/call/return cycle on the
/// main thread, a fork with a faithful parentage snapshot, a thread-confined child, and
/// proper end events.
pub fn clean_trace() -> Trace {
    let null = ObjRep::null();
    let worker = obj("Worker", 0, 1);
    let logger = obj("Logger", 0, 2);
    let mut b = Builder::new("fixtures/clean");
    b.init(0, "<main>", null.clone(), worker.clone());
    b.push(
        0,
        "<main>",
        null.clone(),
        Event::Call {
            target: worker.clone(),
            method: MethodName::new("work"),
            args: vec![prim()],
        },
    );
    b.push(
        0,
        "work",
        worker.clone(),
        Event::Get {
            target: worker.clone(),
            field: FieldName::new("count"),
            value: prim(),
        },
    );
    b.push(
        0,
        "work",
        worker.clone(),
        Event::Set {
            target: worker.clone(),
            field: FieldName::new("count"),
            value: prim(),
        },
    );
    b.push(
        0,
        "<main>",
        null.clone(),
        Event::Return {
            target: worker.clone(),
            method: MethodName::new("work"),
            value: prim(),
        },
    );
    b.push(
        0,
        "<main>",
        null.clone(),
        Event::Fork {
            child: ThreadId(1),
            parentage: vec![root_snapshot(&null)],
        },
    );
    b.init(1, "<main>", null.clone(), logger.clone());
    b.push(
        1,
        "<main>",
        null.clone(),
        Event::Set {
            target: logger.clone(),
            field: FieldName::new("count"),
            value: prim(),
        },
    );
    b.end(1, null.clone());
    b.push(
        0,
        "<main>",
        null.clone(),
        Event::Get {
            target: worker.clone(),
            field: FieldName::new("count"),
            value: prim(),
        },
    );
    b.end(0, null);
    b.done()
}

/// A minimal trace violating exactly the rule `rule_id`.
///
/// # Panics
///
/// Panics when `rule_id` is not in the registry ([`crate::rules::RULES`]).
pub fn violating(rule_id: &str) -> Trace {
    let null = ObjRep::null();
    let worker = obj("Worker", 0, 1);
    let mut b = Builder::new(&format!("fixtures/{rule_id}"));
    match rule_id {
        "entry-id-order" => {
            b.init(0, "<main>", null.clone(), worker);
            b.end(0, null);
            let mut trace = b.done();
            trace.entries[0].eid = EntryId(5);
            return trace;
        }
        "return-without-call" => {
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Return {
                    target: null.clone(),
                    method: MethodName::new("work"),
                    value: null.clone(),
                },
            );
            b.end(0, null);
        }
        "return-method-mismatch" => {
            b.init(0, "<main>", null.clone(), worker.clone());
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Call {
                    target: worker.clone(),
                    method: MethodName::new("work"),
                    args: vec![],
                },
            );
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Return {
                    target: worker,
                    method: MethodName::new("other"),
                    value: prim(),
                },
            );
            b.end(0, null);
        }
        "method-context" => {
            b.init(0, "<main>", null.clone(), worker.clone());
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Call {
                    target: worker.clone(),
                    method: MethodName::new("work"),
                    args: vec![],
                },
            );
            b.push(
                0,
                "wrong",
                worker.clone(),
                Event::Get {
                    target: worker.clone(),
                    field: FieldName::new("count"),
                    value: prim(),
                },
            );
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Return {
                    target: worker,
                    method: MethodName::new("work"),
                    value: prim(),
                },
            );
            b.end(0, null);
        }
        "active-context" => {
            let logger = obj("Logger", 0, 2);
            b.init(0, "<main>", null.clone(), worker.clone());
            b.init(0, "<main>", null.clone(), logger.clone());
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Call {
                    target: worker.clone(),
                    method: MethodName::new("work"),
                    args: vec![],
                },
            );
            b.push(
                0,
                "work",
                logger,
                Event::Get {
                    target: worker.clone(),
                    field: FieldName::new("count"),
                    value: prim(),
                },
            );
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Return {
                    target: worker,
                    method: MethodName::new("work"),
                    value: prim(),
                },
            );
            b.end(0, null);
        }
        "unclosed-call" => {
            b.init(0, "<main>", null.clone(), worker.clone());
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Call {
                    target: worker,
                    method: MethodName::new("work"),
                    args: vec![],
                },
            );
            b.end(0, null);
        }
        "end-stack" => {
            b.init(0, "<main>", null.clone(), worker.clone());
            let deep = StackSnapshot::new(vec![
                StackFrame::new(MethodName::toplevel(), ObjRep::null(), null.clone()),
                StackFrame::new(MethodName::new("work"), null.clone(), worker),
            ]);
            b.push(0, "<main>", null, Event::End { stack: deep });
        }
        "missing-end" => {
            b.init(0, "<main>", null, worker);
        }
        "thread-after-end" => {
            b.init(0, "<main>", null.clone(), worker.clone());
            b.end(0, null.clone());
            b.push(
                0,
                "<main>",
                null,
                Event::Get {
                    target: worker,
                    field: FieldName::new("count"),
                    value: prim(),
                },
            );
        }
        "fork-self" => {
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Fork {
                    child: ThreadId(0),
                    parentage: vec![root_snapshot(&null)],
                },
            );
            b.end(0, null);
        }
        "duplicate-fork" => {
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Fork {
                    child: ThreadId(1),
                    parentage: vec![root_snapshot(&null)],
                },
            );
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Fork {
                    child: ThreadId(1),
                    parentage: vec![root_snapshot(&null)],
                },
            );
            b.end(0, null);
        }
        "orphan-thread" => {
            b.init(1, "<main>", null.clone(), worker);
            b.end(1, null);
        }
        "fork-parentage" => {
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Fork {
                    child: ThreadId(1),
                    parentage: vec![],
                },
            );
            b.end(0, null);
        }
        "define-before-use" => {
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Get {
                    target: obj("Worker", 7, 9),
                    field: FieldName::new("count"),
                    value: prim(),
                },
            );
            b.end(0, null);
        }
        "duplicate-init" => {
            b.init(0, "<main>", null.clone(), worker.clone());
            b.init(0, "<main>", null.clone(), worker);
            b.end(0, null);
        }
        "use-after-death" => {
            b.init(0, "<main>", null.clone(), worker.clone());
            // A later init reuses location 1: Worker#0 is dead from here on.
            b.init(0, "<main>", null.clone(), obj("Logger", 0, 1));
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Get {
                    target: worker,
                    field: FieldName::new("count"),
                    value: prim(),
                },
            );
            b.end(0, null);
        }
        "identity-confusion" => {
            b.init(0, "<main>", null.clone(), worker);
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Get {
                    target: obj("Worker", 0, 2),
                    field: FieldName::new("count"),
                    value: prim(),
                },
            );
            b.end(0, null);
        }
        "init-order" => {
            b.init(0, "<main>", null.clone(), obj("Worker", 1, 1));
            b.init(0, "<main>", null.clone(), obj("Worker", 0, 2));
            b.end(0, null);
        }
        "data-race" => {
            let shared = obj("Shared", 0, 1);
            b.init(0, "<main>", null.clone(), shared.clone());
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Fork {
                    child: ThreadId(1),
                    parentage: vec![root_snapshot(&null)],
                },
            );
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Fork {
                    child: ThreadId(2),
                    parentage: vec![root_snapshot(&null)],
                },
            );
            b.push(
                1,
                "<main>",
                null.clone(),
                Event::Set {
                    target: shared.clone(),
                    field: FieldName::new("f"),
                    value: prim(),
                },
            );
            b.push(
                2,
                "<main>",
                null.clone(),
                Event::Set {
                    target: shared,
                    field: FieldName::new("f"),
                    value: prim(),
                },
            );
            b.end(1, null.clone());
            b.end(2, null.clone());
            b.end(0, null);
        }
        "name-wellformed" => {
            b.init(0, "<main>", null.clone(), worker.clone());
            b.push(
                0,
                "<main>",
                null.clone(),
                Event::Get {
                    target: worker,
                    field: FieldName::new(""),
                    value: prim(),
                },
            );
            b.end(0, null);
        }
        other => panic!("no violating fixture for unknown rule id {other:?}"),
    }
    b.done()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_trace;
    use crate::rules;

    #[test]
    fn the_clean_fixture_is_clean() {
        let report = check_trace(&clean_trace());
        assert!(
            report.is_clean(),
            "clean fixture produced diagnostics: {:#?}",
            report.diagnostics
        );
        assert_eq!(report.threads, 2);
    }

    /// The cascade-avoidance gate: every rule has a fixture that trips it and *only* it.
    #[test]
    fn every_rule_has_a_single_rule_negative_fixture() {
        for rule in rules::RULES {
            let report = check_trace(&violating(rule.id));
            assert!(
                !report.diagnostics.is_empty(),
                "fixture for {} tripped nothing",
                rule.id
            );
            for diag in &report.diagnostics {
                assert_eq!(
                    diag.rule_id, rule.id,
                    "fixture for {} also tripped {}: {:#?}",
                    rule.id, diag.rule_id, report.diagnostics
                );
            }
            assert_eq!(
                report.diagnostics.len(),
                1,
                "fixture for {} fired more than once: {:#?}",
                rule.id,
                report.diagnostics
            );
        }
    }

    #[test]
    fn default_severities_match_the_registry() {
        for rule in rules::RULES {
            let report = check_trace(&violating(rule.id));
            assert_eq!(report.diagnostics[0].severity, rule.default_severity);
        }
    }

    #[test]
    #[should_panic(expected = "unknown rule id")]
    fn unknown_rule_ids_panic() {
        violating("no-such-rule");
    }
}
