//! The paper's motivating example end to end: the MyFaces-1130-style character-range
//! regression, analyzed with the full regression-cause algorithm (suspected / expected /
//! regression / candidate difference sets) through a session [`rprism::Engine`].
//!
//! Run with `cargo run --example myfaces_regression`.

use rprism::Engine;
use rprism_workloads::myfaces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = myfaces::scenario();
    println!("{}: {}\n", scenario.name, scenario.description);

    // Trace the four runs once; the prepared handles carry the scenario's analysis mode
    // and cache every derived artifact across the analysis below.
    let traces = scenario.trace_all()?;
    println!(
        "outputs under the regressing request: original {:?}, new {:?}\n",
        traces.old_regressing_output(), traces.new_regressing_output()
    );

    let engine = Engine::new();
    let report = engine.analyze(&traces.traces)?;
    println!("{}", engine.render_report(&report, &traces.traces));
    Ok(())
}
