//! The line-oriented JSONL text encoding (`.jsonl`), for human authoring and external
//! tooling.
//!
//! # Schema
//!
//! One JSON object per line. The first line is the header, then one line per entry, then
//! an optional trailer (the writer always emits it; hand-authored files may omit it):
//!
//! ```text
//! {"format":"rprism-trace","version":1,"name":N,"program_version":V,"test_case":T}
//! {"tid":0,"method":"<main>","active":OBJ,"event":EVENT}
//! …
//! {"entries":COUNT}
//! ```
//!
//! Object representations (`OBJ`) carry the five [`ObjRep`] fields; `loc` and `seq` are
//! omitted when absent, and the value fingerprint is a fixed-width lowercase hex string
//! (a `u64` does not fit in a JSON double):
//!
//! ```text
//! OBJ   ::= {"class":C,"fp":"0011223344556677","printed":P[,"loc":L][,"seq":S]}
//! EVENT ::= {"kind":"get","target":OBJ,"field":F,"value":OBJ}
//!         | {"kind":"set","target":OBJ,"field":F,"value":OBJ}
//!         | {"kind":"call","target":OBJ,"method":M,"args":[OBJ…]}
//!         | {"kind":"return","target":OBJ,"method":M,"value":OBJ}
//!         | {"kind":"init","class":C,"args":[OBJ…],"result":OBJ}
//!         | {"kind":"fork","child":TID,"parentage":[SNAP…]}
//!         | {"kind":"end","stack":SNAP}
//! SNAP  ::= [{"method":M,"caller":OBJ,"callee":OBJ}…]
//! ```
//!
//! Entry ids are implicit (line order), like the binary encoding. Blank lines are
//! ignored on input. Unknown or duplicate keys, wrong value types, floats, negative
//! numbers and a mismatched trailer count are all rejected with
//! [`FormatError::Json`] naming the line — typos in hand-written traces fail loudly
//! instead of decoding to something else.

use std::fmt::Write as _;
use std::io::{BufRead, Write};

use rprism_lang::{FieldName, MethodName};
use rprism_trace::{
    CreationSeq, EntryId, Event, Loc, ObjRep, StackFrame, StackSnapshot, ThreadId, TraceEntry,
    TraceMeta, ValueFingerprint,
};

use crate::error::{FormatError, Result};
use crate::json::{self, Json};
use crate::TailEntry;

/// The JSONL schema version this crate reads and writes (kept in lock step with the
/// binary [`FORMAT_VERSION`](crate::binary::FORMAT_VERSION)).
pub const JSONL_VERSION: u64 = 1;

const FORMAT_NAME: &str = "rprism-trace";

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming writer of the JSONL encoding: one line per entry, written as it arrives.
pub struct JsonlTraceWriter<W: Write> {
    out: W,
    line: String,
    entries: u64,
}

impl<W: Write> JsonlTraceWriter<W> {
    /// Starts a JSONL trace stream by writing the header line.
    pub fn new(out: W, meta: &TraceMeta) -> Result<Self> {
        let mut writer = JsonlTraceWriter {
            out,
            line: String::new(),
            entries: 0,
        };
        let mut header = String::new();
        header.push_str("{\"format\":");
        json::write_escaped(&mut header, FORMAT_NAME);
        header.push_str(&format!(",\"version\":{JSONL_VERSION},\"name\":"));
        json::write_escaped(&mut header, &meta.name);
        header.push_str(",\"program_version\":");
        json::write_escaped(&mut header, &meta.version);
        header.push_str(",\"test_case\":");
        json::write_escaped(&mut header, &meta.test_case);
        header.push_str("}\n");
        writer.out.write_all(header.as_bytes())?;
        Ok(writer)
    }

    fn put_objrep(line: &mut String, rep: &ObjRep) {
        line.push_str("{\"class\":");
        json::write_escaped(line, &rep.class);
        let _ = write!(line, ",\"fp\":\"{:016x}\",\"printed\":", rep.fingerprint.0);
        json::write_escaped(line, &rep.printed);
        if let Some(Loc(loc)) = rep.loc {
            let _ = write!(line, ",\"loc\":{loc}");
        }
        if let Some(CreationSeq(seq)) = rep.creation_seq {
            let _ = write!(line, ",\"seq\":{seq}");
        }
        line.push('}');
    }

    fn put_snapshot(line: &mut String, snapshot: &StackSnapshot) {
        line.push('[');
        for (i, frame) in snapshot.frames.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str("{\"method\":");
            json::write_escaped(line, frame.method.as_str());
            line.push_str(",\"caller\":");
            Self::put_objrep(line, &frame.caller);
            line.push_str(",\"callee\":");
            Self::put_objrep(line, &frame.callee);
            line.push('}');
        }
        line.push(']');
    }

    fn put_args(line: &mut String, args: &[ObjRep]) {
        line.push('[');
        for (i, arg) in args.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            Self::put_objrep(line, arg);
        }
        line.push(']');
    }

    /// Appends one entry line. Like the binary writer, the entry's `eid` is ignored:
    /// ids are implicit in line order.
    pub fn write_entry(&mut self, entry: &TraceEntry) -> Result<()> {
        let mut line = std::mem::take(&mut self.line);
        line.clear();
        let _ = write!(line, "{{\"tid\":{},\"method\":", entry.tid.0);
        json::write_escaped(&mut line, entry.method.as_str());
        line.push_str(",\"active\":");
        Self::put_objrep(&mut line, &entry.active);
        line.push_str(",\"event\":");
        match &entry.event {
            Event::Get {
                target,
                field,
                value,
            }
            | Event::Set {
                target,
                field,
                value,
            } => {
                let kind = if matches!(entry.event, Event::Get { .. }) {
                    "get"
                } else {
                    "set"
                };
                let _ = write!(line, "{{\"kind\":\"{kind}\",\"target\":");
                Self::put_objrep(&mut line, target);
                line.push_str(",\"field\":");
                json::write_escaped(&mut line, field.as_str());
                line.push_str(",\"value\":");
                Self::put_objrep(&mut line, value);
                line.push('}');
            }
            Event::Call {
                target,
                method,
                args,
            } => {
                line.push_str("{\"kind\":\"call\",\"target\":");
                Self::put_objrep(&mut line, target);
                line.push_str(",\"method\":");
                json::write_escaped(&mut line, method.as_str());
                line.push_str(",\"args\":");
                Self::put_args(&mut line, args);
                line.push('}');
            }
            Event::Return {
                target,
                method,
                value,
            } => {
                line.push_str("{\"kind\":\"return\",\"target\":");
                Self::put_objrep(&mut line, target);
                line.push_str(",\"method\":");
                json::write_escaped(&mut line, method.as_str());
                line.push_str(",\"value\":");
                Self::put_objrep(&mut line, value);
                line.push('}');
            }
            Event::Init {
                class,
                args,
                result,
            } => {
                line.push_str("{\"kind\":\"init\",\"class\":");
                json::write_escaped(&mut line, class);
                line.push_str(",\"args\":");
                Self::put_args(&mut line, args);
                line.push_str(",\"result\":");
                Self::put_objrep(&mut line, result);
                line.push('}');
            }
            Event::Fork { child, parentage } => {
                let _ = write!(
                    line,
                    "{{\"kind\":\"fork\",\"child\":{},\"parentage\":[",
                    child.0
                );
                for (i, snapshot) in parentage.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    Self::put_snapshot(&mut line, snapshot);
                }
                line.push_str("]}");
            }
            Event::End { stack } => {
                line.push_str("{\"kind\":\"end\",\"stack\":");
                Self::put_snapshot(&mut line, stack);
                line.push('}');
            }
        }
        line.push_str("}\n");
        self.out.write_all(line.as_bytes())?;
        self.line = line;
        self.entries += 1;
        Ok(())
    }

    /// Writes the trailer line, flushes, and returns the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        let trailer = format!("{{\"entries\":{}}}\n", self.entries);
        self.out.write_all(trailer.as_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Streaming reader of the JSONL encoding: one line is parsed (and handed out) at a
/// time.
pub struct JsonlTraceReader<R: BufRead> {
    input: R,
    meta: TraceMeta,
    line_no: u64,
    entries_read: u64,
    buffer: Vec<u8>,
    done: bool,
}

impl<R: BufRead> JsonlTraceReader<R> {
    /// Opens a JSONL trace stream, parsing and validating the header line.
    pub fn new(input: R) -> Result<Self> {
        let mut reader = JsonlTraceReader {
            input,
            meta: TraceMeta::default(),
            line_no: 0,
            entries_read: 0,
            buffer: Vec::new(),
            done: false,
        };
        let Some(header) = reader.next_line()? else {
            return Err(reader.err("missing header line"));
        };
        // Accept a UTF-8 byte-order mark in front of hand-authored files (the unified
        // `TraceReader` strips it during sniffing; direct callers get the same grace).
        let header = header.trim_start_matches('\u{feff}');
        let obj = reader.parse_obj(header)?;
        let mut fields = ObjFields::new(&obj, reader.line_no);
        let format = fields.take_str("format")?;
        if format != FORMAT_NAME {
            return Err(reader.err(&format!(
                "header declares format {format:?}, expected {FORMAT_NAME:?}"
            )));
        }
        let version = fields.take_u64("version")?;
        if version != JSONL_VERSION {
            return Err(FormatError::UnsupportedVersion {
                found: u16::try_from(version).unwrap_or(u16::MAX),
                supported: JSONL_VERSION as u16,
            });
        }
        let name = fields.take_str("name")?;
        let program_version = fields.take_str("program_version")?;
        let test_case = fields.take_str("test_case")?;
        fields.finish()?;
        reader.meta = TraceMeta::new(name, program_version, test_case);
        Ok(reader)
    }

    /// The trace metadata from the header line.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn err(&self, detail: &str) -> FormatError {
        FormatError::Json {
            line: self.line_no,
            detail: detail.to_owned(),
        }
    }

    /// The next non-blank line, or `None` at end of input. Windows-authored files use
    /// CRLF line endings, so the trailing `\r` left by line splitting is stripped
    /// before parsing — explicitly, ahead of the general whitespace trim, so the
    /// guarantee survives any future change to how lines are cleaned up (the CRLF
    /// regression tests pin it under both the direct and the sniffing reader).
    ///
    /// Lines are assembled through a `fill_buf`/`consume` loop rather than
    /// `BufRead::read_line`: `read_line` truncates its buffer when the underlying
    /// reader fails, so a signal-interrupted (`EINTR`) read mid-line would silently
    /// drop the bytes already consumed. This loop retries `Interrupted` with nothing
    /// lost (the fault-injection suite pins that).
    fn next_line(&mut self) -> Result<Option<String>> {
        self.next_line_mode(false)
    }

    /// The line-assembly loop behind both read modes. `self.buffer` persists partial
    /// lines across calls: in tail mode an input that runs dry mid-line returns
    /// `Ok(None)` with the partial bytes retained, and the next call picks up where
    /// the writer left off. In strict mode end-of-input ends the stream — with the
    /// hand-authoring grace that a final unterminated line still counts as a line.
    fn next_line_mode(&mut self, tail: bool) -> Result<Option<String>> {
        loop {
            let mut complete = false;
            loop {
                let available = match self.input.fill_buf() {
                    Ok(available) => available,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(FormatError::Io(e)),
                };
                if available.is_empty() {
                    break; // end of input (possibly ending a final unterminated line)
                }
                match available.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        self.buffer.extend_from_slice(&available[..=i]);
                        self.input.consume(i + 1);
                        complete = true;
                        break;
                    }
                    None => {
                        let n = available.len();
                        self.buffer.extend_from_slice(available);
                        self.input.consume(n);
                    }
                }
            }
            if !complete {
                if tail {
                    // Mid-line as of now (or between lines): keep whatever arrived
                    // buffered and report that no complete line is available yet.
                    return Ok(None);
                }
                if self.buffer.is_empty() {
                    return Ok(None);
                }
                // Unterminated final line: fall through and take it as a line.
            }
            self.line_no += 1;
            let text = std::str::from_utf8(&self.buffer).map_err(|_| FormatError::Json {
                line: self.line_no,
                detail: "line is not valid UTF-8".into(),
            })?;
            let line = text.trim_end_matches(['\r', '\n']).trim();
            let line = (!line.is_empty()).then(|| line.to_owned());
            self.buffer.clear();
            match line {
                Some(line) => return Ok(Some(line)),
                // A blank grace line at end of input ends the stream; a blank
                // terminated line is simply skipped.
                None if !complete => return Ok(None),
                None => {}
            }
        }
    }

    fn parse_obj(&self, line: &str) -> Result<Vec<(String, Json)>> {
        match json::parse(line) {
            Ok(Json::Obj(pairs)) => Ok(pairs),
            Ok(other) => Err(self.err(&format!("expected an object, found {}", other.type_name()))),
            Err(detail) => Err(self.err(&detail)),
        }
    }

    fn objrep(value: &Json, line: u64) -> Result<ObjRep> {
        let Json::Obj(pairs) = value else {
            return Err(FormatError::Json {
                line,
                detail: format!("object representation must be an object, found {}", value.type_name()),
            });
        };
        let mut fields = ObjFields::new(pairs, line);
        let class = fields.take_str("class")?;
        let fp_text = fields.take_str("fp")?;
        if fp_text.len() != 16 || !fp_text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(FormatError::Json {
                line,
                detail: format!("`fp` must be 16 hex digits, found {fp_text:?}"),
            });
        }
        let fingerprint = u64::from_str_radix(&fp_text, 16).map_err(|_| FormatError::Json {
            line,
            detail: format!("invalid fingerprint {fp_text:?}"),
        })?;
        let printed = fields.take_str("printed")?;
        let loc = fields.take_opt_u64("loc")?.map(Loc);
        let creation_seq = fields.take_opt_u64("seq")?.map(CreationSeq);
        fields.finish()?;
        Ok(ObjRep {
            loc,
            class,
            fingerprint: ValueFingerprint(fingerprint),
            printed,
            creation_seq,
        })
    }

    fn args(value: &Json, line: u64, what: &str) -> Result<Vec<ObjRep>> {
        let Json::Arr(items) = value else {
            return Err(FormatError::Json {
                line,
                detail: format!("`{what}` must be an array, found {}", value.type_name()),
            });
        };
        items.iter().map(|v| Self::objrep(v, line)).collect()
    }

    fn snapshot(value: &Json, line: u64) -> Result<StackSnapshot> {
        let Json::Arr(items) = value else {
            return Err(FormatError::Json {
                line,
                detail: format!("a stack snapshot must be an array, found {}", value.type_name()),
            });
        };
        let mut frames = Vec::with_capacity(items.len());
        for item in items {
            let Json::Obj(pairs) = item else {
                return Err(FormatError::Json {
                    line,
                    detail: format!("a stack frame must be an object, found {}", item.type_name()),
                });
            };
            let mut fields = ObjFields::new(pairs, line);
            let method = MethodName::new(fields.take_str("method")?);
            let caller = Self::objrep(fields.take("caller")?, line)?;
            let callee = Self::objrep(fields.take("callee")?, line)?;
            fields.finish()?;
            frames.push(StackFrame::new(method, caller, callee));
        }
        Ok(StackSnapshot::new(frames))
    }

    fn event(value: &Json, line: u64) -> Result<Event> {
        let Json::Obj(pairs) = value else {
            return Err(FormatError::Json {
                line,
                detail: format!("`event` must be an object, found {}", value.type_name()),
            });
        };
        let mut fields = ObjFields::new(pairs, line);
        let kind = fields.take_str("kind")?;
        let event = match kind.as_str() {
            "get" | "set" => {
                let target = Self::objrep(fields.take("target")?, line)?;
                let field = FieldName::new(fields.take_str("field")?);
                let value = Self::objrep(fields.take("value")?, line)?;
                if kind == "get" {
                    Event::Get {
                        target,
                        field,
                        value,
                    }
                } else {
                    Event::Set {
                        target,
                        field,
                        value,
                    }
                }
            }
            "call" => Event::Call {
                target: Self::objrep(fields.take("target")?, line)?,
                method: MethodName::new(fields.take_str("method")?),
                args: Self::args(fields.take("args")?, line, "args")?,
            },
            "return" => Event::Return {
                target: Self::objrep(fields.take("target")?, line)?,
                method: MethodName::new(fields.take_str("method")?),
                value: Self::objrep(fields.take("value")?, line)?,
            },
            "init" => Event::Init {
                class: fields.take_str("class")?,
                args: Self::args(fields.take("args")?, line, "args")?,
                result: Self::objrep(fields.take("result")?, line)?,
            },
            "fork" => {
                let child = ThreadId(fields.take_u64("child")?);
                let Json::Arr(items) = fields.take("parentage")? else {
                    return Err(FormatError::Json {
                        line,
                        detail: "`parentage` must be an array".into(),
                    });
                };
                let parentage = items
                    .iter()
                    .map(|v| Self::snapshot(v, line))
                    .collect::<Result<Vec<_>>>()?;
                Event::Fork { child, parentage }
            }
            "end" => Event::End {
                stack: Self::snapshot(fields.take("stack")?, line)?,
            },
            other => {
                return Err(FormatError::Json {
                    line,
                    detail: format!("unknown event kind {other:?}"),
                })
            }
        };
        fields.finish()?;
        Ok(event)
    }

    /// Parses one non-blank line as either an entry (`Some`) or the trailer (`None`,
    /// with the declared count verified).
    fn parse_entry_line(&mut self, line: &str) -> Result<Option<TraceEntry>> {
        let pairs = self.parse_obj(line)?;
        // The trailer is the only object with an `entries` key.
        if pairs.iter().any(|(k, _)| k == "entries") {
            let mut fields = ObjFields::new(&pairs, self.line_no);
            let declared = fields.take_u64("entries")?;
            fields.finish()?;
            if declared != self.entries_read {
                return Err(self.err(&format!(
                    "trailer declares {declared} entries but {} were read",
                    self.entries_read
                )));
            }
            return Ok(None);
        }
        let line_no = self.line_no;
        let mut fields = ObjFields::new(&pairs, line_no);
        let tid = ThreadId(fields.take_u64("tid")?);
        let method = MethodName::new(fields.take_str("method")?);
        let active = Self::objrep(fields.take("active")?, line_no)?;
        let event = Self::event(fields.take("event")?, line_no)?;
        fields.finish()?;
        let eid = EntryId(self.entries_read);
        self.entries_read += 1;
        Ok(Some(TraceEntry::new(eid, tid, method, active, event)))
    }

    /// Parses the next entry line, or returns `Ok(None)` at the end of the stream
    /// (verifying the trailer count when a trailer is present).
    pub fn next_entry(&mut self) -> Result<Option<TraceEntry>> {
        if self.done {
            return Ok(None);
        }
        let Some(line) = self.next_line()? else {
            // Hand-authored files may omit the trailer; end of input ends the trace.
            self.done = true;
            return Ok(None);
        };
        match self.parse_entry_line(&line)? {
            Some(entry) => Ok(Some(entry)),
            None => {
                if self.next_line()?.is_some() {
                    return Err(self.err("content after the trailer line"));
                }
                self.done = true;
                Ok(None)
            }
        }
    }

    /// Parses the next entry off a *growing* stream: only complete (newline-terminated)
    /// lines are consumed, so an input that currently ends mid-line reports the
    /// resumable [`TailEntry::Pending`] state with the partial bytes retained for the
    /// next call. Because a trailer-less JSONL stream ends implicitly, `Pending` is
    /// also what a finished-but-trailerless stream looks like — the caller decides
    /// when the source has stopped growing and switches to [`Self::next_entry`],
    /// which applies the strict end-of-input semantics (unterminated-final-line grace
    /// included) to whatever remains.
    pub fn next_entry_tail(&mut self) -> Result<TailEntry> {
        if self.done {
            return Ok(TailEntry::End);
        }
        let Some(line) = self.next_line_mode(true)? else {
            return Ok(TailEntry::Pending);
        };
        match self.parse_entry_line(&line)? {
            Some(entry) => Ok(TailEntry::Entry(entry)),
            None => {
                // Trailer seen: the trace is complete. The strict after-trailer
                // content check happens when (and if) the caller drains the stream
                // strictly; a growing source has nothing after the trailer yet.
                self.done = true;
                Ok(TailEntry::End)
            }
        }
    }
}

/// A strict field cursor over a parsed JSON object: every key must be taken exactly
/// once, duplicates and leftovers are schema errors.
struct ObjFields<'a> {
    pairs: &'a [(String, Json)],
    taken: Vec<bool>,
    line: u64,
}

impl<'a> ObjFields<'a> {
    fn new(pairs: &'a [(String, Json)], line: u64) -> Self {
        ObjFields {
            pairs,
            taken: vec![false; pairs.len()],
            line,
        }
    }

    fn err(&self, detail: String) -> FormatError {
        FormatError::Json {
            line: self.line,
            detail,
        }
    }

    fn take(&mut self, key: &str) -> Result<&'a Json> {
        let mut found = None;
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key {
                if found.is_some() || self.taken[i] {
                    return Err(self.err(format!("duplicate key {key:?}")));
                }
                self.taken[i] = true;
                found = Some(v);
            }
        }
        found.ok_or_else(|| self.err(format!("missing key {key:?}")))
    }

    fn take_str(&mut self, key: &str) -> Result<String> {
        match self.take(key)? {
            Json::Str(s) => Ok(s.clone()),
            other => Err(self.err(format!(
                "key {key:?} must be a string, found {}",
                other.type_name()
            ))),
        }
    }

    fn take_u64(&mut self, key: &str) -> Result<u64> {
        match self.take(key)? {
            Json::Num(n) => Ok(*n),
            other => Err(self.err(format!(
                "key {key:?} must be an integer, found {}",
                other.type_name()
            ))),
        }
    }

    fn take_opt_u64(&mut self, key: &str) -> Result<Option<u64>> {
        if self.pairs.iter().any(|(k, _)| k == key) {
            Ok(Some(self.take_u64(key)?))
        } else {
            Ok(None)
        }
    }

    /// Rejects any key that was never taken (typos, schema drift).
    fn finish(self) -> Result<()> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.taken[i] {
                return Err(FormatError::Json {
                    line: self.line,
                    detail: format!("unknown key {k:?}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_trace::testgen::{arbitrary_entry, Rng};
    use rprism_trace::Trace;

    fn sample_trace(seed: u64, len: usize) -> Trace {
        let mut rng = Rng::new(seed);
        let mut t = Trace::new(TraceMeta::new("sample", "v1", "t1"));
        for _ in 0..len {
            t.push(arbitrary_entry(&mut rng));
        }
        t
    }

    fn encode(trace: &Trace) -> String {
        let mut w = JsonlTraceWriter::new(Vec::new(), &trace.meta).unwrap();
        for entry in trace {
            w.write_entry(entry).unwrap();
        }
        String::from_utf8(w.finish().unwrap()).unwrap()
    }

    fn decode(text: &str) -> Result<Trace> {
        let mut r = JsonlTraceReader::new(text.as_bytes())?;
        let mut trace = Trace::new(r.meta().clone());
        while let Some(entry) = r.next_entry()? {
            trace.push(entry);
        }
        Ok(trace)
    }

    #[test]
    fn round_trips_structurally() {
        let trace = sample_trace(3, 120);
        assert_eq!(decode(&encode(&trace)).unwrap(), trace);
    }

    #[test]
    fn re_encoding_is_byte_stable() {
        let trace = sample_trace(5, 80);
        let text = encode(&trace);
        assert_eq!(encode(&decode(&text).unwrap()), text);
    }

    #[test]
    fn hand_authored_trace_without_trailer_is_accepted() {
        let text = concat!(
            "{\"format\":\"rprism-trace\",\"version\":1,\"name\":\"hand\",",
            "\"program_version\":\"v1\",\"test_case\":\"t\"}\n",
            "\n",
            "{\"tid\":0,\"method\":\"<main>\",",
            "\"active\":{\"class\":\"null\",\"fp\":\"0000000000000004\",\"printed\":\"null\"},",
            "\"event\":{\"kind\":\"init\",\"class\":\"C\",\"args\":[],",
            "\"result\":{\"class\":\"C\",\"fp\":\"0000000000000000\",\"printed\":\"\",\"loc\":1,\"seq\":0}}}\n",
        );
        let trace = decode(text).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.meta.name, "hand");
        assert!(matches!(trace.entries[0].event, Event::Init { .. }));
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        // Windows-authored text traces end lines with \r\n; the reader must strip the
        // carriage return before parsing instead of feeding it to the JSON parser.
        let trace = sample_trace(17, 30);
        let crlf = encode(&trace).replace('\n', "\r\n");
        assert_eq!(decode(&crlf).unwrap(), trace, "direct CRLF decode diverged");
        // Mixed endings (a hand-edited file) and blank CRLF lines are fine too.
        let mixed = encode(&trace).replacen('\n', "\r\n", 3) + "\r\n";
        assert_eq!(decode(&mixed).unwrap(), trace, "mixed-endings decode diverged");
    }

    #[test]
    fn trailer_count_mismatch_is_rejected() {
        let trace = sample_trace(9, 4);
        let text = encode(&trace);
        let wrong = text.replace("{\"entries\":4}", "{\"entries\":5}");
        assert!(matches!(
            decode(&wrong).unwrap_err(),
            FormatError::Json { .. }
        ));
    }

    #[test]
    fn unknown_keys_and_kinds_are_rejected() {
        let header = "{\"format\":\"rprism-trace\",\"version\":1,\"name\":\"x\",\"program_version\":\"\",\"test_case\":\"\"}\n";
        let entry_with_typo = format!(
            "{header}{{\"tid\":0,\"methd\":\"m\",\"active\":{{\"class\":\"A\",\"fp\":\"0000000000000000\",\"printed\":\"\"}},\"event\":{{\"kind\":\"end\",\"stack\":[]}}}}\n"
        );
        assert!(decode(&entry_with_typo).is_err());
        let bad_kind = format!(
            "{header}{{\"tid\":0,\"method\":\"m\",\"active\":{{\"class\":\"A\",\"fp\":\"0000000000000000\",\"printed\":\"\"}},\"event\":{{\"kind\":\"jump\"}}}}\n"
        );
        assert!(decode(&bad_kind).is_err());
    }

    #[test]
    fn future_version_is_rejected_cleanly() {
        let text = "{\"format\":\"rprism-trace\",\"version\":2,\"name\":\"x\",\"program_version\":\"\",\"test_case\":\"\"}\n";
        assert!(matches!(
            decode(text).unwrap_err(),
            FormatError::UnsupportedVersion { found: 2, .. }
        ));
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let trace = sample_trace(2, 3);
        let mut text = encode(&trace);
        text.insert_str(text.find('\n').unwrap() + 1, "{not json}\n");
        match decode(&text).unwrap_err() {
            FormatError::Json { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
