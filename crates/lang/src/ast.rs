//! Abstract syntax of the core calculus (paper Fig. 3, plus documented extensions).
//!
//! The paper's grammar:
//!
//! ```text
//! program P ::= T(t;)
//! class  CL ::= class C extends C { A f; K M }
//! creation K ::= C(A f) { super(f); this.f = f; }
//! method  M ::= A m(A x) { t; return t; }
//! type    A ::= C | D
//! term    t ::= x | v | t.f | t.f = t | t.m(t) | new C(t) | new D(d) | T(t;)
//! value   v ::= l(C) | D(d)
//! ```
//!
//! Constructors are exactly the canonical Featherweight-Java form — one constructor per
//! class, taking one argument per (inherited + declared) field and assigning it — so they
//! are *not* represented explicitly in the AST; `new C(args)` suffices.
//!
//! Extensions relative to the paper (see `DESIGN.md` §3): `let`, `if`, bounded `while`,
//! primitive binary/unary operators, and string/unit literals.


use crate::names::{ClassName, FieldName, MethodName, VarName};

/// A static type: either a class type `C` or a primitive value type `D`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// A class (reference) type.
    Class(ClassName),
    /// A primitive value type.
    Prim(PrimType),
}

impl Type {
    /// Convenience constructor for a class type.
    pub fn class(name: impl Into<ClassName>) -> Self {
        Type::Class(name.into())
    }

    /// The `Object` root class type.
    pub fn object() -> Self {
        Type::Class(ClassName::object())
    }

    /// Returns the class name if this is a class type.
    pub fn as_class(&self) -> Option<&ClassName> {
        match self {
            Type::Class(c) => Some(c),
            Type::Prim(_) => None,
        }
    }

    /// A short printable name for the type, used in trace entries and diagnostics.
    pub fn type_name(&self) -> String {
        match self {
            Type::Class(c) => c.as_str().to_owned(),
            Type::Prim(p) => p.name().to_owned(),
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.type_name())
    }
}

/// The primitive ("value object") types `D` of the paper: booleans, integers and floats,
/// extended with strings and the unit type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimType {
    /// The boolean type `Bool`.
    Bool,
    /// The integer type `Int` (modelled as `i64`).
    Int,
    /// The float type `Float` (modelled as `f64`).
    Float,
    /// The string type `Str` (extension).
    Str,
    /// The unit type (extension; the value of statements evaluated for effect).
    Unit,
}

impl PrimType {
    /// Returns the canonical source-level name of the primitive type.
    pub fn name(self) -> &'static str {
        match self {
            PrimType::Bool => "Bool",
            PrimType::Int => "Int",
            PrimType::Float => "Float",
            PrimType::Str => "Str",
            PrimType::Unit => "Unit",
        }
    }
}

/// A literal primitive value `D(d)`.
#[derive(Clone, Debug, PartialEq)]
pub enum Lit {
    /// A boolean literal.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal.
    Str(String),
    /// The unit literal.
    Unit,
    /// The null reference literal (extension; the uninitialized reference).
    Null,
}

impl Lit {
    /// The primitive type of this literal, or `None` for `null` (which inhabits every
    /// class type).
    pub fn prim_type(&self) -> Option<PrimType> {
        match self {
            Lit::Bool(_) => Some(PrimType::Bool),
            Lit::Int(_) => Some(PrimType::Int),
            Lit::Float(_) => Some(PrimType::Float),
            Lit::Str(_) => Some(PrimType::Str),
            Lit::Unit => Some(PrimType::Unit),
            Lit::Null => None,
        }
    }
}

/// Binary operators over primitive values (extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition on `Int`/`Float`, concatenation on `Str`.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on `Int`).
    Div,
    /// Remainder.
    Rem,
    /// Structural equality (also defined on references: location equality).
    Eq,
    /// Structural inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-than-or-equal.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

impl BinOp {
    /// The source-level spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators over primitive values (extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

impl UnOp {
    /// The source-level spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Not => "!",
            UnOp::Neg => "-",
        }
    }
}

/// A term `t` of the calculus.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A variable occurrence `x` (method parameter or `let`-bound local).
    Var(VarName),
    /// The receiver `this`.
    This,
    /// A literal primitive value `new D(d)` / `D(d)`.
    Lit(Lit),
    /// Field access `t.f`.
    FieldGet {
        /// The target object term.
        target: Box<Term>,
        /// The field being read.
        field: FieldName,
    },
    /// Field assignment `t.f = t`.
    FieldSet {
        /// The target object term.
        target: Box<Term>,
        /// The field being written.
        field: FieldName,
        /// The value term.
        value: Box<Term>,
    },
    /// Method invocation `t.m(t̄)`.
    Call {
        /// The receiver term.
        target: Box<Term>,
        /// The invoked method.
        method: MethodName,
        /// The argument terms.
        args: Vec<Term>,
    },
    /// Object creation `new C(t̄)`.
    New {
        /// The class being instantiated.
        class: ClassName,
        /// Constructor arguments, one per field (inherited fields first).
        args: Vec<Term>,
    },
    /// Thread creation `T(t̄;)` — evaluates the body on a freshly spawned thread.
    Spawn {
        /// The terms forming the new thread's body.
        body: Vec<Term>,
    },
    /// A sequence of terms `t; …; t`, evaluating to the last term's value.
    Seq(Vec<Term>),
    /// `return t` — evaluates `t` and returns it from the enclosing method immediately
    /// (extension: the paper's calculus only has a final `return t`, which this subsumes).
    Return(Box<Term>),
    /// `let x = t in t` (extension).
    Let {
        /// The bound variable.
        var: VarName,
        /// The bound term.
        value: Box<Term>,
        /// The body in which `var` is in scope.
        body: Box<Term>,
    },
    /// `if (t) { t } else { t }` (extension).
    If {
        /// The boolean condition.
        cond: Box<Term>,
        /// The then-branch.
        then_branch: Box<Term>,
        /// The else-branch.
        else_branch: Box<Term>,
    },
    /// `while (t) { t }` (extension). Evaluates to unit; the VM bounds iteration counts.
    While {
        /// The boolean loop condition.
        cond: Box<Term>,
        /// The loop body.
        body: Box<Term>,
    },
    /// A binary primitive operation (extension).
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Term>,
        /// Right operand.
        rhs: Box<Term>,
    },
    /// A unary primitive operation (extension).
    Un {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Term>,
    },
}

impl Term {
    /// The unit literal term, handy as a "do nothing" placeholder.
    pub fn unit() -> Term {
        Term::Lit(Lit::Unit)
    }

    /// Counts the number of AST nodes in the term; used by workload generators to keep
    /// generated programs within a size budget, and by tests.
    pub fn size(&self) -> usize {
        let mut n = 1usize;
        self.for_each_child(|c| n += c.size());
        n
    }

    /// Invokes `f` on every direct child term.
    pub fn for_each_child(&self, mut f: impl FnMut(&Term)) {
        match self {
            Term::Var(_) | Term::This | Term::Lit(_) => {}
            Term::FieldGet { target, .. } => f(target),
            Term::FieldSet { target, value, .. } => {
                f(target);
                f(value);
            }
            Term::Call { target, args, .. } => {
                f(target);
                args.iter().for_each(&mut f);
            }
            Term::New { args, .. } => args.iter().for_each(&mut f),
            Term::Spawn { body } => body.iter().for_each(&mut f),
            Term::Seq(terms) => terms.iter().for_each(&mut f),
            Term::Return(value) => f(value),
            Term::Let { value, body, .. } => {
                f(value);
                f(body);
            }
            Term::If {
                cond,
                then_branch,
                else_branch,
            } => {
                f(cond);
                f(then_branch);
                f(else_branch);
            }
            Term::While { cond, body } => {
                f(cond);
                f(body);
            }
            Term::Bin { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Term::Un { operand, .. } => f(operand),
        }
    }

    /// Returns `true` if the term (or any subterm) spawns a thread.
    pub fn spawns_threads(&self) -> bool {
        if matches!(self, Term::Spawn { .. }) {
            return true;
        }
        let mut found = false;
        self.for_each_child(|c| {
            if !found && c.spawns_threads() {
                found = true;
            }
        });
        found
    }
}

/// A method definition `A m(Ā x̄) { t̄; return t; }`.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDef {
    /// The method name `m`.
    pub name: MethodName,
    /// Parameter names and their declared types.
    pub params: Vec<(VarName, Type)>,
    /// The declared return type.
    pub return_type: Type,
    /// The method body; evaluation of the final term produces the return value.
    pub body: Vec<Term>,
}

impl MethodDef {
    /// The fully-qualified signature string `C.m(A1,A2):R` used by method-view
    /// correlation (paper §3.1: "correlates two methods if their full type signatures are
    /// equal").
    pub fn signature(&self, class: &ClassName) -> String {
        let params: Vec<String> = self.params.iter().map(|(_, t)| t.type_name()).collect();
        format!(
            "{}.{}({}):{}",
            class,
            self.name,
            params.join(","),
            self.return_type.type_name()
        )
    }

    /// Total AST size of the method body.
    pub fn body_size(&self) -> usize {
        self.body.iter().map(Term::size).sum()
    }
}

/// A class definition `class C extends C' { Ā f̄; K M̄ }`.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDef {
    /// The class name `C`.
    pub name: ClassName,
    /// The superclass name `C'` (`Object` terminates the chain).
    pub superclass: ClassName,
    /// Fields declared *by this class* (not including inherited fields), in declaration
    /// order, with their types.
    pub fields: Vec<(FieldName, Type)>,
    /// Methods declared by this class.
    pub methods: Vec<MethodDef>,
}

impl ClassDef {
    /// Looks up a method declared directly on this class.
    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name.as_str() == name)
    }

    /// Returns `true` when the class declares the given field directly.
    pub fn declares_field(&self, name: &str) -> bool {
        self.fields.iter().any(|(f, _)| f.as_str() == name)
    }
}

/// A complete program: a class table plus the body of the main thread (`P ::= T(t̄;)`).
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// All user-defined classes, in declaration order.
    pub classes: Vec<ClassDef>,
    /// The terms forming the main thread's body.
    pub main: Vec<Term>,
}

impl Program {
    /// Creates an empty program (no classes, empty main body).
    pub fn empty() -> Self {
        Program {
            classes: Vec::new(),
            main: Vec::new(),
        }
    }

    /// Finds a class definition by name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name.as_str() == name)
    }

    /// Total number of AST nodes in the program (a rough "lines of code" analogue used by
    /// the evaluation harness when reporting benchmark characteristics).
    pub fn size(&self) -> usize {
        let class_nodes: usize = self
            .classes
            .iter()
            .map(|c| 1 + c.fields.len() + c.methods.iter().map(MethodDef::body_size).sum::<usize>())
            .sum();
        class_nodes + self.main.iter().map(Term::size).sum::<usize>()
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_method() -> MethodDef {
        MethodDef {
            name: MethodName::new("bump"),
            params: vec![(VarName::new("by"), Type::Prim(PrimType::Int))],
            return_type: Type::Prim(PrimType::Int),
            body: vec![Term::FieldSet {
                target: Box::new(Term::This),
                field: FieldName::new("count"),
                value: Box::new(Term::Bin {
                    op: BinOp::Add,
                    lhs: Box::new(Term::FieldGet {
                        target: Box::new(Term::This),
                        field: FieldName::new("count"),
                    }),
                    rhs: Box::new(Term::Var(VarName::new("by"))),
                }),
            }],
        }
    }

    #[test]
    fn signature_includes_class_params_and_return() {
        let m = sample_method();
        assert_eq!(
            m.signature(&ClassName::new("Counter")),
            "Counter.bump(Int):Int"
        );
    }

    #[test]
    fn term_size_counts_nodes() {
        let m = sample_method();
        // FieldSet + This + Bin + FieldGet + This + Var = 6
        assert_eq!(m.body_size(), 6);
    }

    #[test]
    fn spawn_detection_sees_nested_spawns() {
        let t = Term::Seq(vec![Term::Let {
            var: VarName::new("x"),
            value: Box::new(Term::Lit(Lit::Int(1))),
            body: Box::new(Term::Spawn {
                body: vec![Term::unit()],
            }),
        }]);
        assert!(t.spawns_threads());
        assert!(!Term::unit().spawns_threads());
    }

    #[test]
    fn program_class_lookup() {
        let p = Program {
            classes: vec![ClassDef {
                name: ClassName::new("Counter"),
                superclass: ClassName::object(),
                fields: vec![(FieldName::new("count"), Type::Prim(PrimType::Int))],
                methods: vec![sample_method()],
            }],
            main: vec![],
        };
        assert!(p.class("Counter").is_some());
        assert!(p.class("Missing").is_none());
        assert!(p.class("Counter").unwrap().declares_field("count"));
        assert!(p.class("Counter").unwrap().method("bump").is_some());
    }

    #[test]
    fn lit_prim_types() {
        assert_eq!(Lit::Int(3).prim_type(), Some(PrimType::Int));
        assert_eq!(Lit::Null.prim_type(), None);
        assert_eq!(Lit::Str("x".into()).prim_type(), Some(PrimType::Str));
    }

    #[test]
    fn operators_have_symbols() {
        assert_eq!(BinOp::Le.symbol(), "<=");
        assert_eq!(UnOp::Not.symbol(), "!");
    }
}
