//! Self-tracing: the observer's recent execution replayed onto the trace model.
//!
//! The span ring holds complete `(name, thread, start, end)` records; this module
//! rebuilds the call nesting per thread from interval containment and emits a trace
//! that follows the instrumentation semantics the `rprism-check` rules enforce —
//! calls in the caller's context before the push, returns after the pop, `<main>`
//! root frames with a null root receiver, fork parentage snapshots, per-class
//! creation sequences, and an `end` per thread. The result is *lint-clean by
//! construction*: a server can hand its own execution to `rprism check --deny error`
//! and `rprism diff` like any stored trace.
//!
//! Mapping:
//!
//! * every distinct span name becomes one `Span` object (`init`ed up front with the
//!   name as the constructor argument) — span begin/end become `call`/`return` on
//!   that object, the return value carrying the duration in microseconds;
//! * every observer thread becomes a trace thread forked from the synthetic root
//!   thread 0 (the serializer itself), so thread-view correlation across two
//!   self-traces works out of the box;
//! * the metric snapshot is written as `set` events on a `Metrics` object from the
//!   root thread, one field per counter/gauge — diffing two self-traces surfaces
//!   metric drift as field-event differences.
//!
//! Ring eviction only ever removes the *oldest* records, so a surviving child whose
//! parent span was evicted simply replays at root level — still well-formed.

use std::collections::BTreeMap;

use rprism_lang::{FieldName, MethodName};
use rprism_trace::{
    CreationSeq, EntryId, Event, Loc, ObjRep, StackFrame, StackSnapshot, ThreadId, Trace,
    TraceEntry, TraceMeta,
};

use crate::metrics::{MetricValue, Snapshot};
use crate::span::SpanRecord;

/// The synthetic root frame every thread's `end` (and every fork's parentage)
/// records: `<main>` on a null receiver, exactly the shape the checker's stack
/// reconstruction expects at root level.
fn root_snapshot() -> StackSnapshot {
    StackSnapshot::new(vec![StackFrame::new(
        MethodName::toplevel(),
        ObjRep::null(),
        ObjRep::null(),
    )])
}

/// One replayed event before the cross-thread merge: `(time, thread slot, per-thread
/// sequence)` is the merge key; context + event are the entry payload.
struct Replayed {
    time_us: u64,
    thread_slot: usize,
    seq: usize,
    tid: ThreadId,
    method: MethodName,
    active: ObjRep,
    event: Event,
}

/// Builds the self-trace from a span-record ring and a metric snapshot. See the
/// module docs for the mapping; the output is deterministic given its inputs.
pub fn build_self_trace(name: &str, records: &[SpanRecord], snapshot: &Snapshot) -> Trace {
    let null = ObjRep::null();

    // Distinct span names, sorted: per-class creation sequences must be non-
    // decreasing in init order, and sorted order keeps the object identity of a
    // span name stable across serializations of the same server.
    let mut span_names: Vec<&'static str> = records.iter().map(|r| r.name).collect();
    span_names.sort_unstable();
    span_names.dedup();
    let span_objects: BTreeMap<&'static str, ObjRep> = span_names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            (*n, ObjRep::opaque_object(Loc(1 + i as u64), "Span", CreationSeq(i as u64)))
        })
        .collect();
    let metrics_object = ObjRep::opaque_object(Loc(0), "Metrics", CreationSeq(0));

    // Observer threads, sorted, mapped onto dense trace thread ids 1..=N (0 is the
    // synthetic root thread doing the init/fork preamble and the metric writes).
    let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut trace = Trace::new(TraceMeta::new(name, "obs-1", "self-trace"));
    let mut push = |tid: ThreadId, method: MethodName, active: ObjRep, event: Event| {
        trace.push(TraceEntry::new(EntryId(0), tid, method, active, event));
    };

    // Preamble (root thread): init the metrics object, one object per span name,
    // then fork every observed thread with a faithful root parentage snapshot.
    push(
        ThreadId::MAIN,
        MethodName::toplevel(),
        null.clone(),
        Event::Init {
            class: "Metrics".to_owned(),
            args: Vec::new(),
            result: metrics_object.clone(),
        },
    );
    for span_name in &span_names {
        push(
            ThreadId::MAIN,
            MethodName::toplevel(),
            null.clone(),
            Event::Init {
                class: "Span".to_owned(),
                args: vec![ObjRep::prim("Str", *span_name)],
                result: span_objects[span_name].clone(),
            },
        );
    }
    for slot in 0..threads.len() {
        push(
            ThreadId::MAIN,
            MethodName::toplevel(),
            null.clone(),
            Event::Fork {
                child: ThreadId(1 + slot as u64),
                parentage: vec![root_snapshot()],
            },
        );
    }

    // Replay each thread's records as properly nested call/return events, then
    // merge across threads by time. Stack discipline per thread comes from interval
    // containment; emission times are clamped monotone per thread so the stable
    // cross-thread merge can never reorder one thread's events.
    let mut replayed: Vec<Replayed> = Vec::with_capacity(records.len() * 2);
    for (slot, thread) in threads.iter().enumerate() {
        let tid = ThreadId(1 + slot as u64);
        let mut own: Vec<&SpanRecord> = records.iter().filter(|r| r.thread == *thread).collect();
        own.sort_by_key(|r| (r.start_us, std::cmp::Reverse(r.end_us)));

        // Open frames: (span name, effective end clamped into the parent, duration).
        let mut stack: Vec<(&'static str, u64, u64)> = Vec::new();
        let mut seq = 0usize;
        let mut clock = 0u64;
        let context = |stack: &[(&'static str, u64, u64)]| match stack.last() {
            Some((parent, _, _)) => (MethodName::new(*parent), span_objects[parent].clone()),
            None => (MethodName::toplevel(), ObjRep::null()),
        };
        let mut emit = |time_us: u64,
                        seq: &mut usize,
                        clock: &mut u64,
                        method: MethodName,
                        active: ObjRep,
                        event: Event,
                        out: &mut Vec<Replayed>| {
            *clock = (*clock).max(time_us);
            out.push(Replayed {
                time_us: *clock,
                thread_slot: slot,
                seq: *seq,
                tid,
                method,
                active,
                event,
            });
            *seq += 1;
        };
        // The `emit` shape, named once: (time, seq, clock, method, active, event, out).
        type EmitEvent<'a> =
            dyn FnMut(u64, &mut usize, &mut u64, MethodName, ObjRep, Event, &mut Vec<Replayed>)
                + 'a;
        let pop = |stack: &mut Vec<(&'static str, u64, u64)>,
                   seq: &mut usize,
                   clock: &mut u64,
                   out: &mut Vec<Replayed>,
                   emit: &mut EmitEvent<'_>| {
            let (name, end, duration) = stack.pop().expect("pop on empty replay stack");
            let (method, active) = context(stack);
            emit(
                end,
                seq,
                clock,
                method,
                active,
                Event::Return {
                    target: span_objects[name].clone(),
                    method: MethodName::new(name),
                    value: ObjRep::prim("Int", duration.to_string()),
                },
                out,
            );
        };
        for record in own {
            while stack.last().is_some_and(|(_, end, _)| *end <= record.start_us) {
                pop(&mut stack, &mut seq, &mut clock, &mut replayed, &mut emit);
            }
            let (method, active) = context(&stack);
            emit(
                record.start_us,
                &mut seq,
                &mut clock,
                method,
                active,
                Event::Call {
                    target: span_objects[record.name].clone(),
                    method: MethodName::new(record.name),
                    args: vec![ObjRep::prim("Int", record.start_us.to_string())],
                },
                &mut replayed,
            );
            // A guard-scoped child cannot outlive its parent, but clamp anyway so a
            // damaged record cannot break the per-thread stack discipline.
            let ceiling = stack.last().map_or(u64::MAX, |(_, end, _)| *end);
            stack.push((
                record.name,
                record.end_us.min(ceiling),
                record.end_us.saturating_sub(record.start_us),
            ));
        }
        while !stack.is_empty() {
            pop(&mut stack, &mut seq, &mut clock, &mut replayed, &mut emit);
        }
    }
    replayed.sort_by_key(|r| (r.time_us, r.thread_slot, r.seq));
    for r in replayed {
        push(r.tid, r.method, r.active, r.event);
    }

    // The metric snapshot, written by the root thread: one `set` per counter/gauge.
    // Root-thread-only writes cannot race, so the happens-before rule stays quiet.
    for (metric, value) in &snapshot.entries {
        let printed = match value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram(_) => continue,
        };
        push(
            ThreadId::MAIN,
            MethodName::toplevel(),
            null.clone(),
            Event::Set {
                target: metrics_object.clone(),
                field: FieldName::new(metric),
                value: ObjRep::prim("Int", printed),
            },
        );
    }

    // Epilogue: every thread ends with the synthetic root frame, root thread last.
    for slot in 0..threads.len() {
        push(
            ThreadId(1 + slot as u64),
            MethodName::toplevel(),
            null.clone(),
            Event::End {
                stack: root_snapshot(),
            },
        );
    }
    push(
        ThreadId::MAIN,
        MethodName::toplevel(),
        null,
        Event::End {
            stack: root_snapshot(),
        },
    );
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use rprism_trace::EventKind;

    fn record(name: &'static str, thread: u64, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            name,
            thread,
            start_us,
            end_us,
        }
    }

    #[test]
    fn empty_ring_still_produces_a_well_formed_skeleton() {
        let trace = build_self_trace("obs/empty", &[], &Snapshot::default());
        assert_eq!(trace.meta.name, "obs/empty");
        // Init(Metrics) + End(main).
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.entries[0].event.kind(), EventKind::Init);
        assert_eq!(trace.entries[1].event.kind(), EventKind::End);
    }

    #[test]
    fn nesting_is_rebuilt_from_containment() {
        let records = [
            record("request.diff", 7, 10, 100),
            record("pipeline.scan", 7, 20, 60),
            record("pipeline.render", 7, 70, 90),
        ];
        let trace = build_self_trace("obs/nest", &records, &Snapshot::default());
        let kinds: Vec<EventKind> = trace.entries.iter().map(|e| e.event.kind()).collect();
        // 4 inits (Metrics + 3 span names), 1 fork, then call/return nesting, 2 ends.
        assert_eq!(
            kinds,
            vec![
                EventKind::Init,
                EventKind::Init,
                EventKind::Init,
                EventKind::Init,
                EventKind::Fork,
                EventKind::Call,   // request.diff
                EventKind::Call,   // pipeline.scan (nested)
                EventKind::Return, // pipeline.scan
                EventKind::Call,   // pipeline.render (nested)
                EventKind::Return, // pipeline.render
                EventKind::Return, // request.diff
                EventKind::End,
                EventKind::End,
            ]
        );
        // The nested call runs in its parent's context.
        let nested = &trace.entries[6];
        assert_eq!(nested.method.as_str(), "request.diff");
        assert_eq!(nested.active.class, "Span");
        // The outer return carries the duration.
        let Event::Return { value, .. } = &trace.entries[10].event else {
            panic!("expected return");
        };
        assert_eq!(value.printed, "90");
    }

    #[test]
    fn threads_are_forked_and_metrics_become_sets() {
        let registry = Registry::new();
        registry.counter("cache.hits").add(3);
        registry.gauge("repo.blobs").set(2);
        registry.histogram("skipped_us").observe_us(1);
        let records = [record("a", 40, 0, 5), record("b", 9, 1, 4)];
        let trace = build_self_trace("obs/threads", &records, &registry.snapshot());
        let forks: Vec<u64> = trace
            .entries
            .iter()
            .filter_map(|e| match &e.event {
                Event::Fork { child, .. } => Some(child.0),
                _ => None,
            })
            .collect();
        assert_eq!(forks, vec![1, 2]);
        let sets: Vec<(String, String)> = trace
            .entries
            .iter()
            .filter_map(|e| match &e.event {
                Event::Set { field, value, .. } => {
                    Some((field.as_str().to_owned(), value.printed.clone()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            sets,
            vec![
                ("cache.hits".to_owned(), "3".to_owned()),
                ("repo.blobs".to_owned(), "2".to_owned()),
            ]
        );
        // Threads sorted: observer thread 9 -> trace thread 1, 40 -> 2; every
        // thread ends, root thread last.
        let ends: Vec<u64> = trace
            .entries
            .iter()
            .filter(|e| e.event.kind() == EventKind::End)
            .map(|e| e.tid.0)
            .collect();
        assert_eq!(ends, vec![1, 2, 0]);
    }

    #[test]
    fn busy_multithreaded_self_trace_is_lint_clean() {
        // The property the whole module exists for: a realistic ring (nested spans,
        // several threads, interleaved times, metrics) replays into a trace that
        // passes every rprism-check rule.
        let registry = Registry::new();
        registry.counter("server.requests_total").add(17);
        registry.counter("cache.hits").add(9);
        registry.gauge("repo.blobs").set(4);
        let mut records = Vec::new();
        for t in 1..=4u64 {
            let base = t * 1_000;
            records.push(record("request.diff", t, base, base + 500));
            records.push(record("pipeline.decode", t, base + 10, base + 100));
            records.push(record("pipeline.scan", t, base + 120, base + 400));
            records.push(record("repo.get", t, base + 130, base + 200));
            records.push(record("request.stats", t, base + 600, base + 620));
        }
        let trace = build_self_trace("obs/busy", &records, &registry.snapshot());
        let report = rprism_check::check_trace(&trace);
        assert!(report.is_clean(), "self-trace not lint-clean: {report:?}");
    }

    #[test]
    fn zero_length_and_back_to_back_spans_stay_well_formed() {
        // Degenerate timings: zero-duration spans, a child sharing its parent's
        // start, and a sibling starting exactly when the previous one ended.
        let records = [
            record("a", 2, 10, 10),
            record("b", 2, 10, 30),
            record("c", 2, 10, 20),
            record("d", 2, 20, 30),
            record("e", 2, 30, 40),
        ];
        let trace = build_self_trace("obs/degenerate", &records, &Snapshot::default());
        let report = rprism_check::check_trace(&trace);
        assert!(report.is_clean(), "degenerate self-trace: {report:?}");
    }

    #[test]
    fn evicted_parents_leave_children_at_root_level() {
        // Child survived the ring, parent did not: replays as a root-level call.
        let records = [record("pipeline.scan", 3, 50, 60)];
        let trace = build_self_trace("obs/evicted", &records, &Snapshot::default());
        let call = trace
            .entries
            .iter()
            .find(|e| e.event.kind() == EventKind::Call)
            .expect("one call");
        assert_eq!(call.method.as_str(), "<main>");
        assert_eq!(call.active.class, "null");
    }
}
