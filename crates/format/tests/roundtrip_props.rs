//! Property tests for the trace format: round trips and corruption fuzzing.
//!
//! * For generated traces (deterministic `testgen` RNG, no external dependencies),
//!   `read(write(t)) ≡ t` under both encodings — full structural equality, which
//!   subsumes `event_eq`.
//! * Truncating a binary trace at **every** byte boundary, or flipping **any** single
//!   byte, yields `Err(..)` — never a panic and never a silently different trace. The
//!   checksummed footer is what makes the flip property hold even for bytes the
//!   structural checks cannot pin down (string contents, fingerprints).

use rprism_format::{trace_from_bytes, trace_to_bytes, Encoding, FormatError};
use rprism_trace::testgen::{arbitrary_trace, Rng};
use rprism_trace::{event_eq, Trace};

fn generated_traces() -> Vec<Trace> {
    let mut rng = Rng::new(0x5eed);
    let mut traces = Vec::new();
    for len in [0, 1, 2, 7, 30, 120] {
        for _ in 0..4 {
            traces.push(arbitrary_trace(&mut rng, len));
        }
    }
    traces
}

#[test]
fn read_write_round_trips_under_both_encodings() {
    for (i, trace) in generated_traces().iter().enumerate() {
        for encoding in [Encoding::Binary, Encoding::Jsonl] {
            let bytes = trace_to_bytes(trace, encoding)
                .unwrap_or_else(|e| panic!("case {i} ({encoding}): write failed: {e}"));
            let back = trace_from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("case {i} ({encoding}): read failed: {e}"));
            assert_eq!(&back, trace, "case {i} ({encoding}) round trip diverged");
            // Belt and braces: the entries are also pairwise event-equal (the relation
            // the differencers actually use).
            for (a, b) in trace.iter().zip(back.iter()) {
                assert!(event_eq(a, b), "case {i} ({encoding}): {} !=e {}", a, b);
            }
        }
    }
}

#[test]
fn re_encoding_is_byte_stable_under_both_encodings() {
    for (i, trace) in generated_traces().iter().enumerate() {
        for encoding in [Encoding::Binary, Encoding::Jsonl] {
            let first = trace_to_bytes(trace, encoding).unwrap();
            let reparsed = trace_from_bytes(&first).unwrap();
            let second = trace_to_bytes(&reparsed, encoding).unwrap();
            assert_eq!(first, second, "case {i} ({encoding}) re-encoding drifted");
        }
    }
}

#[test]
fn truncating_a_binary_trace_anywhere_is_a_structured_error() {
    let mut rng = Rng::new(0xcafe);
    let trace = arbitrary_trace(&mut rng, 40);
    let bytes = trace_to_bytes(&trace, Encoding::Binary).unwrap();
    for len in 0..bytes.len() {
        match trace_from_bytes(&bytes[..len]) {
            Err(_) => {}
            Ok(decoded) => panic!(
                "truncation to {len}/{} bytes decoded silently ({} entries)",
                bytes.len(),
                decoded.len()
            ),
        }
    }
}

#[test]
fn flipping_any_single_byte_of_a_binary_trace_is_a_structured_error() {
    let mut rng = Rng::new(0xbeef);
    let trace = arbitrary_trace(&mut rng, 40);
    let bytes = trace_to_bytes(&trace, Encoding::Binary).unwrap();
    for pos in 0..bytes.len() {
        for pattern in [0x01u8, 0xff, 0x80] {
            let mut damaged = bytes.clone();
            damaged[pos] ^= pattern;
            match trace_from_bytes(&damaged) {
                Err(_) => {}
                Ok(decoded) => panic!(
                    "flipping byte {pos} (xor {pattern:#04x}) of {} bytes decoded \
                     silently ({} entries, equal to original: {})",
                    bytes.len(),
                    decoded.len(),
                    decoded == trace
                ),
            }
        }
    }
}

#[test]
fn corrupting_jsonl_never_panics() {
    // JSONL has no checksum (it is the human-authoring encoding), so a flip may decode
    // to a *different but valid* trace (e.g. inside a printed value). The guarantee is
    // weaker than binary but still crucial: no flip or truncation may panic, and
    // structural damage must surface as Err.
    let mut rng = Rng::new(0xfeed);
    let trace = arbitrary_trace(&mut rng, 15);
    let bytes = trace_to_bytes(&trace, Encoding::Jsonl).unwrap();
    for len in (0..bytes.len()).step_by(7) {
        let _ = trace_from_bytes(&bytes[..len]);
    }
    for pos in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x02;
        let _ = trace_from_bytes(&damaged);
    }
}

#[test]
fn binary_error_taxonomy_is_stable() {
    // The property tests above only require *some* error; this pins the particular
    // error kinds malformed streams map to, so diagnostics stay useful.
    let mut rng = Rng::new(0xd00d);
    let trace = arbitrary_trace(&mut rng, 10);
    let bytes = trace_to_bytes(&trace, Encoding::Binary).unwrap();

    let mut wrong_magic = bytes.clone();
    wrong_magic[1] ^= 0xff;
    assert!(matches!(
        trace_from_bytes(&wrong_magic).unwrap_err(),
        // Magic damage makes the sniffer treat the stream as JSONL, which then chokes
        // on the binary bytes: either the line is not valid UTF-8 (an I/O-level error)
        // or it is not a valid header object.
        FormatError::Json { .. } | FormatError::Io(_) | FormatError::BadMagic { .. }
    ));

    let mut future = bytes.clone();
    future[4] = 0x63;
    assert!(matches!(
        trace_from_bytes(&future).unwrap_err(),
        FormatError::UnsupportedVersion { found: 0x63, .. }
    ));

    let mut flipped_checksum = bytes.clone();
    let last = flipped_checksum.len() - 1;
    flipped_checksum[last] ^= 0x10;
    assert!(matches!(
        trace_from_bytes(&flipped_checksum).unwrap_err(),
        FormatError::ChecksumMismatch { .. }
    ));

    let mut truncated = bytes;
    truncated.truncate(last.saturating_sub(20));
    assert!(matches!(
        trace_from_bytes(&truncated).unwrap_err(),
        FormatError::Truncated { .. } | FormatError::Corrupt { .. }
    ));
}
