//! Compat-layer coverage: the `#[deprecated]` one-shot API must keep compiling and
//! producing results identical to the session [`Engine`], so the shims cannot silently
//! rot while they remain published. Everything here intentionally calls deprecated
//! items.
#![allow(deprecated)]

use rprism::{AnalysisMode, DiffAlgorithm, Engine, Rprism, ViewsDiffOptions};
use rprism_diff::{views_diff, views_diff_with_webs};
use rprism_regress::{analyze, RegressionTraces};
use rprism_views::ViewWeb;

fn src(min: i64, probe: i64) -> String {
    format!(
        r#"
        class Range extends Object {{ Int min; Int max; }}
        class App extends Object {{
            Range r;
            Int hits;
            Unit setup() {{ this.r = new Range({min}, 127); }}
            Unit check(Int c) {{
                if ((c >= this.r.min) && (c <= this.r.max)) {{ this.hits = this.hits + 1; }}
            }}
        }}
        main {{ let a = new App(null, 0); a.setup(); a.check({probe}); a.check(64); }}
        "#
    )
}

#[test]
fn rprism_shim_matches_engine_diff() {
    let shim = Rprism::new();
    let engine = Engine::new();
    let old = shim.trace_source(&src(32, 20), "old").unwrap();
    let new = shim.trace_source(&src(1, 20), "new").unwrap();

    let via_shim = shim.diff(&old.trace, &new.trace);
    let pold = engine.prepare(old.trace.clone());
    let pnew = engine.prepare(new.trace.clone());
    let via_engine = engine.diff(&pold, &pnew).unwrap();

    assert!(via_shim.num_differences() > 0);
    assert_eq!(
        via_shim.matching.normalized_pairs(),
        via_engine.matching.normalized_pairs()
    );
    assert_eq!(via_shim.sequences, via_engine.sequences);
    assert_eq!(via_shim.cost.compare_ops, via_engine.cost.compare_ops);
}

#[test]
fn free_function_views_diff_variants_agree() {
    let shim = Rprism::new();
    let old = shim.trace_source(&src(32, 20), "old").unwrap().trace;
    let new = shim.trace_source(&src(1, 20), "new").unwrap().trace;
    let options = ViewsDiffOptions::default();

    let plain = views_diff(&old, &new, &options);
    let old_web = ViewWeb::build(&old);
    let new_web = ViewWeb::build(&new);
    let with_webs = views_diff_with_webs(&old, &new, &old_web, &new_web, &options);

    assert_eq!(
        plain.matching.normalized_pairs(),
        with_webs.matching.normalized_pairs()
    );
    assert_eq!(plain.sequences, with_webs.sequences);
    assert_eq!(plain.cost.compare_ops, with_webs.cost.compare_ops);
}

#[test]
fn free_function_analyze_matches_engine_analyze() {
    let shim = Rprism::new();
    let engine = Engine::new();
    let trace = |min: i64, probe: i64, label: &str| {
        shim.trace_source(&src(min, probe), label).unwrap().trace
    };
    let traces = RegressionTraces {
        old_regressing: trace(32, 20, "or"),
        new_regressing: trace(1, 20, "nr"),
        old_passing: trace(32, 64, "op"),
        new_passing: trace(1, 64, "np"),
    };

    let via_free = analyze(
        &traces,
        &DiffAlgorithm::Views(ViewsDiffOptions::default()),
        AnalysisMode::Intersect,
    )
    .unwrap();
    let via_shim = shim
        .analyze_regression(&traces, AnalysisMode::Intersect)
        .unwrap();

    let input = rprism::RegressionInput::new(
        engine.prepare(traces.old_regressing.clone()),
        engine.prepare(traces.new_regressing.clone()),
        engine.prepare(traces.old_passing.clone()),
        engine.prepare(traces.new_passing.clone()),
    );
    let via_engine = engine.analyze(&input).unwrap();

    for (label, report) in [("free fn", &via_free), ("Rprism shim", &via_shim)] {
        assert!(!report.suspected.is_empty(), "{label}");
        assert_eq!(report.suspected, via_engine.suspected, "{label}");
        assert_eq!(report.expected, via_engine.expected, "{label}");
        assert_eq!(report.regression, via_engine.regression, "{label}");
        assert_eq!(report.candidates, via_engine.candidates, "{label}");
        assert_eq!(report.compare_ops, via_engine.compare_ops, "{label}");
    }
}
