//! Reproduces Table 2 of the paper: the number of views (in the original program version)
//! and the sizes of the regression-cause analysis sets A, B, C and D for each case study.
//!
//! Run with `cargo run -p rprism-bench --bin table2 --release`.

use rprism_bench::{format_table, table2_row};
use rprism_workloads::casestudies;

fn main() {
    println!("Table 2 reproduction — number of views and analysis-set sizes\n");

    let rows: Vec<Vec<String>> = casestudies::all()
        .iter()
        .map(|scenario| {
            let row = table2_row(scenario);
            vec![
                row.name,
                row.total_views.to_string(),
                row.thread_views.to_string(),
                row.method_views.to_string(),
                row.target_object_views.to_string(),
                row.a.to_string(),
                row.b.to_string(),
                row.c.to_string(),
                row.d.to_string(),
            ]
        })
        .collect();

    println!(
        "{}",
        format_table(
            &[
                "benchmark",
                "total views",
                "thread views",
                "method views",
                "target obj views",
                "|A|",
                "|B|",
                "|C|",
                "|D|"
            ],
            &rows
        )
    );
    println!("A = suspected, B = expected, C = regression, D = candidate causes (D = (A − B) ∩ C).");
}
