//! The DERBY-1633 regression (paper §5.2, fourth case study).
//!
//! Derby is a multithreaded relational database. Between 10.1.2.1 and 10.1.3.1 a new
//! query optimization was introduced with an incomplete corner case: for a particular
//! combination of query predicate and subquery, the new version *throws during query
//! compilation*, whereas the old version executes the query normally. The interesting
//! properties for the analysis are (i) multiple threads — connection workers run
//! concurrently with the main thread and their activity must not pollute the diff — and
//! (ii) the error cut-off, which makes the raw difference count very large. We model a
//! small query engine with two spawned connection workers processing background queries
//! while the main thread compiles and executes the regressing query.

use rprism_lang::parser::parse_program;
use rprism_lang::Program;
use rprism_regress::GroundTruth;
use rprism_vm::VmConfig;

use crate::scenario::Scenario;

const COMMON: &str = r#"
    class Sys extends Object {
        Unit print(Str msg) { unit; }
        Unit fail(Str msg) { unit; }
    }
    class Ctr extends Object { Int i; }
    class Query extends Object {
        Int predicateKind;
        Bool hasSubquery;
        Int tableSize;
    }
    class ResultSink extends Object {
        Int rows;
        Unit accept(Int n) { this.rows = this.rows + n; }
    }
    class Executor extends Object {
        Int executed;
        Unit runPlan(Int planCost, Query q, ResultSink sink) {
            this.executed = this.executed + planCost;
            let c = new Ctr(0);
            while (c.i < 6) {
                sink.accept(q.tableSize);
                c.i = c.i + 1;
            }
        }
    }
    class ConnectionWorker extends Object {
        Int id;
        Int served;
        Unit serve(Query q, ResultSink sink) {
            let c = new Ctr(0);
            while (c.i < 8) {
                sink.accept(q.tableSize % 7);
                this.served = this.served + 1;
                c.i = c.i + 1;
            }
        }
    }
"#;

// The old compiler has no subquery optimization: every query is planned the same way.
const OLD_COMPILER: &str = r#"
    class QueryCompiler extends Object {
        Int compiled;
        Int compile(Query q, Sys sys) {
            this.compiled = this.compiled + 1;
            if (q.predicateKind == 2) {
                return 3;
            }
            return 1;
        }
    }
"#;

// The new compiler adds a subquery optimization whose corner case (predicate kind 2
// combined with a subquery) is incomplete and aborts compilation.
const NEW_COMPILER: &str = r#"
    class QueryCompiler extends Object {
        Int compiled;
        Int compile(Query q, Sys sys) {
            this.compiled = this.compiled + 1;
            if (q.hasSubquery) {
                return this.optimizeSubquery(q, sys);
            }
            if (q.predicateKind == 2) {
                return 3;
            }
            return 1;
        }
        Int optimizeSubquery(Query q, Sys sys) {
            if (q.predicateKind == 2) {
                sys.fail("ERROR 38000: unsupported predicate during subquery optimization");
            }
            return 2;
        }
    }
"#;

fn driver_main(predicate_kind: i64) -> String {
    format!(
        r#"
        main {{
            let sys = new Sys();
            let sink = new ResultSink(0);
            let background = new Query(1, false, 35);
            let w1 = new ConnectionWorker(1, 0);
            let w2 = new ConnectionWorker(2, 0);
            spawn {{ w1.serve(background, new ResultSink(0)); }}
            spawn {{ w2.serve(background, new ResultSink(0)); }}
            let compiler = new QueryCompiler(0);
            let exec = new Executor(0);
            let q = new Query({predicate_kind}, true, 50);
            let cost = compiler.compile(q, sys);
            exec.runPlan(cost, q, sink);
            sys.print(sink.rows);
            sys.print("done");
        }}
        "#
    )
}

fn version(compiler: &str, predicate_kind: i64) -> Program {
    let src = format!("{COMMON}{compiler}{}", driver_main(predicate_kind));
    parse_program(&src).expect("the Derby scenario sources are well-formed")
}

/// Builds the DERBY-1633 scenario.
pub fn scenario() -> Scenario {
    let old_reg = version(OLD_COMPILER, 2);
    let new_reg = version(NEW_COMPILER, 2);
    let old_pass = version(OLD_COMPILER, 1);

    Scenario {
        name: "derby-1633".into(),
        description:
            "new subquery optimization throws during query compilation for one predicate shape"
                .into(),
        old_version: Program {
            classes: old_reg.classes.clone(),
            main: vec![],
        },
        new_version: Program {
            classes: new_reg.classes.clone(),
            main: vec![],
        },
        regressing_main: old_reg.main,
        passing_main: old_pass.main,
        new_regressing_main: None,
        new_passing_main: None,
        ground_truth: GroundTruth::new(["optimizeSubquery", "compile"]),
        vm_config: VmConfig::default().with_quantum(8),
        code_removal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_regress::DiffAlgorithm;
    use rprism_trace::ThreadId;

    #[test]
    fn the_new_version_throws_only_for_the_regressing_predicate() {
        let s = scenario();
        let traces = s.trace_all().unwrap();
        assert!(traces.exhibits_regression());
        assert!(traces.new_regressing_errored);
        // The passing predicate works on both versions.
        assert_eq!(traces.old_passing_output(), traces.new_passing_output());
    }

    #[test]
    fn traces_are_multithreaded() {
        let s = scenario();
        let traces = s.trace_all().unwrap();
        let tids = traces.traces.old_regressing.thread_ids();
        assert!(tids.len() >= 3, "expected 3 threads, got {tids:?}");
        assert!(tids.contains(&ThreadId::MAIN));
    }

    #[test]
    fn analysis_isolates_the_optimizer_despite_worker_thread_noise() {
        let outcome = scenario()
            .analyze_and_evaluate(&DiffAlgorithm::Views(Default::default()))
            .unwrap();
        assert!(outcome.report.num_regression_sequences() >= 1);
        assert!(
            outcome.quality.covered_markers >= 1,
            "quality: {:?}",
            outcome.quality
        );
        // Worker-thread activity is identical across versions and must not be reported.
        let reported: Vec<String> = outcome
            .report
            .regression_sequences()
            .iter()
            .flat_map(|v| {
                v.sequence
                    .right
                    .iter()
                    .filter_map(|i| outcome.traces.traces.new_regressing.entries.get(*i))
                    .map(|e| e.render())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(
            !reported.iter().any(|r| r.contains("ConnectionWorker")),
            "worker noise leaked into the report: {reported:?}"
        );
    }
}
