//! View names and the entry→view mapping functions `σ_τ` (paper Fig. 7).
//!
//! A *view* is a named projection of the base trace. Four view types are defined:
//!
//! * **Thread views** (`TH`) — one per executing thread; contains the events of that
//!   thread in execution order.
//! * **Method views** (`CM`) — one per fully qualified method name; contains the events
//!   that occur while that method is on top of the call stack.
//! * **Target-object views** (`TO`) — one per object; contains the events for which the
//!   object is the *target* of a call, return, field access or creation.
//! * **Active-object views** (`AO`) — one per object; contains the events that occur while
//!   the object is on top of the call stack (it is the receiver of the executing method).
//!
//! The mapping functions compute, for a given trace entry, the name of the view of each
//! type the entry belongs to (or `None`, e.g. thread events have no target object view).

use rprism_trace::{intern, CreationSeq, Loc, ObjRep, Symbol, ThreadId, TraceEntry};

/// The four view types of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ViewKind {
    /// Thread views (`TH`).
    Thread,
    /// Method views (`CM`).
    Method,
    /// Target-object views (`TO`).
    TargetObject,
    /// Active-object views (`AO`).
    ActiveObject,
}

impl ViewKind {
    /// All view kinds, in a fixed order.
    pub const ALL: [ViewKind; 4] = [
        ViewKind::Thread,
        ViewKind::Method,
        ViewKind::TargetObject,
        ViewKind::ActiveObject,
    ];

    /// The short label used in reports (`TH`, `CM`, `TO`, `AO`).
    pub fn label(self) -> &'static str {
        match self {
            ViewKind::Thread => "TH",
            ViewKind::Method => "CM",
            ViewKind::TargetObject => "TO",
            ViewKind::ActiveObject => "AO",
        }
    }
}

impl std::fmt::Display for ViewKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An object identity *within one trace*: the heap location. Object views are named by
/// location (as in Fig. 7, `⟨TO, l#(θ)⟩`); correlation across traces never uses the
/// location itself but the view's representative [`ObjRep`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub Loc);

/// The name of a specific view: a view kind plus the key identifying which thread, method
/// or object the view belongs to.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ViewName {
    /// `⟨TH, tid⟩`
    Thread(ThreadId),
    /// `⟨CM, C.m⟩` — the fully qualified method name (receiver class + method).
    Method {
        /// The class of the receiver executing the method.
        class: String,
        /// The method name.
        method: String,
    },
    /// `⟨TO, l⟩`
    TargetObject(ObjectId),
    /// `⟨AO, l⟩`
    ActiveObject(ObjectId),
}

impl ViewName {
    /// The kind of this view.
    pub fn kind(&self) -> ViewKind {
        match self {
            ViewName::Thread(_) => ViewKind::Thread,
            ViewName::Method { .. } => ViewKind::Method,
            ViewName::TargetObject(_) => ViewKind::TargetObject,
            ViewName::ActiveObject(_) => ViewKind::ActiveObject,
        }
    }
}

/// The compact, `Copy` identity of a view: the interned form of a [`ViewName`].
///
/// Method names are reduced to interned [`Symbol`]s, so building and comparing keys is
/// integer work — no `String` clones. This is the key type the [`ViewWeb`](crate::web::ViewWeb)
/// indexes by and the type the per-entry view mapping produces on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ViewKey {
    /// `⟨TH, tid⟩`
    Thread(ThreadId),
    /// `⟨CM, C.m⟩` — interned receiver class and method name.
    Method(Symbol, Symbol),
    /// `⟨TO, l⟩`
    TargetObject(ObjectId),
    /// `⟨AO, l⟩`
    ActiveObject(ObjectId),
}

impl ViewKey {
    /// The kind of this view key.
    pub fn kind(&self) -> ViewKind {
        match self {
            ViewKey::Thread(_) => ViewKind::Thread,
            ViewKey::Method(..) => ViewKind::Method,
            ViewKey::TargetObject(_) => ViewKind::TargetObject,
            ViewKey::ActiveObject(_) => ViewKind::ActiveObject,
        }
    }

    /// `σ_τ` in compact form: the key of the entry's view of the given kind, if any.
    pub fn of_entry(kind: ViewKind, entry: &TraceEntry) -> Option<ViewKey> {
        match kind {
            ViewKind::Thread => Some(ViewKey::Thread(entry.tid)),
            ViewKind::Method => Some(ViewKey::Method(
                intern(&entry.active.class),
                intern(entry.method.as_str()),
            )),
            ViewKind::TargetObject => {
                let loc = entry.event.target_object()?.loc?;
                Some(ViewKey::TargetObject(ObjectId(loc)))
            }
            ViewKind::ActiveObject => {
                let loc = entry.active.loc?;
                Some(ViewKey::ActiveObject(ObjectId(loc)))
            }
        }
    }

    /// The compact key of a full [`ViewName`].
    pub fn of_name(name: &ViewName) -> ViewKey {
        match name {
            ViewName::Thread(tid) => ViewKey::Thread(*tid),
            ViewName::Method { class, method } => {
                ViewKey::Method(intern(class), intern(method))
            }
            ViewName::TargetObject(id) => ViewKey::TargetObject(*id),
            ViewName::ActiveObject(id) => ViewKey::ActiveObject(*id),
        }
    }

    /// Expands the key back into a display-friendly [`ViewName`].
    pub fn to_name(self) -> ViewName {
        match self {
            ViewKey::Thread(tid) => ViewName::Thread(tid),
            ViewKey::Method(class, method) => ViewName::Method {
                class: class.as_str().to_owned(),
                method: method.as_str().to_owned(),
            },
            ViewKey::TargetObject(id) => ViewName::TargetObject(id),
            ViewKey::ActiveObject(id) => ViewName::ActiveObject(id),
        }
    }
}

impl std::fmt::Display for ViewName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewName::Thread(tid) => write!(f, "TH:{tid}"),
            ViewName::Method { class, method } => write!(f, "CM:{class}.{method}"),
            ViewName::TargetObject(ObjectId(loc)) => write!(f, "TO:{loc}"),
            ViewName::ActiveObject(ObjectId(loc)) => write!(f, "AO:{loc}"),
        }
    }
}

/// `σ_TH`: every entry belongs to the thread view of its thread.
///
/// The name-based mappers are thin views over [`ViewKey::of_entry`] — the single source
/// of truth for view membership.
pub fn thread_view_name(entry: &TraceEntry) -> ViewName {
    ViewKey::of_entry(ViewKind::Thread, entry)
        .expect("every entry has a thread view")
        .to_name()
}

/// `σ_CM`: every entry belongs to the method view of the method under execution,
/// qualified by the class of the active object.
pub fn method_view_name(entry: &TraceEntry) -> ViewName {
    ViewKey::of_entry(ViewKind::Method, entry)
        .expect("every entry has a method view")
        .to_name()
}

/// `σ_TO`: entries whose event has a target heap object belong to that object's
/// target-object view; thread events (and events targeting primitives) have none.
pub fn target_object_view_name(entry: &TraceEntry) -> Option<ViewName> {
    Some(ViewKey::of_entry(ViewKind::TargetObject, entry)?.to_name())
}

/// `σ_AO`: entries whose active object is a heap object belong to that object's
/// active-object view.
pub fn active_object_view_name(entry: &TraceEntry) -> Option<ViewName> {
    Some(ViewKey::of_entry(ViewKind::ActiveObject, entry)?.to_name())
}

/// The union of all mapping functions: every view the entry is a member of.
pub fn view_names(entry: &TraceEntry) -> Vec<ViewName> {
    let mut names = vec![thread_view_name(entry), method_view_name(entry)];
    if let Some(n) = target_object_view_name(entry) {
        names.push(n);
    }
    if let Some(n) = active_object_view_name(entry) {
        names.push(n);
    }
    names
}

/// A single view: its name, the indices (into the base trace) of its member entries in
/// execution order, and — for object views — a representative object representation used
/// for cross-trace correlation.
#[derive(Clone, Debug, PartialEq)]
pub struct View {
    /// The view's name (display form of [`View::key`], constructed once per view).
    pub name: ViewName,
    /// The view's compact interned identity.
    pub key: ViewKey,
    /// Member entry indices into the base trace, strictly increasing.
    pub entries: Vec<usize>,
    /// For object views: the representation of the object this view is about, captured
    /// from the first member entry. `None` for thread and method views.
    pub representative: Option<ObjRep>,
}

impl View {
    /// Number of member entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the view has no member entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The position of a base-trace entry index within this view, if the entry is a
    /// member. This is the "link" used to navigate from the base trace into the view.
    pub fn position_of(&self, trace_index: usize) -> Option<usize> {
        self.entries.binary_search(&trace_index).ok()
    }

    /// The paper's `win(γ, Δ)` restricted to this view: member entry indices within
    /// `±delta` positions of the member at `position`.
    pub fn window(&self, position: usize, delta: usize) -> &[usize] {
        if self.entries.is_empty() {
            return &[];
        }
        let lo = position.saturating_sub(delta);
        let hi = (position + delta + 1).min(self.entries.len());
        &self.entries[lo..hi]
    }

    /// The class + creation sequence identity of the object this view is about, when that
    /// is derivable (object views only).
    pub fn object_identity(&self) -> Option<(&str, CreationSeq)> {
        let rep = self.representative.as_ref()?;
        Some((rep.class.as_str(), rep.creation_seq?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_lang::{FieldName, MethodName};
    use rprism_trace::{EntryId, Event, ObjRep, StackSnapshot};

    fn obj(class: &str, loc: u64, seq: u64) -> ObjRep {
        ObjRep::opaque_object(Loc(loc), class, CreationSeq(seq))
    }

    fn entry(tid: u64, method: &str, active: ObjRep, event: Event) -> TraceEntry {
        TraceEntry::new(EntryId(0), ThreadId(tid), MethodName::new(method), active, event)
    }

    #[test]
    fn field_event_belongs_to_four_views() {
        let e = entry(
            0,
            "setRequestType",
            obj("SP", 1, 0),
            Event::Set {
                target: obj("NUM", 2, 0),
                field: FieldName::new("_min"),
                value: ObjRep::prim("Int", "32"),
            },
        );
        let names = view_names(&e);
        assert_eq!(names.len(), 4);
        assert_eq!(names[0], ViewName::Thread(ThreadId(0)));
        assert_eq!(
            names[1],
            ViewName::Method {
                class: "SP".into(),
                method: "setRequestType".into()
            }
        );
        assert_eq!(names[2], ViewName::TargetObject(ObjectId(Loc(2))));
        assert_eq!(names[3], ViewName::ActiveObject(ObjectId(Loc(1))));
    }

    #[test]
    fn thread_events_have_no_object_views() {
        let e = entry(
            0,
            "<main>",
            ObjRep::null(),
            Event::End {
                stack: StackSnapshot::empty(),
            },
        );
        let names = view_names(&e);
        assert_eq!(names.len(), 2);
        assert!(names.iter().all(|n| matches!(
            n.kind(),
            ViewKind::Thread | ViewKind::Method
        )));
    }

    #[test]
    fn view_window_and_position() {
        let v = View {
            name: ViewName::Thread(ThreadId(0)),
            key: ViewKey::Thread(ThreadId(0)),
            entries: vec![3, 7, 11, 20, 22],
            representative: None,
        };
        assert_eq!(v.position_of(11), Some(2));
        assert_eq!(v.position_of(12), None);
        assert_eq!(v.window(2, 1), &[7, 11, 20]);
        assert_eq!(v.window(0, 2), &[3, 7, 11]);
        assert_eq!(v.window(4, 10), &[3, 7, 11, 20, 22]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn display_of_view_names() {
        assert_eq!(ViewName::Thread(ThreadId(2)).to_string(), "TH:t2");
        assert_eq!(
            ViewName::Method {
                class: "SP".into(),
                method: "run".into()
            }
            .to_string(),
            "CM:SP.run"
        );
        assert_eq!(ViewKind::TargetObject.label(), "TO");
    }

    #[test]
    fn object_identity_requires_representative() {
        let mut v = View {
            name: ViewName::TargetObject(ObjectId(Loc(5))),
            key: ViewKey::TargetObject(ObjectId(Loc(5))),
            entries: vec![0],
            representative: Some(obj("NUM", 5, 3)),
        };
        assert_eq!(v.object_identity(), Some(("NUM", CreationSeq(3))));
        v.representative = None;
        assert_eq!(v.object_identity(), None);
    }
}
