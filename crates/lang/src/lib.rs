//! # rprism-lang
//!
//! The core object-oriented calculus used throughout the RPrism reproduction of
//! *Semantics-Aware Trace Analysis* (Hoffman, Eugster, Jagannathan — PLDI 2009).
//!
//! The paper formalizes its trace model against a subset of Java: Featherweight Java
//! extended with locations, field assignment, term sequences, primitive value objects and
//! threads (paper §2.1, Fig. 3). This crate implements that calculus as a plain Rust data
//! structure ([`ast`]), together with:
//!
//! * a [`ClassTable`] providing the `fields` and `mbody` auxiliary
//!   functions of Fig. 5,
//! * a hand-written [`parser`] and [pretty printer](pretty) for a concrete syntax,
//! * a fluent [builder API](build) used by the synthetic workload generators,
//! * [static validation](validate) of programs (well-formed class hierarchies, known
//!   fields/methods, constructor arity).
//!
//! The calculus is extended — as documented in `DESIGN.md` — with conditionals, a bounded
//! loop, let-bindings, primitive operators and string literals so that the evaluation
//! workloads of the paper (boundary-condition bugs, control-flow bugs, …) can be expressed.
//! These extensions only affect program evaluation in `rprism-vm`; the *trace grammar*
//! consumed by the analyses is exactly the paper's.
//!
//! ## Example
//!
//! ```
//! use rprism_lang::parser::parse_program;
//!
//! let src = r#"
//!     class Counter extends Object {
//!         Int count;
//!         Int bump(Int by) { this.count = this.count + by; return this.count; }
//!     }
//!     main {
//!         let c = new Counter(0);
//!         c.bump(2);
//!         c.bump(3);
//!     }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.classes.len(), 1);
//! # Ok::<(), rprism_lang::Error>(())
//! ```

pub mod ast;
pub mod build;
pub mod classtable;
pub mod error;
pub mod names;
pub mod parser;
pub mod pretty;
pub mod validate;

pub use ast::{ClassDef, MethodDef, Program, Term, Type};
pub use classtable::ClassTable;
pub use error::Error;
pub use names::{ClassName, FieldName, MethodName, VarName};
