//! The framed wire protocol of the trace-repository daemon.
//!
//! Every message travels as one frame ([`rprism_format::frame`]): a canonical LEB128
//! length prefix, the payload, and the FNV-64 checksum of the payload — the varint and
//! checksum machinery of the on-disk trace format, reused on the wire. Inside a frame,
//! the payload opens with the protocol version byte and a message tag, followed by the
//! message fields in the same primitive vocabulary the binary trace encoding uses
//! (varints, length-prefixed UTF-8 strings, length-prefixed byte blobs).
//!
//! The protocol is a strict request/response alternation per connection: the client
//! writes one request frame, the server answers with exactly one response frame, and
//! either side may close between exchanges. Malformed input never kills the server —
//! an undecodable frame or message is answered with [`Response::Error`] (and the
//! connection closed when the stream itself can no longer be trusted, e.g. after a
//! checksum mismatch).
//!
//! Results cross the wire in **canonical, process-independent form**: matchings as
//! normalized index pairs, difference sequences as index lists, and
//! [`DiffSignature`]s with their interned symbols spelled back out as strings
//! ([`WireSignature`]) — the client re-interns them into its own process and obtains
//! signatures equal to what a local analysis of the same traces would produce. The
//! `remote_equivalence` integration suite pins exactly that.

use rprism::check::{rules, Diagnostic};
use rprism::{
    AnalysisMode, CheckReport, ProvisionalEvent, RegressionReport, Severity, TraceDiffResult,
};
use rprism_diff::DiffSequence;
use rprism_format::error::{FormatError, Result as FormatResult};
use rprism_format::varint::{self, ByteSource as _};
use rprism_regress::{DiffSet, DiffSignature};
use rprism_trace::{intern, EventKind, Symbol, ValueFingerprint};

/// The wire-protocol version; bumped on any message change. Every payload starts
/// with this byte.
///
/// Version 2 added the [`Response::Busy`] load-shed frame, the
/// [`Response::Corrupt`] quarantine answer, and the recovery counters at the end
/// of [`WireStats`]. Version 3 added [`Request::Check`] / [`Response::CheckOk`].
/// Version 4 added the live-watch exchange — [`Request::WatchStart`],
/// [`Request::PutStream`], [`Response::WatchStarted`], [`Response::WatchEvent`],
/// [`Response::WatchDone`] — and the structured [`Response::CheckDenied`] answer
/// for a watch aborted by the server's ingest check. Version 5 added the
/// observability pair — [`Request::Metrics`] / [`Response::MetricsOk`] (the
/// server-rendered Prometheus exposition) and [`Request::ObsTrace`] /
/// [`Response::ObsTraceOk`] (the server's own recent execution serialized as a
/// canonical trace blob).
///
/// Encoders always stamp the current version; decoders accept every version from
/// [`MIN_PROTO_VERSION`] up, and each message tag carries the version that
/// introduced it — so a version-2 peer keeps working against a version-5 server
/// for every version-2 message, while a version-2 frame carrying a newer tag
/// is refused with a structured decode error (which the server answers with an
/// error frame, keeping the connection alive) instead of a garbled decode.
pub const PROTO_VERSION: u8 = 5;

/// The oldest protocol version the decoders still accept (see [`PROTO_VERSION`]).
pub const MIN_PROTO_VERSION: u8 = 2;

const TAG_PUT: u8 = 0x01;
const TAG_GET: u8 = 0x02;
const TAG_LIST: u8 = 0x03;
const TAG_DIFF: u8 = 0x04;
const TAG_ANALYZE: u8 = 0x05;
const TAG_STATS: u8 = 0x06;
const TAG_SHUTDOWN: u8 = 0x07;
const TAG_CHECK: u8 = 0x08;
const TAG_WATCH_START: u8 = 0x09;
const TAG_PUT_STREAM: u8 = 0x0a;
const TAG_METRICS: u8 = 0x0b;
const TAG_OBS_TRACE: u8 = 0x0c;

const TAG_PUT_OK: u8 = 0x81;
const TAG_GET_OK: u8 = 0x82;
const TAG_LIST_OK: u8 = 0x83;
const TAG_DIFF_OK: u8 = 0x84;
const TAG_ANALYZE_OK: u8 = 0x85;
const TAG_STATS_OK: u8 = 0x86;
const TAG_SHUTDOWN_OK: u8 = 0x87;
const TAG_CHECK_OK: u8 = 0x88;
const TAG_WATCH_STARTED: u8 = 0x89;
const TAG_WATCH_EVENT: u8 = 0x8a;
const TAG_WATCH_DONE: u8 = 0x8b;
const TAG_CHECK_DENIED: u8 = 0x8c;
const TAG_METRICS_OK: u8 = 0x8d;
const TAG_OBS_TRACE_OK: u8 = 0x8e;
const TAG_BUSY: u8 = 0xfd;
const TAG_CORRUPT: u8 = 0xfe;
const TAG_ERROR: u8 = 0xff;

/// The protocol version that introduced a message tag. A frame whose version byte
/// predates its tag is a peer speaking a version it does not actually have; the
/// decoders refuse it with a structured error naming the required version.
fn tag_min_version(tag: u8) -> u8 {
    match tag {
        TAG_CHECK | TAG_CHECK_OK => 3,
        TAG_WATCH_START | TAG_PUT_STREAM | TAG_WATCH_STARTED | TAG_WATCH_EVENT
        | TAG_WATCH_DONE | TAG_CHECK_DENIED => 4,
        TAG_METRICS | TAG_OBS_TRACE | TAG_METRICS_OK | TAG_OBS_TRACE_OK => 5,
        _ => MIN_PROTO_VERSION,
    }
}

/// The differencing algorithm a [`Request::Diff`] / [`Request::Analyze`] asks the
/// server to use. The server applies its configured options for the chosen family;
/// only the algorithm itself travels on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireAlgorithm {
    /// Views-based differencing (§3.3) — the server default.
    Views,
    /// The quadratic LCS baseline (§3.2).
    Lcs,
    /// Anchor-based (patience/histogram) differencing: near-linear on huge traces,
    /// verdict-equivalent to the exact modes but matchings may legitimately differ.
    Anchored,
}

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Store a serialized trace (either encoding); the server replies with its
    /// content hash and whether it was already present.
    Put {
        /// The serialized trace bytes, exactly as they would sit in a file.
        bytes: Vec<u8>,
    },
    /// Fetch the stored blob of a content hash.
    Get {
        /// The content hash ([`rprism_format::content_hash`]) of the trace.
        hash: u64,
    },
    /// List the repository's traces.
    List,
    /// Semantically difference two stored traces.
    Diff {
        /// Content hash of the left (old) trace.
        left: u64,
        /// Content hash of the right (new) trace.
        right: u64,
        /// How many difference sequences the server renders into the textual report.
        max_sequences: u64,
        /// Differencing-algorithm override (`None` uses the server engine's default).
        ///
        /// Encoded as an *optional trailing byte*: requests without an override emit
        /// the exact pre-override frame, so old clients and old servers interoperate
        /// unchanged (the protocol version stays 3).
        algorithm: Option<WireAlgorithm>,
    },
    /// Run the §4.1 regression-cause analysis over four stored traces.
    Analyze {
        /// Content hash of the old-version, regressing-test trace.
        old_regressing: u64,
        /// Content hash of the new-version, regressing-test trace.
        new_regressing: u64,
        /// Content hash of the old-version, passing-test trace.
        old_passing: u64,
        /// Content hash of the new-version, passing-test trace.
        new_passing: u64,
        /// Analysis-mode override (`None` uses the server engine's default).
        mode: Option<AnalysisMode>,
        /// How many regression-related sequences the server renders into the textual
        /// report.
        max_sequences: u64,
        /// Differencing-algorithm override, trailing-optional exactly as in
        /// [`Request::Diff`].
        algorithm: Option<WireAlgorithm>,
    },
    /// Run the `rprism-check` static analysis over a stored trace (added in
    /// protocol version 3).
    Check {
        /// The content hash of the trace to check.
        hash: u64,
        /// Per-rule severity overrides (`rule id → severity`), applied in order on
        /// top of the rule defaults — the wire form of
        /// [`CheckConfig::overrides`](rprism::CheckConfig::overrides).
        overrides: Vec<(String, Severity)>,
    },
    /// Open a live watch against a stored trace (added in protocol version 4): the
    /// connection enters watch mode, and subsequent [`Request::PutStream`] chunks
    /// carry the growing new trace. The strict one-request/one-response alternation
    /// is preserved — every chunk is individually acknowledged.
    WatchStart {
        /// Content hash of the stored old (left) trace to diff against.
        old: u64,
        /// How many difference sequences the server renders into the final report.
        max_sequences: u64,
    },
    /// One chunk of the watched trace's serialized bytes (either encoding), cut at
    /// **arbitrary** byte boundaries — mid-record, mid-varint, even mid-header. The
    /// server resumes decoding exactly where the previous chunk stopped. Only valid
    /// after [`Request::WatchStart`] on the same connection.
    PutStream {
        /// The next serialized bytes, appended to everything sent before.
        bytes: Vec<u8>,
        /// `true` on the final chunk: the server drains its decoder with strict
        /// end-of-input semantics and answers [`Response::WatchDone`].
        last: bool,
    },
    /// Repository and cache statistics.
    Stats,
    /// The server's metrics rendered in the Prometheus text exposition format (added
    /// in protocol version 5). Rendering happens server-side from one consistent
    /// snapshot, so what a client prints is byte-identical to what the server saw.
    Metrics,
    /// The server's own recent execution — its pipeline/repo/request spans plus a
    /// metric snapshot — serialized as a canonical binary trace blob (added in
    /// protocol version 5). The blob loads like any stored trace: `rprism check`,
    /// `rprism diff`, `Engine::load_prepared` all accept it.
    ObsTrace,
    /// Gracefully stop the daemon: in-flight requests drain, then the listener exits.
    Shutdown,
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Outcome of a [`Request::Put`].
    PutOk {
        /// The trace's content hash — the key for every later request.
        hash: u64,
        /// `true` when the repository already held this content (nothing was written).
        deduped: bool,
        /// Number of entries in the trace.
        entries: u64,
    },
    /// The stored blob bytes of a [`Request::Get`].
    GetOk {
        /// The blob exactly as stored.
        bytes: Vec<u8>,
    },
    /// The repository listing of a [`Request::List`].
    ListOk {
        /// One row per stored trace.
        entries: Vec<RepoEntry>,
    },
    /// The result of a [`Request::Diff`].
    DiffOk(WireDiff),
    /// The result of a [`Request::Analyze`].
    AnalyzeOk(WireReport),
    /// The result of a [`Request::Check`] (added in protocol version 3): the full
    /// structured [`CheckReport`], not a rendering — the client renders locally with
    /// the same code a local check uses, so `rprism remote check` output is
    /// byte-identical to `rprism check` over the same blob. Diagnostic rule ids are
    /// spelled out as strings on the wire and mapped back through the static rule
    /// registry on decode (an unknown id is a decode error).
    CheckOk(Box<CheckReport>),
    /// Acknowledges a [`Request::WatchStart`] (added in protocol version 4): the
    /// old trace is loaded and the connection is in watch mode.
    WatchStarted,
    /// Acknowledges a non-final [`Request::PutStream`] chunk with the provisional
    /// events the chunk produced (possibly none — e.g. the chunk ended mid-record).
    WatchEvent {
        /// Provisional events, in emission order.
        events: Vec<WireWatchEvent>,
    },
    /// Answers the final [`Request::PutStream`] chunk: the reconciliation events the
    /// finish produced plus the authoritative diff, byte-identical to a
    /// [`Request::Diff`] of the same pair.
    WatchDone {
        /// Final reconciliation events (authoritative pairs never reported
        /// provisionally, then retractions of provisional pairs the verdict dropped).
        events: Vec<WireWatchEvent>,
        /// The authoritative diff, rendered with the watch's `max_sequences`.
        diff: WireDiff,
    },
    /// The server's ingest check denied the watched trace mid-stream (added in
    /// protocol version 4): the full structured report travels back, the watch is
    /// torn down, and the connection stays open. Unlike [`Response::Error`], the
    /// client can render the diagnostics exactly as a local denied check would.
    CheckDenied(Box<CheckReport>),
    /// The statistics snapshot of a [`Request::Stats`].
    StatsOk(WireStats),
    /// The Prometheus text exposition of a [`Request::Metrics`] (added in protocol
    /// version 5).
    MetricsOk {
        /// The rendered exposition, exactly as the server would serve it.
        text: String,
    },
    /// The serialized self-trace of a [`Request::ObsTrace`] (added in protocol
    /// version 5).
    ObsTraceOk {
        /// The canonical binary `.rtr` bytes of the server's self-trace.
        bytes: Vec<u8>,
    },
    /// Acknowledges a [`Request::Shutdown`]; the daemon stops accepting connections.
    ShutdownOk,
    /// The server is saturated and shed this connection before serving any request;
    /// the connection closes after this frame. Clients with a retry policy back off
    /// at least the hinted delay and reconnect.
    Busy {
        /// Server-suggested minimum backoff before retrying.
        retry_after_ms: u32,
    },
    /// The named blob failed verification when read back and was quarantined. The
    /// repository stays up, and re-uploading the trace heals the entry — unlike
    /// [`Response::Error`], this failure names the hash so clients can do exactly
    /// that.
    Corrupt {
        /// The content hash whose blob was quarantined.
        hash: u64,
        /// Human-readable detail.
        message: String,
    },
    /// The request failed; the connection stays open unless the transport itself is
    /// compromised.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// One repository listing row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepoEntry {
    /// Content hash (the repository key).
    pub hash: u64,
    /// The trace's `meta.name`.
    pub name: String,
    /// Number of entries.
    pub entries: u64,
    /// On-disk blob size in bytes.
    pub bytes: u64,
}

/// A [`TraceDiffResult`] in canonical wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireDiff {
    /// The differencing algorithm label (`"views"`, `"lcs"`).
    pub algorithm: String,
    /// Entry count of the left trace.
    pub left_len: u64,
    /// Entry count of the right trace.
    pub right_len: u64,
    /// The normalized similarity pairs of the matching (ascending left index).
    pub pairs: Vec<(u64, u64)>,
    /// The difference sequences.
    pub sequences: Vec<WireSequence>,
    /// Deterministic compare-operation count of the run.
    pub compare_ops: u64,
    /// Number of differing entries.
    pub num_differences: u64,
    /// The server-rendered textual diff (bounded by the request's `max_sequences`).
    pub rendered: String,
}

impl WireDiff {
    /// Builds the wire form of a local result plus its rendering.
    pub fn from_result(result: &TraceDiffResult, rendered: String) -> Self {
        WireDiff {
            algorithm: result.algorithm.to_owned(),
            left_len: result.matching.left_len() as u64,
            right_len: result.matching.right_len() as u64,
            pairs: result
                .matching
                .normalized_pairs()
                .into_iter()
                .map(|(l, r)| (l as u64, r as u64))
                .collect(),
            sequences: result.sequences.iter().map(WireSequence::from_sequence).collect(),
            compare_ops: result.cost.compare_ops,
            num_differences: result.num_differences() as u64,
            rendered,
        }
    }

    /// The sequences as local [`DiffSequence`] values (for equivalence checks).
    pub fn sequences_local(&self) -> Vec<DiffSequence> {
        self.sequences.iter().map(WireSequence::to_sequence).collect()
    }

    /// The matching pairs as `usize` tuples, the shape
    /// [`Matching::normalized_pairs`](rprism_diff::Matching::normalized_pairs) returns.
    pub fn pairs_local(&self) -> Vec<(usize, usize)> {
        self.pairs.iter().map(|&(l, r)| (l as usize, r as usize)).collect()
    }

    /// Number of difference sequences.
    pub fn num_sequences(&self) -> usize {
        self.sequences.len()
    }
}

/// A [`DiffSequence`] in wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSequence {
    /// Unmatched left-trace indices, ascending.
    pub left: Vec<u64>,
    /// Unmatched right-trace indices, ascending.
    pub right: Vec<u64>,
}

impl WireSequence {
    fn from_sequence(sequence: &DiffSequence) -> Self {
        WireSequence {
            left: sequence.left.iter().map(|&i| i as u64).collect(),
            right: sequence.right.iter().map(|&i| i as u64).collect(),
        }
    }

    fn to_sequence(&self) -> DiffSequence {
        DiffSequence {
            left: self.left.iter().map(|&i| i as usize).collect(),
            right: self.right.iter().map(|&i| i as usize).collect(),
        }
    }
}

/// A [`ProvisionalEvent`] in wire form (added in protocol version 4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireWatchEvent {
    /// The pair entered the provisional similarity set.
    Match {
        /// Old-trace entry index.
        left: u64,
        /// New-trace entry index.
        right: u64,
    },
    /// A previously emitted pair was retracted.
    Invalidate {
        /// Old-trace entry index.
        left: u64,
        /// New-trace entry index.
        right: u64,
    },
    /// A provisionally divergent region; either side may be empty, never both.
    Difference {
        /// Skipped old-trace entry indices.
        left: Vec<u64>,
        /// Skipped new-trace entry indices.
        right: Vec<u64>,
    },
}

impl WireWatchEvent {
    /// Builds the wire form of a local provisional event.
    pub fn from_event(event: &ProvisionalEvent) -> Self {
        match event {
            ProvisionalEvent::Match { left, right } => WireWatchEvent::Match {
                left: *left as u64,
                right: *right as u64,
            },
            ProvisionalEvent::Invalidate { left, right } => WireWatchEvent::Invalidate {
                left: *left as u64,
                right: *right as u64,
            },
            ProvisionalEvent::Difference { left, right } => WireWatchEvent::Difference {
                left: left.iter().map(|&i| i as u64).collect(),
                right: right.iter().map(|&i| i as u64).collect(),
            },
        }
    }

    /// The event as the local type (for rendering and equivalence checks).
    pub fn to_event(&self) -> ProvisionalEvent {
        match self {
            WireWatchEvent::Match { left, right } => ProvisionalEvent::Match {
                left: *left as usize,
                right: *right as usize,
            },
            WireWatchEvent::Invalidate { left, right } => ProvisionalEvent::Invalidate {
                left: *left as usize,
                right: *right as usize,
            },
            WireWatchEvent::Difference { left, right } => ProvisionalEvent::Difference {
                left: left.iter().map(|&i| i as usize).collect(),
                right: right.iter().map(|&i| i as usize).collect(),
            },
        }
    }
}

/// A [`DiffSignature`] in wire form: every interned [`Symbol`] spelled out as its
/// string, so the signature survives the process boundary. [`WireSignature::to_signature`]
/// re-interns on the receiving side, producing a signature equal to what that process
/// would derive locally from the same trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSignature {
    /// The event form.
    pub kind: EventKind,
    /// The field/method/class name the event mentions, if any.
    pub name: Option<String>,
    /// Class name and value fingerprint of every operand, in event order.
    pub operands: Vec<(String, u64)>,
    /// The enclosing method.
    pub method: String,
    /// The enclosing active-object class.
    pub active_class: String,
}

impl WireSignature {
    /// Spells out a local signature's symbols.
    pub fn from_signature(signature: &DiffSignature) -> Self {
        WireSignature {
            kind: signature.kind,
            name: signature.name.map(|s| s.as_str().to_owned()),
            operands: signature
                .operands
                .iter()
                .map(|&(class, fp)| (class.as_str().to_owned(), fp.0))
                .collect(),
            method: signature.method.as_str().to_owned(),
            active_class: signature.active_class.as_str().to_owned(),
        }
    }

    /// Re-interns the signature into this process.
    pub fn to_signature(&self) -> DiffSignature {
        DiffSignature {
            kind: self.kind,
            name: self.name.as_deref().map(intern),
            operands: self
                .operands
                .iter()
                .map(|(class, fp)| (intern(class), ValueFingerprint(*fp)))
                .collect::<Vec<(Symbol, ValueFingerprint)>>()
                .into(),
            method: intern(&self.method),
            active_class: intern(&self.active_class),
        }
    }
}

/// A [`RegressionReport`] in canonical wire form.
#[derive(Clone, Debug, PartialEq)]
pub struct WireReport {
    /// The differencing algorithm label.
    pub algorithm: String,
    /// The analysis mode that produced D.
    pub mode: AnalysisMode,
    /// The suspected differences A.
    pub suspected: Vec<WireSignature>,
    /// The expected differences B.
    pub expected: Vec<WireSignature>,
    /// The regression differences C.
    pub regression: Vec<WireSignature>,
    /// The candidate causes D.
    pub candidates: Vec<WireSignature>,
    /// Every suspected-comparison difference sequence with its regression verdict.
    pub sequences: Vec<(WireSequence, bool)>,
    /// Total compare operations across the three differencing runs.
    pub compare_ops: u64,
    /// The server-rendered textual report.
    pub rendered: String,
}

impl WireReport {
    /// Builds the wire form of a local report plus its rendering.
    pub fn from_report(report: &RegressionReport, rendered: String) -> Self {
        let set = |s: &DiffSet| -> Vec<WireSignature> {
            let mut signatures: Vec<WireSignature> =
                s.iter().map(WireSignature::from_signature).collect();
            // Deterministic wire order regardless of hash-set iteration (cached key:
            // one Debug rendering per signature, not two per comparison).
            signatures.sort_by_cached_key(|s| format!("{s:?}"));
            signatures
        };
        WireReport {
            algorithm: report.algorithm.to_owned(),
            mode: report.mode,
            suspected: set(&report.suspected),
            expected: set(&report.expected),
            regression: set(&report.regression),
            candidates: set(&report.candidates),
            sequences: report
                .sequences
                .iter()
                .map(|v| (WireSequence::from_sequence(&v.sequence), v.regression_related))
                .collect(),
            compare_ops: report.compare_ops,
            rendered,
        }
    }

    /// One of the four sets re-interned into a local [`DiffSet`].
    pub fn set_local(signatures: &[WireSignature]) -> DiffSet {
        let mut set = DiffSet::new();
        for signature in signatures {
            set.insert(signature.to_signature());
        }
        set
    }

    /// The regression-related verdicts, in sequence order.
    pub fn verdicts(&self) -> Vec<bool> {
        self.sequences.iter().map(|(_, related)| *related).collect()
    }
}

/// A repository/cache statistics snapshot in wire form.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Number of stored blobs.
    pub blobs: u64,
    /// Total on-disk blob bytes.
    pub blob_bytes: u64,
    /// Prepared handles currently cached.
    pub prepared_cached: u64,
    /// Weight of the cached handles against the byte budget.
    pub prepared_cached_bytes: u64,
    /// The configured prepared-cache byte budget.
    pub cache_budget_bytes: u64,
    /// Prepared-cache hits since startup.
    pub prepared_hits: u64,
    /// Prepared-cache misses (streaming loads) since startup.
    pub prepared_misses: u64,
    /// Prepared handles evicted by the byte budget since startup.
    pub evictions: u64,
    /// Uploads deduplicated against existing content since startup.
    pub dedup_hits: u64,
    /// Requests served since startup (all kinds).
    pub requests_served: u64,
    /// View correlations the shared engine actually built.
    pub correlation_builds: u64,
    /// Trace pairs currently in the engine's correlation cache.
    pub cached_correlations: u64,
    /// Orphaned staging files swept by startup recovery.
    pub orphans_removed: u64,
    /// Blobs quarantined after failing content verification.
    pub quarantined: u64,
    /// Watermark-triggered prepared-cache shrinks.
    pub cache_shrinks: u64,
}

// ---------------------------------------------------------------------------
// Primitive encode/decode
// ---------------------------------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    varint::write_u64(buf, value);
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// A cursor over a message payload; all errors are [`FormatError::Corrupt`] with the
/// byte offset inside the payload.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn corrupt(&self, detail: impl Into<String>) -> FormatError {
        FormatError::Corrupt {
            offset: self.pos as u64,
            detail: detail.into(),
        }
    }

    fn u8(&mut self) -> FormatResult<u8> {
        let byte = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.corrupt("message truncated"))?;
        self.pos += 1;
        Ok(byte)
    }

    fn u64(&mut self) -> FormatResult<u64> {
        let mut source = varint::SliceSource::new(&self.bytes[self.pos..], self.pos as u64);
        let value = varint::read_u64(&mut source)?;
        self.pos = source.offset() as usize;
        Ok(value)
    }

    fn bool(&mut self) -> FormatResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.corrupt(format!("invalid boolean byte {other:#04x}"))),
        }
    }

    fn bytes(&mut self) -> FormatResult<Vec<u8>> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| self.corrupt("length overflows usize"))?;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| self.corrupt(format!("field of {len} bytes overruns the message")))?;
        let out = self.bytes[self.pos..end].to_vec();
        self.pos = end;
        Ok(out)
    }

    fn str(&mut self) -> FormatResult<String> {
        String::from_utf8(self.bytes()?).map_err(|_| self.corrupt("string is not valid UTF-8"))
    }

    fn u64s(&mut self) -> FormatResult<Vec<u64>> {
        let count = self.u64()?;
        let mut out = Vec::new();
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// `true` while undecoded bytes remain — the gate for trailing-optional fields
    /// (read the field iff a newer client appended it; [`Dec::finish`] still rejects
    /// anything left over after every decoder ran).
    fn has_remaining(&self) -> bool {
        self.pos < self.bytes.len()
    }

    fn finish(&self) -> FormatResult<()> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the message",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn kind_byte(kind: EventKind) -> u8 {
    match kind {
        EventKind::Get => 1,
        EventKind::Set => 2,
        EventKind::Call => 3,
        EventKind::Return => 4,
        EventKind::Init => 5,
        EventKind::Fork => 6,
        EventKind::End => 7,
    }
}

fn byte_kind(byte: u8, dec: &Dec<'_>) -> FormatResult<EventKind> {
    Ok(match byte {
        1 => EventKind::Get,
        2 => EventKind::Set,
        3 => EventKind::Call,
        4 => EventKind::Return,
        5 => EventKind::Init,
        6 => EventKind::Fork,
        7 => EventKind::End,
        other => return Err(dec.corrupt(format!("unknown event kind {other:#04x}"))),
    })
}

fn mode_byte(mode: Option<AnalysisMode>) -> u8 {
    match mode {
        None => 0,
        Some(AnalysisMode::Intersect) => 1,
        Some(AnalysisMode::SubtractRegressionSet) => 2,
    }
}

fn byte_mode(byte: u8, dec: &Dec<'_>) -> FormatResult<Option<AnalysisMode>> {
    Ok(match byte {
        0 => None,
        1 => Some(AnalysisMode::Intersect),
        2 => Some(AnalysisMode::SubtractRegressionSet),
        other => return Err(dec.corrupt(format!("unknown analysis mode {other:#04x}"))),
    })
}

fn algorithm_byte(algorithm: WireAlgorithm) -> u8 {
    match algorithm {
        WireAlgorithm::Views => 1,
        WireAlgorithm::Lcs => 2,
        WireAlgorithm::Anchored => 3,
    }
}

fn byte_algorithm(byte: u8, dec: &Dec<'_>) -> FormatResult<WireAlgorithm> {
    Ok(match byte {
        1 => WireAlgorithm::Views,
        2 => WireAlgorithm::Lcs,
        3 => WireAlgorithm::Anchored,
        other => return Err(dec.corrupt(format!("unknown diff algorithm {other:#04x}"))),
    })
}

fn severity_byte(severity: Severity) -> u8 {
    match severity {
        Severity::Info => 1,
        Severity::Warning => 2,
        Severity::Error => 3,
    }
}

fn byte_severity(byte: u8, dec: &Dec<'_>) -> FormatResult<Severity> {
    Ok(match byte {
        1 => Severity::Info,
        2 => Severity::Warning,
        3 => Severity::Error,
        other => return Err(dec.corrupt(format!("unknown severity {other:#04x}"))),
    })
}

fn put_overrides(buf: &mut Vec<u8>, overrides: &[(String, Severity)]) {
    put_u64(buf, overrides.len() as u64);
    for (rule, severity) in overrides {
        put_str(buf, rule);
        buf.push(severity_byte(*severity));
    }
}

fn get_overrides(dec: &mut Dec<'_>) -> FormatResult<Vec<(String, Severity)>> {
    let count = dec.u64()?;
    let mut out = Vec::new();
    for _ in 0..count {
        let rule = dec.str()?;
        let severity_raw = dec.u8()?;
        out.push((rule, byte_severity(severity_raw, dec)?));
    }
    Ok(out)
}

fn put_check_report(buf: &mut Vec<u8>, report: &CheckReport) {
    put_str(buf, &report.trace_name);
    put_u64(buf, report.entries as u64);
    put_u64(buf, report.threads as u64);
    put_u64(buf, report.suppressed as u64);
    put_u64(buf, report.diagnostics.len() as u64);
    for diagnostic in &report.diagnostics {
        put_str(buf, diagnostic.rule_id);
        buf.push(severity_byte(diagnostic.severity));
        put_u64(buf, diagnostic.entry_index as u64);
        put_str(buf, &diagnostic.message);
        put_u64(buf, diagnostic.related_entries.len() as u64);
        for &related in &diagnostic.related_entries {
            put_u64(buf, related as u64);
        }
    }
}

fn get_usize(dec: &mut Dec<'_>) -> FormatResult<usize> {
    let value = dec.u64()?;
    usize::try_from(value).map_err(|_| dec.corrupt("count overflows usize"))
}

fn get_check_report(dec: &mut Dec<'_>) -> FormatResult<CheckReport> {
    let trace_name = dec.str()?;
    let entries = get_usize(dec)?;
    let threads = get_usize(dec)?;
    let suppressed = get_usize(dec)?;
    let count = dec.u64()?;
    let mut diagnostics = Vec::new();
    for _ in 0..count {
        let rule_id = dec.str()?;
        // Rule ids live in the static registry; mapping the wire string back
        // through it both validates the id and recovers the `&'static str` the
        // diagnostic model carries.
        let rule_id = rules::rule(&rule_id)
            .ok_or_else(|| dec.corrupt(format!("unknown rule id {rule_id:?}")))?
            .id;
        let severity_raw = dec.u8()?;
        let severity = byte_severity(severity_raw, dec)?;
        let entry_index = get_usize(dec)?;
        let message = dec.str()?;
        let related_count = dec.u64()?;
        let mut related_entries = Vec::new();
        for _ in 0..related_count {
            related_entries.push(get_usize(dec)?);
        }
        diagnostics.push(Diagnostic {
            rule_id,
            severity,
            entry_index,
            message,
            related_entries,
        });
    }
    Ok(CheckReport {
        trace_name,
        entries,
        threads,
        suppressed,
        diagnostics,
    })
}

fn put_watch_events(buf: &mut Vec<u8>, events: &[WireWatchEvent]) {
    put_u64(buf, events.len() as u64);
    for event in events {
        match event {
            WireWatchEvent::Match { left, right } => {
                buf.push(1);
                put_u64(buf, *left);
                put_u64(buf, *right);
            }
            WireWatchEvent::Invalidate { left, right } => {
                buf.push(2);
                put_u64(buf, *left);
                put_u64(buf, *right);
            }
            WireWatchEvent::Difference { left, right } => {
                buf.push(3);
                put_u64(buf, left.len() as u64);
                for &i in left {
                    put_u64(buf, i);
                }
                put_u64(buf, right.len() as u64);
                for &i in right {
                    put_u64(buf, i);
                }
            }
        }
    }
}

fn get_watch_events(dec: &mut Dec<'_>) -> FormatResult<Vec<WireWatchEvent>> {
    let count = dec.u64()?;
    let mut out = Vec::new();
    for _ in 0..count {
        out.push(match dec.u8()? {
            1 => WireWatchEvent::Match {
                left: dec.u64()?,
                right: dec.u64()?,
            },
            2 => WireWatchEvent::Invalidate {
                left: dec.u64()?,
                right: dec.u64()?,
            },
            3 => WireWatchEvent::Difference {
                left: dec.u64s()?,
                right: dec.u64s()?,
            },
            other => return Err(dec.corrupt(format!("unknown watch event kind {other:#04x}"))),
        });
    }
    Ok(out)
}

fn put_sequence(buf: &mut Vec<u8>, sequence: &WireSequence) {
    put_u64(buf, sequence.left.len() as u64);
    for &i in &sequence.left {
        put_u64(buf, i);
    }
    put_u64(buf, sequence.right.len() as u64);
    for &i in &sequence.right {
        put_u64(buf, i);
    }
}

fn get_sequence(dec: &mut Dec<'_>) -> FormatResult<WireSequence> {
    Ok(WireSequence {
        left: dec.u64s()?,
        right: dec.u64s()?,
    })
}

fn put_diff(buf: &mut Vec<u8>, diff: &WireDiff) {
    put_str(buf, &diff.algorithm);
    put_u64(buf, diff.left_len);
    put_u64(buf, diff.right_len);
    put_u64(buf, diff.pairs.len() as u64);
    for &(l, r) in &diff.pairs {
        put_u64(buf, l);
        put_u64(buf, r);
    }
    put_u64(buf, diff.sequences.len() as u64);
    for sequence in &diff.sequences {
        put_sequence(buf, sequence);
    }
    put_u64(buf, diff.compare_ops);
    put_u64(buf, diff.num_differences);
    put_str(buf, &diff.rendered);
}

fn get_diff(dec: &mut Dec<'_>) -> FormatResult<WireDiff> {
    let algorithm = dec.str()?;
    let left_len = dec.u64()?;
    let right_len = dec.u64()?;
    let pair_count = dec.u64()?;
    let mut pairs = Vec::new();
    for _ in 0..pair_count {
        let l = dec.u64()?;
        let r = dec.u64()?;
        pairs.push((l, r));
    }
    let sequence_count = dec.u64()?;
    let mut sequences = Vec::new();
    for _ in 0..sequence_count {
        sequences.push(get_sequence(dec)?);
    }
    Ok(WireDiff {
        algorithm,
        left_len,
        right_len,
        pairs,
        sequences,
        compare_ops: dec.u64()?,
        num_differences: dec.u64()?,
        rendered: dec.str()?,
    })
}

fn put_signature(buf: &mut Vec<u8>, signature: &WireSignature) {
    buf.push(kind_byte(signature.kind));
    match &signature.name {
        None => buf.push(0),
        Some(name) => {
            buf.push(1);
            put_str(buf, name);
        }
    }
    put_u64(buf, signature.operands.len() as u64);
    for (class, fp) in &signature.operands {
        put_str(buf, class);
        put_u64(buf, *fp);
    }
    put_str(buf, &signature.method);
    put_str(buf, &signature.active_class);
}

fn get_signature(dec: &mut Dec<'_>) -> FormatResult<WireSignature> {
    let kind_raw = dec.u8()?;
    let kind = byte_kind(kind_raw, dec)?;
    let name = if dec.bool()? { Some(dec.str()?) } else { None };
    let operand_count = dec.u64()?;
    let mut operands = Vec::new();
    for _ in 0..operand_count {
        let class = dec.str()?;
        let fp = dec.u64()?;
        operands.push((class, fp));
    }
    Ok(WireSignature {
        kind,
        name,
        operands,
        method: dec.str()?,
        active_class: dec.str()?,
    })
}

fn put_signatures(buf: &mut Vec<u8>, signatures: &[WireSignature]) {
    put_u64(buf, signatures.len() as u64);
    for signature in signatures {
        put_signature(buf, signature);
    }
}

fn get_signatures(dec: &mut Dec<'_>) -> FormatResult<Vec<WireSignature>> {
    let count = dec.u64()?;
    let mut out = Vec::new();
    for _ in 0..count {
        out.push(get_signature(dec)?);
    }
    Ok(out)
}

fn header(tag: u8) -> Vec<u8> {
    vec![PROTO_VERSION, tag]
}

fn open(bytes: &[u8]) -> FormatResult<(u8, Dec<'_>)> {
    let mut dec = Dec::new(bytes);
    let version = dec.u8()?;
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(FormatError::UnsupportedVersion {
            found: u16::from(version),
            supported: u16::from(PROTO_VERSION),
        });
    }
    let tag = dec.u8()?;
    if version < tag_min_version(tag) {
        return Err(dec.corrupt(format!(
            "message tag {tag:#04x} requires protocol version {}, frame is version {version}",
            tag_min_version(tag)
        )));
    }
    Ok((tag, dec))
}

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Put { bytes } => {
                let mut buf = header(TAG_PUT);
                put_bytes(&mut buf, bytes);
                buf
            }
            Request::Get { hash } => {
                let mut buf = header(TAG_GET);
                put_u64(&mut buf, *hash);
                buf
            }
            Request::List => header(TAG_LIST),
            Request::Diff {
                left,
                right,
                max_sequences,
                algorithm,
            } => {
                let mut buf = header(TAG_DIFF);
                put_u64(&mut buf, *left);
                put_u64(&mut buf, *right);
                put_u64(&mut buf, *max_sequences);
                // Trailing-optional: absent means "server default" and reproduces the
                // pre-override frame byte for byte.
                if let Some(algorithm) = algorithm {
                    buf.push(algorithm_byte(*algorithm));
                }
                buf
            }
            Request::Analyze {
                old_regressing,
                new_regressing,
                old_passing,
                new_passing,
                mode,
                max_sequences,
                algorithm,
            } => {
                let mut buf = header(TAG_ANALYZE);
                for hash in [old_regressing, new_regressing, old_passing, new_passing] {
                    put_u64(&mut buf, *hash);
                }
                buf.push(mode_byte(*mode));
                put_u64(&mut buf, *max_sequences);
                if let Some(algorithm) = algorithm {
                    buf.push(algorithm_byte(*algorithm));
                }
                buf
            }
            Request::Check { hash, overrides } => {
                let mut buf = header(TAG_CHECK);
                put_u64(&mut buf, *hash);
                put_overrides(&mut buf, overrides);
                buf
            }
            Request::WatchStart { old, max_sequences } => {
                let mut buf = header(TAG_WATCH_START);
                put_u64(&mut buf, *old);
                put_u64(&mut buf, *max_sequences);
                buf
            }
            Request::PutStream { bytes, last } => {
                let mut buf = header(TAG_PUT_STREAM);
                put_bytes(&mut buf, bytes);
                buf.push(u8::from(*last));
                buf
            }
            Request::Stats => header(TAG_STATS),
            Request::Metrics => header(TAG_METRICS),
            Request::ObsTrace => header(TAG_OBS_TRACE),
            Request::Shutdown => header(TAG_SHUTDOWN),
        }
    }

    /// Decodes a frame payload into a request.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on a version mismatch, unknown tag, or malformed field
    /// — the server answers these with a structured error frame.
    pub fn decode(bytes: &[u8]) -> FormatResult<Request> {
        let (tag, mut dec) = open(bytes)?;
        let request = match tag {
            TAG_PUT => Request::Put { bytes: dec.bytes()? },
            TAG_GET => Request::Get { hash: dec.u64()? },
            TAG_LIST => Request::List,
            TAG_DIFF => {
                let left = dec.u64()?;
                let right = dec.u64()?;
                let max_sequences = dec.u64()?;
                let algorithm = if dec.has_remaining() {
                    let raw = dec.u8()?;
                    Some(byte_algorithm(raw, &dec)?)
                } else {
                    None
                };
                Request::Diff {
                    left,
                    right,
                    max_sequences,
                    algorithm,
                }
            }
            TAG_ANALYZE => {
                let old_regressing = dec.u64()?;
                let new_regressing = dec.u64()?;
                let old_passing = dec.u64()?;
                let new_passing = dec.u64()?;
                let mode_raw = dec.u8()?;
                let mode = byte_mode(mode_raw, &dec)?;
                let max_sequences = dec.u64()?;
                let algorithm = if dec.has_remaining() {
                    let raw = dec.u8()?;
                    Some(byte_algorithm(raw, &dec)?)
                } else {
                    None
                };
                Request::Analyze {
                    old_regressing,
                    new_regressing,
                    old_passing,
                    new_passing,
                    mode,
                    max_sequences,
                    algorithm,
                }
            }
            TAG_CHECK => Request::Check {
                hash: dec.u64()?,
                overrides: get_overrides(&mut dec)?,
            },
            TAG_WATCH_START => Request::WatchStart {
                old: dec.u64()?,
                max_sequences: dec.u64()?,
            },
            TAG_PUT_STREAM => Request::PutStream {
                bytes: dec.bytes()?,
                last: dec.bool()?,
            },
            TAG_STATS => Request::Stats,
            TAG_METRICS => Request::Metrics,
            TAG_OBS_TRACE => Request::ObsTrace,
            TAG_SHUTDOWN => Request::Shutdown,
            other => return Err(dec.corrupt(format!("unknown request tag {other:#04x}"))),
        };
        dec.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::PutOk {
                hash,
                deduped,
                entries,
            } => {
                let mut buf = header(TAG_PUT_OK);
                put_u64(&mut buf, *hash);
                buf.push(u8::from(*deduped));
                put_u64(&mut buf, *entries);
                buf
            }
            Response::GetOk { bytes } => {
                let mut buf = header(TAG_GET_OK);
                put_bytes(&mut buf, bytes);
                buf
            }
            Response::ListOk { entries } => {
                let mut buf = header(TAG_LIST_OK);
                put_u64(&mut buf, entries.len() as u64);
                for entry in entries {
                    put_u64(&mut buf, entry.hash);
                    put_str(&mut buf, &entry.name);
                    put_u64(&mut buf, entry.entries);
                    put_u64(&mut buf, entry.bytes);
                }
                buf
            }
            Response::DiffOk(diff) => {
                let mut buf = header(TAG_DIFF_OK);
                put_diff(&mut buf, diff);
                buf
            }
            Response::AnalyzeOk(report) => {
                let mut buf = header(TAG_ANALYZE_OK);
                put_str(&mut buf, &report.algorithm);
                buf.push(mode_byte(Some(report.mode)));
                for set in [
                    &report.suspected,
                    &report.expected,
                    &report.regression,
                    &report.candidates,
                ] {
                    put_signatures(&mut buf, set);
                }
                put_u64(&mut buf, report.sequences.len() as u64);
                for (sequence, related) in &report.sequences {
                    put_sequence(&mut buf, sequence);
                    buf.push(u8::from(*related));
                }
                put_u64(&mut buf, report.compare_ops);
                put_str(&mut buf, &report.rendered);
                buf
            }
            Response::CheckOk(report) => {
                let mut buf = header(TAG_CHECK_OK);
                put_check_report(&mut buf, report);
                buf
            }
            Response::WatchStarted => header(TAG_WATCH_STARTED),
            Response::WatchEvent { events } => {
                let mut buf = header(TAG_WATCH_EVENT);
                put_watch_events(&mut buf, events);
                buf
            }
            Response::WatchDone { events, diff } => {
                let mut buf = header(TAG_WATCH_DONE);
                put_watch_events(&mut buf, events);
                put_diff(&mut buf, diff);
                buf
            }
            Response::CheckDenied(report) => {
                let mut buf = header(TAG_CHECK_DENIED);
                put_check_report(&mut buf, report);
                buf
            }
            Response::StatsOk(stats) => {
                let mut buf = header(TAG_STATS_OK);
                for value in [
                    stats.blobs,
                    stats.blob_bytes,
                    stats.prepared_cached,
                    stats.prepared_cached_bytes,
                    stats.cache_budget_bytes,
                    stats.prepared_hits,
                    stats.prepared_misses,
                    stats.evictions,
                    stats.dedup_hits,
                    stats.requests_served,
                    stats.correlation_builds,
                    stats.cached_correlations,
                    stats.orphans_removed,
                    stats.quarantined,
                    stats.cache_shrinks,
                ] {
                    put_u64(&mut buf, value);
                }
                buf
            }
            Response::MetricsOk { text } => {
                let mut buf = header(TAG_METRICS_OK);
                put_str(&mut buf, text);
                buf
            }
            Response::ObsTraceOk { bytes } => {
                let mut buf = header(TAG_OBS_TRACE_OK);
                put_bytes(&mut buf, bytes);
                buf
            }
            Response::ShutdownOk => header(TAG_SHUTDOWN_OK),
            Response::Busy { retry_after_ms } => {
                let mut buf = header(TAG_BUSY);
                put_u64(&mut buf, u64::from(*retry_after_ms));
                buf
            }
            Response::Corrupt { hash, message } => {
                let mut buf = header(TAG_CORRUPT);
                put_u64(&mut buf, *hash);
                put_str(&mut buf, message);
                buf
            }
            Response::Error { message } => {
                let mut buf = header(TAG_ERROR);
                put_str(&mut buf, message);
                buf
            }
        }
    }

    /// Decodes a frame payload into a response.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on a version mismatch, unknown tag, or malformed field.
    pub fn decode(bytes: &[u8]) -> FormatResult<Response> {
        let (tag, mut dec) = open(bytes)?;
        let response = match tag {
            TAG_PUT_OK => Response::PutOk {
                hash: dec.u64()?,
                deduped: dec.bool()?,
                entries: dec.u64()?,
            },
            TAG_GET_OK => Response::GetOk { bytes: dec.bytes()? },
            TAG_LIST_OK => {
                let count = dec.u64()?;
                let mut entries = Vec::new();
                for _ in 0..count {
                    entries.push(RepoEntry {
                        hash: dec.u64()?,
                        name: dec.str()?,
                        entries: dec.u64()?,
                        bytes: dec.u64()?,
                    });
                }
                Response::ListOk { entries }
            }
            TAG_DIFF_OK => Response::DiffOk(get_diff(&mut dec)?),
            TAG_ANALYZE_OK => {
                let algorithm = dec.str()?;
                let mode_raw = dec.u8()?;
                let mode = byte_mode(mode_raw, &dec)?
                    .ok_or_else(|| dec.corrupt("report mode cannot be the default marker"))?;
                let suspected = get_signatures(&mut dec)?;
                let expected = get_signatures(&mut dec)?;
                let regression = get_signatures(&mut dec)?;
                let candidates = get_signatures(&mut dec)?;
                let sequence_count = dec.u64()?;
                let mut sequences = Vec::new();
                for _ in 0..sequence_count {
                    let sequence = get_sequence(&mut dec)?;
                    let related = dec.bool()?;
                    sequences.push((sequence, related));
                }
                Response::AnalyzeOk(WireReport {
                    algorithm,
                    mode,
                    suspected,
                    expected,
                    regression,
                    candidates,
                    sequences,
                    compare_ops: dec.u64()?,
                    rendered: dec.str()?,
                })
            }
            TAG_CHECK_OK => Response::CheckOk(Box::new(get_check_report(&mut dec)?)),
            TAG_WATCH_STARTED => Response::WatchStarted,
            TAG_WATCH_EVENT => Response::WatchEvent {
                events: get_watch_events(&mut dec)?,
            },
            TAG_WATCH_DONE => {
                let events = get_watch_events(&mut dec)?;
                let diff = get_diff(&mut dec)?;
                Response::WatchDone { events, diff }
            }
            TAG_CHECK_DENIED => Response::CheckDenied(Box::new(get_check_report(&mut dec)?)),
            TAG_STATS_OK => {
                let mut values = [0u64; 15];
                for value in &mut values {
                    *value = dec.u64()?;
                }
                Response::StatsOk(WireStats {
                    blobs: values[0],
                    blob_bytes: values[1],
                    prepared_cached: values[2],
                    prepared_cached_bytes: values[3],
                    cache_budget_bytes: values[4],
                    prepared_hits: values[5],
                    prepared_misses: values[6],
                    evictions: values[7],
                    dedup_hits: values[8],
                    requests_served: values[9],
                    correlation_builds: values[10],
                    cached_correlations: values[11],
                    orphans_removed: values[12],
                    quarantined: values[13],
                    cache_shrinks: values[14],
                })
            }
            TAG_METRICS_OK => Response::MetricsOk { text: dec.str()? },
            TAG_OBS_TRACE_OK => Response::ObsTraceOk { bytes: dec.bytes()? },
            TAG_SHUTDOWN_OK => Response::ShutdownOk,
            TAG_BUSY => Response::Busy {
                retry_after_ms: u32::try_from(dec.u64()?)
                    .map_err(|_| dec.corrupt("retry_after_ms overflows u32"))?,
            },
            TAG_CORRUPT => Response::Corrupt {
                hash: dec.u64()?,
                message: dec.str()?,
            },
            TAG_ERROR => Response::Error { message: dec.str()? },
            other => return Err(dec.corrupt(format!("unknown response tag {other:#04x}"))),
        };
        dec.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let decoded = Request::decode(&request.encode()).unwrap();
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let decoded = Response::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Put { bytes: b"blob".to_vec() });
        round_trip_request(Request::Get { hash: 0xdead_beef });
        round_trip_request(Request::List);
        round_trip_request(Request::Diff {
            left: 1,
            right: u64::MAX,
            max_sequences: 5,
            algorithm: None,
        });
        for algorithm in [WireAlgorithm::Views, WireAlgorithm::Lcs, WireAlgorithm::Anchored] {
            round_trip_request(Request::Diff {
                left: 1,
                right: u64::MAX,
                max_sequences: 5,
                algorithm: Some(algorithm),
            });
        }
        round_trip_request(Request::Analyze {
            old_regressing: 1,
            new_regressing: 2,
            old_passing: 3,
            new_passing: 4,
            mode: Some(AnalysisMode::SubtractRegressionSet),
            max_sequences: 5,
            algorithm: Some(WireAlgorithm::Anchored),
        });
        round_trip_request(Request::Analyze {
            old_regressing: 1,
            new_regressing: 2,
            old_passing: 3,
            new_passing: 4,
            mode: None,
            max_sequences: 10,
            algorithm: None,
        });
        round_trip_request(Request::Check {
            hash: 7,
            overrides: vec![],
        });
        round_trip_request(Request::Check {
            hash: 0xfeed,
            overrides: vec![
                ("data-race".to_owned(), Severity::Error),
                ("unclosed-call".to_owned(), Severity::Warning),
                ("use-after-death".to_owned(), Severity::Info),
            ],
        });
        round_trip_request(Request::WatchStart {
            old: 0xdead_beef,
            max_sequences: 12,
        });
        round_trip_request(Request::PutStream {
            bytes: vec![0x00, 0xff, 0x7f],
            last: false,
        });
        round_trip_request(Request::PutStream {
            bytes: vec![],
            last: true,
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::ObsTrace);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn pre_override_diff_and_analyze_frames_still_decode() {
        // The algorithm override is a trailing-optional byte: frames hand-built the
        // way a pre-override client built them (no byte) must decode to `None`, and a
        // request without an override must emit exactly that legacy frame.
        let mut legacy_diff = vec![PROTO_VERSION, 0x04];
        for value in [7u64, 9, 3] {
            put_u64(&mut legacy_diff, value);
        }
        assert_eq!(
            Request::decode(&legacy_diff).unwrap(),
            Request::Diff {
                left: 7,
                right: 9,
                max_sequences: 3,
                algorithm: None,
            }
        );
        assert_eq!(
            Request::Diff {
                left: 7,
                right: 9,
                max_sequences: 3,
                algorithm: None,
            }
            .encode(),
            legacy_diff
        );

        let mut legacy_analyze = vec![PROTO_VERSION, 0x05];
        for hash in [1u64, 2, 3, 4] {
            put_u64(&mut legacy_analyze, hash);
        }
        legacy_analyze.push(0); // mode: engine default
        put_u64(&mut legacy_analyze, 6);
        assert_eq!(
            Request::decode(&legacy_analyze).unwrap(),
            Request::Analyze {
                old_regressing: 1,
                new_regressing: 2,
                old_passing: 3,
                new_passing: 4,
                mode: None,
                max_sequences: 6,
                algorithm: None,
            }
        );

        // An unknown algorithm byte is rejected, not silently defaulted.
        let mut bad = legacy_diff.clone();
        bad.push(9);
        assert!(Request::decode(&bad).is_err());
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::PutOk {
            hash: 42,
            deduped: true,
            entries: 7,
        });
        round_trip_response(Response::GetOk { bytes: vec![1, 2, 3] });
        round_trip_response(Response::ListOk {
            entries: vec![RepoEntry {
                hash: 9,
                name: "daikon".into(),
                entries: 120,
                bytes: 4096,
            }],
        });
        round_trip_response(Response::DiffOk(WireDiff {
            algorithm: "views".into(),
            left_len: 10,
            right_len: 11,
            pairs: vec![(0, 0), (2, 3)],
            sequences: vec![WireSequence {
                left: vec![1],
                right: vec![1, 2],
            }],
            compare_ops: 999,
            num_differences: 3,
            rendered: "semantic diff…".into(),
        }));
        round_trip_response(Response::AnalyzeOk(WireReport {
            algorithm: "views".into(),
            mode: AnalysisMode::Intersect,
            suspected: vec![WireSignature {
                kind: EventKind::Set,
                name: Some("field".into()),
                operands: vec![("C".into(), 0xfeed), ("Int".into(), 2)],
                method: "m".into(),
                active_class: "App".into(),
            }],
            expected: vec![],
            regression: vec![],
            candidates: vec![],
            sequences: vec![(
                WireSequence {
                    left: vec![],
                    right: vec![4],
                },
                true,
            )],
            compare_ops: 123,
            rendered: "report".into(),
        }));
        round_trip_response(Response::CheckOk(Box::new(CheckReport {
            trace_name: "daikon".into(),
            entries: 120,
            threads: 2,
            suppressed: 1,
            diagnostics: vec![Diagnostic {
                rule_id: rules::rule("data-race").unwrap().id,
                severity: Severity::Warning,
                entry_index: 17,
                message: "write/write conflict".into(),
                related_entries: vec![3, 9],
            }],
        })));
        round_trip_response(Response::CheckOk(Box::default()));
        round_trip_response(Response::StatsOk(WireStats {
            blobs: 1,
            blob_bytes: 2,
            prepared_cached: 3,
            prepared_cached_bytes: 4,
            cache_budget_bytes: 5,
            prepared_hits: 6,
            prepared_misses: 7,
            evictions: 8,
            dedup_hits: 9,
            requests_served: 10,
            correlation_builds: 11,
            cached_correlations: 12,
            orphans_removed: 13,
            quarantined: 14,
            cache_shrinks: 15,
        }));
        round_trip_response(Response::WatchStarted);
        round_trip_response(Response::WatchEvent { events: vec![] });
        round_trip_response(Response::WatchEvent {
            events: vec![
                WireWatchEvent::Match { left: 0, right: 0 },
                WireWatchEvent::Invalidate { left: 3, right: 4 },
                WireWatchEvent::Difference {
                    left: vec![5, 6],
                    right: vec![],
                },
            ],
        });
        round_trip_response(Response::WatchDone {
            events: vec![WireWatchEvent::Match { left: 9, right: 9 }],
            diff: WireDiff {
                algorithm: "views".into(),
                left_len: 10,
                right_len: 10,
                pairs: vec![(0, 0)],
                sequences: vec![],
                compare_ops: 77,
                num_differences: 0,
                rendered: "no differences\n".into(),
            },
        });
        round_trip_response(Response::CheckDenied(Box::new(CheckReport {
            trace_name: "denied".into(),
            entries: 5,
            threads: 1,
            suppressed: 0,
            diagnostics: vec![Diagnostic {
                rule_id: rules::rule("data-race").unwrap().id,
                severity: Severity::Error,
                entry_index: 2,
                message: "boom".into(),
                related_entries: vec![0],
            }],
        })));
        round_trip_response(Response::MetricsOk {
            text: "# TYPE rprism_cache_hits counter\nrprism_cache_hits 3\n".into(),
        });
        round_trip_response(Response::ObsTraceOk {
            bytes: vec![0x52, 0x54, 0x52, 0x00],
        });
        round_trip_response(Response::ShutdownOk);
        round_trip_response(Response::Busy { retry_after_ms: 250 });
        round_trip_response(Response::Corrupt {
            hash: 0xfeed_f00d,
            message: "checksum mismatch".into(),
        });
        round_trip_response(Response::Error {
            message: "nope".into(),
        });
    }

    #[test]
    fn malformed_messages_are_structured_errors() {
        assert!(Request::decode(&[]).is_err());
        // Wrong protocol version.
        assert!(matches!(
            Request::decode(&[99, TAG_LIST]),
            Err(FormatError::UnsupportedVersion { found: 99, .. })
        ));
        // Unknown tag.
        assert!(Request::decode(&[PROTO_VERSION, 0x7f]).is_err());
        // Trailing garbage.
        assert!(Request::decode(&[PROTO_VERSION, TAG_LIST, 0x00]).is_err());
        // Truncated field.
        let mut put = Request::Put { bytes: vec![1; 100] }.encode();
        put.truncate(10);
        assert!(Request::decode(&put).is_err());
        // A request is not a response and vice versa.
        assert!(Response::decode(&Request::List.encode()).is_err());
        assert!(Request::decode(&Response::ShutdownOk.encode()).is_err());
    }

    #[test]
    fn version_2_frames_still_decode_for_version_2_messages() {
        for request in [
            Request::List,
            Request::Get { hash: 9 },
            Request::Stats,
            Request::Shutdown,
        ] {
            let mut frame = request.encode();
            frame[0] = 2;
            assert_eq!(Request::decode(&frame).unwrap(), request);
        }
        let mut frame = Response::ShutdownOk.encode();
        frame[0] = 2;
        assert_eq!(Response::decode(&frame).unwrap(), Response::ShutdownOk);
        // Version 1 frames are below the window and stay refused.
        let mut frame = Request::List.encode();
        frame[0] = 1;
        assert!(matches!(
            Request::decode(&frame),
            Err(FormatError::UnsupportedVersion { found: 1, .. })
        ));
    }

    #[test]
    fn version_3_tags_in_version_2_frames_are_structured_errors() {
        let mut frame = Request::Check {
            hash: 1,
            overrides: vec![],
        }
        .encode();
        frame[0] = 2;
        let error = Request::decode(&frame).unwrap_err();
        assert!(
            error.to_string().contains("requires protocol version 3"),
            "got {error}"
        );
        let mut frame = Response::CheckOk(Box::default()).encode();
        frame[0] = 2;
        assert!(Response::decode(&frame).is_err());
    }

    #[test]
    fn version_4_tags_in_older_frames_are_structured_errors() {
        // Watch messages need protocol 4: a version-2 or version-3 frame carrying
        // one is a structured refusal, while version-3 frames of version-3 messages
        // (and version-2 frames of version-2 messages) keep decoding byte-identically.
        for older in [2u8, 3] {
            let mut frame = Request::WatchStart {
                old: 1,
                max_sequences: 4,
            }
            .encode();
            frame[0] = older;
            let error = Request::decode(&frame).unwrap_err();
            assert!(
                error.to_string().contains("requires protocol version 4"),
                "got {error}"
            );
            let mut frame = Request::PutStream {
                bytes: vec![1],
                last: true,
            }
            .encode();
            frame[0] = older;
            assert!(Request::decode(&frame).is_err());
            for response in [
                Response::WatchStarted,
                Response::WatchEvent { events: vec![] },
                Response::CheckDenied(Box::default()),
            ] {
                let mut frame = response.encode();
                frame[0] = older;
                assert!(Response::decode(&frame).is_err());
            }
        }
        // Version-3 frames of version-3 messages still decode.
        let request = Request::Check {
            hash: 1,
            overrides: vec![],
        };
        let mut frame = request.encode();
        frame[0] = 3;
        assert_eq!(Request::decode(&frame).unwrap(), request);
    }

    #[test]
    fn version_5_tags_in_older_frames_are_structured_errors() {
        // The observability messages need protocol 5; every older version in the
        // window refuses them with a structured error naming the required version.
        for older in [2u8, 3, 4] {
            for request in [Request::Metrics, Request::ObsTrace] {
                let mut frame = request.encode();
                frame[0] = older;
                let error = Request::decode(&frame).unwrap_err();
                assert!(
                    error.to_string().contains("requires protocol version 5"),
                    "got {error}"
                );
            }
            for response in [
                Response::MetricsOk { text: String::new() },
                Response::ObsTraceOk { bytes: vec![] },
            ] {
                let mut frame = response.encode();
                frame[0] = older;
                assert!(Response::decode(&frame).is_err());
            }
        }
        // Version-4 frames of version-4 messages still decode byte-identically.
        let request = Request::WatchStart {
            old: 1,
            max_sequences: 4,
        };
        let mut frame = request.encode();
        frame[0] = 4;
        assert_eq!(Request::decode(&frame).unwrap(), request);
    }

    #[test]
    fn pre_v5_frames_are_pinned_byte_for_byte() {
        // Hand-built frames with explicit version bytes 2/3/4 — exactly what an
        // older peer emits — must keep decoding to the same messages after the v5
        // bump, and a current encoder must produce the identical body (only the
        // version byte differs). This pins the old wire format, not just decoder
        // tolerance.
        let mut v2_get = vec![2u8, 0x02];
        put_u64(&mut v2_get, 0xfeed);
        assert_eq!(Request::decode(&v2_get).unwrap(), Request::Get { hash: 0xfeed });
        assert_eq!(Request::Get { hash: 0xfeed }.encode()[1..], v2_get[1..]);

        let v2_stats = vec![2u8, 0x06];
        assert_eq!(Request::decode(&v2_stats).unwrap(), Request::Stats);
        assert_eq!(Request::Stats.encode()[1..], v2_stats[1..]);

        let mut v2_stats_ok = vec![2u8, 0x86];
        for value in 1u64..=15 {
            put_u64(&mut v2_stats_ok, value);
        }
        let decoded = Response::decode(&v2_stats_ok).unwrap();
        let Response::StatsOk(stats) = &decoded else {
            panic!("expected StatsOk, got {decoded:?}");
        };
        assert_eq!(stats.blobs, 1);
        assert_eq!(stats.cache_shrinks, 15);
        assert_eq!(decoded.encode()[1..], v2_stats_ok[1..]);

        let mut v3_check = vec![3u8, 0x08];
        put_u64(&mut v3_check, 42);
        put_u64(&mut v3_check, 0); // no overrides
        assert_eq!(
            Request::decode(&v3_check).unwrap(),
            Request::Check {
                hash: 42,
                overrides: vec![],
            }
        );

        let mut v4_watch = vec![4u8, 0x09];
        put_u64(&mut v4_watch, 7);
        put_u64(&mut v4_watch, 3);
        assert_eq!(
            Request::decode(&v4_watch).unwrap(),
            Request::WatchStart {
                old: 7,
                max_sequences: 3,
            }
        );
    }

    #[test]
    fn stats_ok_field_order_is_pinned() {
        // The Stats frame is 15 varints in this exact order; reordering the
        // `WireStats` fields (e.g. while re-plumbing them onto the metrics registry)
        // would silently corrupt every older client. Sequential values make any
        // swap visible.
        let stats = WireStats {
            blobs: 1,
            blob_bytes: 2,
            prepared_cached: 3,
            prepared_cached_bytes: 4,
            cache_budget_bytes: 5,
            prepared_hits: 6,
            prepared_misses: 7,
            evictions: 8,
            dedup_hits: 9,
            requests_served: 10,
            correlation_builds: 11,
            cached_correlations: 12,
            orphans_removed: 13,
            quarantined: 14,
            cache_shrinks: 15,
        };
        let mut expected = vec![PROTO_VERSION, 0x86];
        for value in 1u64..=15 {
            put_u64(&mut expected, value);
        }
        assert_eq!(Response::StatsOk(stats).encode(), expected);
    }

    #[test]
    fn wire_watch_events_convert_to_local_events_and_back() {
        let events = [
            ProvisionalEvent::Match { left: 1, right: 2 },
            ProvisionalEvent::Invalidate { left: 1, right: 2 },
            ProvisionalEvent::Difference {
                left: vec![3],
                right: vec![4, 5],
            },
        ];
        for event in &events {
            let wire = WireWatchEvent::from_event(event);
            assert_eq!(&wire.to_event(), event);
        }
    }

    #[test]
    fn unknown_rule_ids_and_severities_are_decode_errors() {
        let report = CheckReport {
            trace_name: "t".into(),
            entries: 1,
            threads: 1,
            suppressed: 0,
            diagnostics: vec![Diagnostic {
                rule_id: rules::rule("end-stack").unwrap().id,
                severity: Severity::Warning,
                entry_index: 0,
                message: "m".into(),
                related_entries: vec![],
            }],
        };
        let good = Response::CheckOk(Box::new(report)).encode();
        // Corrupt the rule-id string ("end-stack" is the first string after the
        // trace name and the four counts) into an unknown one.
        let mut bad = good.clone();
        let at = find(&bad, b"end-stack");
        bad[at] = b'x';
        let error = Response::decode(&bad).unwrap_err();
        assert!(error.to_string().contains("unknown rule id"), "got {error}");
        // An out-of-range severity byte is refused too.
        let mut bad = good;
        let at = find(&bad, b"end-stack") + "end-stack".len();
        assert!(bad[at] <= 3, "expected the severity byte after the rule id");
        bad[at] = 9;
        let error = Response::decode(&bad).unwrap_err();
        assert!(error.to_string().contains("unknown severity"), "got {error}");
    }

    fn find(haystack: &[u8], needle: &[u8]) -> usize {
        haystack
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("needle present")
    }

    #[test]
    fn wire_signatures_re_intern_to_equal_signatures() {
        let engine = rprism::Engine::new();
        let old = engine
            .trace_source(
                "class C extends Object { Int x; Unit set(Int v) { this.x = v; } }
                 main { let c = new C(0); c.set(32); }",
                "old",
            )
            .unwrap();
        let new = engine
            .trace_source(
                "class C extends Object { Int x; Unit set(Int v) { this.x = v; } }
                 main { let c = new C(0); c.set(1); }",
                "new",
            )
            .unwrap();
        let diff = engine.diff(&old, &new).unwrap();
        let set = DiffSet::from_diff_keyed(&diff, old.trace(), new.trace(), old.keyed(), new.keyed());
        assert!(!set.is_empty());
        let wire: Vec<WireSignature> = set.iter().map(WireSignature::from_signature).collect();
        let back = WireReport::set_local(&wire);
        assert_eq!(back, set);
    }
}
