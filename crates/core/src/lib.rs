//! # rprism
//!
//! A Rust reproduction of **RPrism**, the system of *Semantics-Aware Trace Analysis*
//! (Hoffman, Eugster, Jagannathan — PLDI 2009): semantic views over execution traces,
//! linear-time views-based trace differencing, and regression-cause analysis.
//!
//! This crate is the user-facing facade. The entry point is the session-oriented
//! [`Engine`]: it owns the configuration (differencing algorithm and options, tracing
//! config, analysis mode) and hands out [`PreparedTrace`] handles whose derived
//! artifacts — interned event keys and the view web — are built lazily, cached, and
//! shared across every diff, batch run and regression analysis:
//!
//! 1. trace two versions of a program on two test inputs ([`Engine::trace_source`]) —
//!    or ingest externally captured traces from disk ([`Engine::load_trace`], which
//!    sniffs the binary `.rtr` / JSONL encodings of [`rprism_format`]),
//! 2. difference pairs of traces semantically ([`Engine::diff`], [`Engine::diff_many`]),
//! 3. run the full regression-cause analysis ([`Engine::analyze`],
//!    [`Engine::analyze_many`]),
//! 4. store any trace back to disk ([`Engine::store_trace`]) for the `rprism` CLI
//!    (`rprism diff a.rtr b.rtr`) or external tooling.
//!
//! ```
//! use rprism::Engine;
//!
//! let old_src = r#"
//!     class Range extends Object { Int min; Int max; }
//!     class App extends Object {
//!         Range r;
//!         Unit setup() { this.r = new Range(32, 127); }
//!         Bool admits(Int c) { return (c >= this.r.min) && (c <= this.r.max); }
//!     }
//!     main { let a = new App(null); a.setup(); a.admits(20); a.admits(64); }
//! "#;
//! let new_src = old_src.replace("new Range(32, 127)", "new Range(1, 127)");
//!
//! let engine = Engine::new();
//! let old = engine.trace_source(old_src, "old")?;
//! let new = engine.trace_source(&new_src, "new")?;
//!
//! // The handles cache their keys and view webs: the second diff (and any regression
//! // analysis over the same traces) reuses everything the first one built.
//! let diff = engine.diff(&old, &new)?;
//! assert!(diff.num_differences() > 0);
//! let again = engine.diff(&old, &new)?;
//! assert_eq!(diff.num_differences(), again.num_differences());
//! assert_eq!(old.web_build_count(), 1);
//! # Ok::<(), rprism::Error>(())
//! ```
//!
//! All errors of the stack (language, VM, differencing) unify into [`enum@Error`], with
//! [`Result`] as the crate-wide alias. The individual layers are available as
//! re-exported modules: [`lang`], [`trace`], [`vm`], [`views`], [`diff`], [`regress`].
//! See `MIGRATION.md` at the workspace root for the mapping from the deprecated
//! free-function API ([`Rprism`], `views_diff`, `rprism_regress::analyze`) to the
//! engine.
//!
//! An [`Engine`] is `Send + Sync` (asserted at compile time) and is designed to be
//! shared across threads: artifacts build at most once even under concurrent use, and
//! a cold pair correlation is built by exactly one of its concurrent requesters. The
//! `rprism-server` crate builds on this to serve one session to many network clients
//! (`rprism serve` / `rprism remote` on the command line).

pub use rprism_check as check;
pub use rprism_diff as diff;
pub use rprism_format as format;
pub use rprism_lang as lang;
pub use rprism_obs as obs;
pub use rprism_regress as regress;
pub use rprism_trace as trace;
pub use rprism_views as views;
pub use rprism_vm as vm;

mod engine;
pub mod ingest;
mod watch;

pub use engine::{Engine, EngineBuilder, PreparedTrace, RegressionInput};
pub use watch::{Watch, WatchOutcome};
// The vocabulary types an Engine user needs, re-exported at the crate root.
pub use rprism_diff::{
    AnchoredDiffOptions, AnchoredDiffOptionsBuilder, DiffSession, LcsDiffOptions,
    LcsDiffOptionsBuilder, LcsKernel, ProvisionalEvent, TraceDiffResult, ViewsDiffOptions,
    ViewsDiffOptionsBuilder,
};
pub use rprism_check::{CheckConfig, CheckReport, Severity};
pub use rprism_format::{Encoding, FormatError};
pub use rprism_obs::Obs;
pub use rprism_regress::{AnalysisMode, DiffAlgorithm, RegressionReport, RenderOptions};

#[allow(deprecated)]
use rprism_diff::views_diff;
use rprism_lang::parser::parse_program;
use rprism_lang::Program;
#[allow(deprecated)]
use rprism_regress::analyze;
use rprism_regress::RegressionTraces;
use rprism_trace::{Trace, TraceMeta};
use rprism_vm::{run_traced, RunOutcome, VmConfig};

/// Errors surfaced by the high-level API: the union of every layer's failure modes.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Parsing or validating a program failed.
    Lang(rprism_lang::Error),
    /// Differencing failed (only possible with the LCS baseline's memory budget).
    Diff(rprism_diff::DiffError),
    /// A traced program failed at runtime (surfaced by callers that treat a failing run
    /// as an error rather than as a trace to analyze).
    Vm(rprism_vm::RuntimeError),
    /// Loading or storing a serialized trace failed (I/O, truncation, corruption, or an
    /// unsupported format version).
    Format(rprism_format::FormatError),
    /// An operation that needs the full trace was invoked on a streaming-prepared
    /// handle, which retains only its analysis artifacts (see
    /// [`Engine::load_prepared`] vs [`Engine::load_trace`]).
    Streamed {
        /// The operation that was refused.
        operation: &'static str,
    },
    /// A loaded trace was rejected by the ingest-time static analysis
    /// ([`EngineBuilder::check_on_ingest`]): the report carries every diagnostic the
    /// checker raised, including those below the deny threshold.
    Check(Box<rprism_check::CheckReport>),
}

/// The crate-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Lang(e) => write!(f, "program error: {e}"),
            Error::Diff(e) => write!(f, "differencing error: {e}"),
            Error::Vm(e) => write!(f, "runtime error: {e}"),
            Error::Format(e) => write!(f, "trace format error: {e}"),
            Error::Streamed { operation } => write!(
                f,
                "{operation} requires the full trace, but this handle was \
                 streaming-prepared (Engine::load_prepared) and retains only its \
                 analysis artifacts; load it with Engine::load_trace instead"
            ),
            Error::Check(report) => {
                let (errors, warnings, infos) = report.counts();
                write!(
                    f,
                    "trace '{}' rejected by the ingest check: {errors} error(s), \
                     {warnings} warning(s), {infos} info(s)",
                    report.trace_name
                )
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<rprism_lang::Error> for Error {
    fn from(e: rprism_lang::Error) -> Self {
        Error::Lang(e)
    }
}

impl From<rprism_diff::DiffError> for Error {
    fn from(e: rprism_diff::DiffError) -> Self {
        Error::Diff(e)
    }
}

impl From<rprism_vm::RuntimeError> for Error {
    fn from(e: rprism_vm::RuntimeError) -> Self {
        Error::Vm(e)
    }
}

impl From<rprism_format::FormatError> for Error {
    fn from(e: rprism_format::FormatError) -> Self {
        Error::Format(e)
    }
}

/// The pre-session high-level entry point: a bundle of tracing and differencing
/// configuration whose every call re-derives keys and webs from scratch.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine` (see MIGRATION.md): it caches each trace's keys and view web \
            in `PreparedTrace` handles instead of re-deriving them per call"
)]
#[derive(Clone, Debug, Default)]
pub struct Rprism {
    /// Tracing configuration used by [`Rprism::trace`] / [`Rprism::trace_source`].
    pub vm_config: VmConfig,
    /// Views-based differencing options used by [`Rprism::diff`] and the regression
    /// analysis.
    pub diff_options: ViewsDiffOptions,
}

#[allow(deprecated)]
impl Rprism {
    /// Creates an instance with default configuration.
    pub fn new() -> Self {
        Rprism::default()
    }

    /// Traces a parsed program.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Lang`] when the program fails validation.
    pub fn trace(&self, program: &Program, label: &str) -> Result<RunOutcome> {
        Ok(run_traced(
            program,
            TraceMeta::new(label, "", ""),
            self.vm_config.clone(),
        )?)
    }

    /// Parses and traces a program given in concrete syntax.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Lang`] when the source does not parse or validate.
    pub fn trace_source(&self, source: &str, label: &str) -> Result<RunOutcome> {
        let program = parse_program(source)?;
        self.trace(&program, label)
    }

    /// Differences two traces with the views-based semantics.
    pub fn diff(&self, left: &Trace, right: &Trace) -> TraceDiffResult {
        views_diff(left, right, &self.diff_options)
    }

    /// Runs the full regression-cause analysis over four traces.
    ///
    /// # Errors
    ///
    /// Never fails for the views-based algorithm; the error type accommodates callers
    /// that switch to the LCS baseline.
    pub fn analyze_regression(
        &self,
        traces: &RegressionTraces,
        mode: AnalysisMode,
    ) -> Result<RegressionReport> {
        Ok(analyze(
            traces,
            &DiffAlgorithm::Views(self.diff_options.clone()),
            mode,
        )?)
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `Rprism` shim must keep compiling and producing the same results
    // as before the Engine redesign; its behaviour is pinned here, while the Engine
    // itself is tested in `engine.rs` and in the workspace-level equivalence suite.
    #![allow(deprecated)]

    use super::*;

    const SRC: &str = r#"
        class Counter extends Object {
            Int count;
            Int bump(Int by) { this.count = this.count + by; return this.count; }
        }
        main { let c = new Counter(0); c.bump(2); c.bump(3); }
    "#;

    #[test]
    fn shim_trace_source_produces_a_trace() {
        let rprism = Rprism::new();
        let outcome = rprism.trace_source(SRC, "demo").unwrap();
        assert!(outcome.succeeded());
        assert!(outcome.trace.len() >= 10);
    }

    #[test]
    fn shim_diff_matches_engine_diff() {
        let rprism = Rprism::new();
        let engine = Engine::new();
        let a = rprism.trace_source(SRC, "a").unwrap();
        let b = rprism
            .trace_source(&SRC.replace("c.bump(3)", "c.bump(9)"), "b")
            .unwrap();
        let old_way = rprism.diff(&a.trace, &b.trace);

        let (pa, pb) = (
            engine.prepare(a.trace.clone()),
            engine.prepare(b.trace.clone()),
        );
        let new_way = engine.diff(&pa, &pb).unwrap();
        assert_eq!(
            old_way.matching.normalized_pairs(),
            new_way.matching.normalized_pairs()
        );
        assert_eq!(old_way.sequences, new_way.sequences);
        assert_eq!(old_way.cost.compare_ops, new_way.cost.compare_ops);
    }

    #[test]
    fn shim_regression_analysis_end_to_end() {
        let rprism = Rprism::new();
        let src = |min: i64, probe: i64| {
            format!(
                r#"
                class Range extends Object {{ Int min; Int max; }}
                class App extends Object {{
                    Range r;
                    Int hits;
                    Unit setup() {{ this.r = new Range({min}, 127); }}
                    Unit check(Int c) {{
                        if ((c >= this.r.min) && (c <= this.r.max)) {{ this.hits = this.hits + 1; }}
                    }}
                }}
                main {{ let a = new App(null, 0); a.setup(); a.check({probe}); a.check(64); }}
                "#
            )
        };
        let traces = RegressionTraces {
            old_regressing: rprism.trace_source(&src(32, 20), "or").unwrap().trace,
            new_regressing: rprism.trace_source(&src(1, 20), "nr").unwrap().trace,
            old_passing: rprism.trace_source(&src(32, 64), "op").unwrap().trace,
            new_passing: rprism.trace_source(&src(1, 64), "np").unwrap().trace,
        };
        let report = rprism
            .analyze_regression(&traces, AnalysisMode::Intersect)
            .unwrap();
        assert!(!report.suspected.is_empty());
        assert!(report.candidates.len() <= report.suspected.len());
    }
}
