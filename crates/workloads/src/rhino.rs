//! A Rhino-like synthetic bug dataset.
//!
//! The paper's quantitative evaluation (§5.1) runs RPrism over 14 usable bugs of the iBUGS
//! Rhino dataset — a JavaScript engine written in Java — with regressions injected
//! according to an empirical root-cause distribution. Rhino itself (304 KLOC of Java) is
//! not available here, so this module generates *structurally comparable* workloads: an
//! interpreter-shaped program (a driver dispatching over a chain of stateful "module"
//! classes, two distinct execution paths selected by the input "script"), large enough to
//! produce traces from thousands to hundreds of thousands of entries, into which
//! [`crate::mutate`] injects one regression per bug. The generator validates every injected
//! bug: the new version must change the program output for the regressing input while
//! agreeing with the original on the passing input (the paper "ensured that each injected
//! regression caused the test case associated with the bug to fail").

use crate::rngcompat::StdRng;

use rprism_lang::ast::{Program, Term};
use rprism_lang::build::*;
use rprism_regress::GroundTruth;
use rprism_vm::{sys_class_def, VmConfig};

use crate::mutate::{inject, MutationOutcome, RootCause};
use crate::scenario::Scenario;

/// Configuration of the Rhino-like workload generator.
#[derive(Clone, Debug)]
pub struct RhinoConfig {
    /// RNG seed; every derived program and mutation is a pure function of the seed.
    pub seed: u64,
    /// Number of "module" classes in the generated engine.
    pub modules: usize,
    /// Number of driver iterations ("script length") for the regressing input — the main
    /// knob controlling trace length.
    pub script_length: usize,
    /// Maximum attempts to find a mutation that actually regresses.
    pub max_injection_attempts: usize,
}

impl Default for RhinoConfig {
    fn default() -> Self {
        RhinoConfig {
            seed: 0,
            modules: 6,
            script_length: 40,
            max_injection_attempts: 40,
        }
    }
}

/// One generated bug: a scenario plus metadata about the injected mutation.
#[derive(Clone, Debug)]
pub struct InjectedBug {
    /// The regression scenario (old/new versions, regressing/passing drivers).
    pub scenario: Scenario,
    /// The mutation that was injected.
    pub mutation: MutationOutcome,
    /// The seed that produced this bug.
    pub seed: u64,
}

/// Generates the base (correct) engine program for the given configuration. The returned
/// program has an empty `main`; drivers are attached per test case.
pub fn base_program(config: &RhinoConfig, rng: &mut StdRng) -> Program {
    let modules = config.modules.max(2);
    let mut builder = ProgramBuilder::new().class_def(sys_class_def());

    // A mutable loop counter object (locals are immutable in the calculus).
    builder = builder.class(ClassBuilder::new("Ctr").field("i", int_ty()));

    // Stateful module classes Mod0 … ModN, each with a distinct step method.
    for m in 0..modules {
        let step = format!("step{m}");
        let helper = format!("helper{m}");
        let modulus = rng.gen_range(2..5);
        let residue = rng.gen_range(0..modulus);
        let scale = rng.gen_range(2..7);
        let offset = rng.gen_range(1..9);
        let threshold = rng.gen_range(40..140);
        builder = builder.class(
            ClassBuilder::new(&format!("Mod{m}"))
                .field("state", int_ty())
                .field("count", int_ty())
                .method(
                    MethodBuilder::new(&step, int_ty())
                        .param("v", int_ty())
                        .body(set_field(
                            this(),
                            "count",
                            add(get_field(this(), "count"), int(1)),
                        ))
                        .body(if_(
                            eq(rem(var("v"), int(modulus)), int(residue)),
                            set_field(
                                this(),
                                "state",
                                add(
                                    get_field(this(), "state"),
                                    call(this(), &helper, vec![var("v")]),
                                ),
                            ),
                            set_field(
                                this(),
                                "state",
                                add(get_field(this(), "state"), int(offset)),
                            ),
                        ))
                        .body(if_(
                            gt(get_field(this(), "state"), int(threshold)),
                            set_field(
                                this(),
                                "state",
                                sub(get_field(this(), "state"), int(threshold)),
                            ),
                            unit(),
                        ))
                        .body(get_field(this(), "state")),
                )
                .method(
                    MethodBuilder::new(&helper, int_ty())
                        .param("v", int_ty())
                        .body(add(mul(var("v"), int(scale)), int(offset))),
                ),
        );
    }

    // The driver: two execution paths over disjoint halves of the module chain, selected
    // by the input "mode" — this is what lets a mutation manifest under one input but not
    // the other.
    let half = modules / 2;
    let mut driver = ClassBuilder::new("Driver").field("acc", int_ty());
    for m in 0..modules {
        driver = driver.field(&format!("m{m}"), class_ty(&format!("Mod{m}")));
    }
    let path_body = |range: std::ops::Range<usize>| -> Vec<Term> {
        let mut body = Vec::new();
        for m in range {
            body.push(set_field(
                this(),
                "acc",
                add(
                    get_field(this(), "acc"),
                    call(
                        get_field(this(), &format!("m{m}")),
                        &format!("step{m}"),
                        vec![var("v")],
                    ),
                ),
            ));
        }
        body.push(get_field(this(), "acc"));
        body
    };
    driver = driver
        .method(
            MethodBuilder::new("runHtmlPath", int_ty())
                .param("v", int_ty())
                .bodies(path_body(0..half)),
        )
        .method(
            MethodBuilder::new("runPlainPath", int_ty())
                .param("v", int_ty())
                .bodies(path_body(half..modules)),
        )
        .method(
            MethodBuilder::new("dispatch", int_ty())
                .param("mode", int_ty())
                .param("v", int_ty())
                .body(if_(
                    eq(var("mode"), int(0)),
                    call(this(), "runHtmlPath", vec![var("v")]),
                    call(this(), "runPlainPath", vec![var("v")]),
                ))
                .body(get_field(this(), "acc")),
        )
        .method(
            MethodBuilder::new("total", int_ty())
                .body(get_field(this(), "acc")),
        );
    builder = builder.class(driver);
    builder.build()
}

/// Builds a driver `main` body for the given mode (0 = regressing path, 1 = passing path)
/// and iteration count.
pub fn driver_main(config: &RhinoConfig, mode: i64, iterations: usize) -> Vec<Term> {
    let modules = config.modules.max(2);
    // let sys = new Sys();
    // let m0 = new Mod0(0, 0); …
    // let d = new Driver(0, m0, …, mN);
    // let c = new Ctr(0);
    // while (c.i < iterations) { d.dispatch(mode, c.i); c.i = c.i + 1; }
    // sys.print(d.total());
    let mut driver_args = vec![int(0)];
    for m in 0..modules {
        driver_args.push(var(&format!("m{m}")));
    }
    let loop_and_report = seq(vec![
        while_(
            lt(get_field(var("c"), "i"), int(iterations as i64)),
            seq(vec![
                call(var("d"), "dispatch", vec![int(mode), get_field(var("c"), "i")]),
                set_field(var("c"), "i", add(get_field(var("c"), "i"), int(1))),
            ]),
        ),
        call(var("sys"), "print", vec![call(var("d"), "total", vec![])]),
    ]);
    let with_ctr = let_("c", new("Ctr", vec![int(0)]), loop_and_report);
    let with_driver = let_("d", new("Driver", driver_args), with_ctr);
    let mut term = with_driver;
    for m in (0..modules).rev() {
        term = let_(
            &format!("m{m}"),
            new(&format!("Mod{m}"), vec![int(0), int(0)]),
            term,
        );
    }
    vec![let_("sys", new("Sys", vec![]), term)]
}

/// Generates one injected bug from a seed, retrying mutation sites until the injected
/// change regresses under the regressing input and passes under the passing input.
///
/// Returns `None` when no regressing mutation could be found within the configured number
/// of attempts (rare; callers typically move on to the next seed).
pub fn generate_bug(config: &RhinoConfig) -> Option<InjectedBug> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let base = base_program(config, &mut rng);
    let regressing_main = driver_main(config, 0, config.script_length);
    let passing_main = driver_main(config, 1, config.script_length.max(4) / 2);

    for _attempt in 0..config.max_injection_attempts {
        let cause = RootCause::sample(&mut rng);
        let mut mutated = base.clone();
        let Some(mutation) = inject(&mut mutated, cause, &mut rng) else {
            continue;
        };

        let scenario = Scenario {
            name: format!("rhino-bug-{}", config.seed),
            description: format!(
                "injected {} in {}.{}: {}",
                mutation.cause.label(),
                mutation.class,
                mutation.method,
                mutation.description
            ),
            old_version: Program {
                classes: base.classes.clone(),
                main: vec![],
            },
            new_version: Program {
                classes: mutated.classes.clone(),
                main: vec![],
            },
            regressing_main: regressing_main.clone(),
            passing_main: passing_main.clone(),
            new_regressing_main: None,
            new_passing_main: None,
            ground_truth: GroundTruth::new([
                format!("{}-", mutation.class),
                mutation.method.clone(),
            ]),
            vm_config: VmConfig::default(),
            code_removal: mutation.cause == RootCause::MissingFeature,
        };

        // Validate the injected regression: fail on the regressing input, pass on the
        // passing input, and no runtime error in the *old* version.
        match scenario.trace_all() {
            Ok(traces) if traces.exhibits_regression() => {
                return Some(InjectedBug {
                    scenario,
                    mutation,
                    seed: config.seed,
                });
            }
            _ => continue,
        }
    }
    None
}

/// Generates a dataset of `count` injected bugs with consecutive seeds starting at
/// `first_seed`. Seeds whose injection fails to regress are skipped, so the returned
/// vector may draw from more than `count` seeds.
pub fn dataset(first_seed: u64, count: usize, config_template: &RhinoConfig) -> Vec<InjectedBug> {
    let mut bugs = Vec::new();
    let mut seed = first_seed;
    // Bound the total number of seeds tried so pathological configurations terminate.
    let max_seeds = first_seed + (count as u64) * 10 + 10;
    while bugs.len() < count && seed < max_seeds {
        let config = RhinoConfig {
            seed,
            ..config_template.clone()
        };
        if let Some(bug) = generate_bug(&config) {
            bugs.push(bug);
        }
        seed += 1;
    }
    bugs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_lang::validate::validate;

    fn small_config(seed: u64) -> RhinoConfig {
        RhinoConfig {
            seed,
            modules: 4,
            script_length: 12,
            max_injection_attempts: 40,
        }
    }

    #[test]
    fn base_program_is_well_formed_and_deterministic() {
        let cfg = small_config(5);
        let mut r1 = StdRng::seed_from_u64(cfg.seed);
        let mut r2 = StdRng::seed_from_u64(cfg.seed);
        let p1 = base_program(&cfg, &mut r1);
        let p2 = base_program(&cfg, &mut r2);
        assert_eq!(p1, p2);
        let full = Program {
            classes: p1.classes.clone(),
            main: driver_main(&cfg, 0, 5),
        };
        validate(&full).expect("generated program validates");
        assert!(p1.classes.len() >= 6);
    }

    #[test]
    fn generated_bug_exhibits_a_regression() {
        let bug = generate_bug(&small_config(1)).expect("seed 1 yields a regressing bug");
        let traces = bug.scenario.trace_all().unwrap();
        assert!(traces.exhibits_regression());
        assert!(!bug.mutation.description.is_empty());
        // Traces are non-trivial.
        assert!(traces.traces.old_regressing.len() > 100);
    }

    #[test]
    fn dataset_produces_distinct_bugs() {
        let bugs = dataset(10, 3, &small_config(0));
        assert_eq!(bugs.len(), 3);
        let names: Vec<&str> = bugs.iter().map(|b| b.scenario.name.as_str()).collect();
        let mut unique = names.clone();
        unique.dedup();
        assert_eq!(names.len(), unique.len());
    }

    #[test]
    fn generation_is_reproducible() {
        let a = generate_bug(&small_config(2)).unwrap();
        let b = generate_bug(&small_config(2)).unwrap();
        assert_eq!(a.scenario.new_version, b.scenario.new_version);
        assert_eq!(a.mutation.cause, b.mutation.cause);
    }

    #[test]
    fn script_length_scales_trace_size() {
        let short = generate_bug(&small_config(3)).unwrap();
        let long_cfg = RhinoConfig {
            script_length: 48,
            ..small_config(3)
        };
        let long = generate_bug(&long_cfg).unwrap();
        let short_len = short.scenario.trace_all().unwrap().traces.old_regressing.len();
        let long_len = long.scenario.trace_all().unwrap().traces.old_regressing.len();
        assert!(long_len > short_len * 2);
    }
}
