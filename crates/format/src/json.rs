//! A minimal JSON reader/writer for the JSONL trace encoding.
//!
//! The workspace carries no external dependencies, so this module hand-rolls the small
//! JSON subset the line schema needs: objects, arrays, strings (with full escape
//! handling, including `\uXXXX` surrogate pairs), booleans, `null`, and **non-negative
//! integer** numbers (every numeric field of the schema is a `u64`; floats, exponents
//! and negative numbers are rejected with a structured message rather than silently
//! rounded). Errors are plain `String` details; the JSONL layer wraps them with the
//! offending line number.

/// A parsed JSON value. Object keys keep their textual order, which the schema mappers
/// use to reject duplicate or unknown keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the only number form the trace schema uses).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses one complete JSON value from `input`, rejecting trailing non-whitespace.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at column {}", p.pos + 1));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at column {}",
                byte as char,
                self.pos + 1
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at column {}", self.pos + 1))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(format!(
                "negative numbers are not part of the trace schema (column {})",
                self.pos + 1
            )),
            Some(c) => Err(format!(
                "unexpected character `{}` at column {}",
                c as char,
                self.pos + 1
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at column {}", self.pos + 1)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at column {}", self.pos + 1)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at column {} (the trace schema uses integers only)",
                start + 1
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| format!("number at column {} overflows u64", start + 1))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let start = self.pos;
        let Some(slice) = self.bytes.get(self.pos..self.pos + 4) else {
            return Err("truncated \\u escape".into());
        };
        // `from_str_radix` alone would accept a leading `+`; JSON requires exactly
        // four hex digits.
        if !slice.iter().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("invalid \\u escape at column {}", start + 1));
        }
        let text = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_owned())?;
        let value = u16::from_str_radix(text, 16)
            .map_err(|_| format!("invalid \\u escape at column {}", start + 1))?;
        self.pos += 4;
        Ok(value)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err("unterminated string".into());
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // A high surrogate must pair with a following \uXXXX low
                                // surrogate.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err("unpaired surrogate in \\u escape".into());
                                    }
                                    let code = 0x10000
                                        + ((u32::from(hi) - 0xd800) << 10)
                                        + (u32::from(lo) - 0xdc00);
                                    char::from_u32(code)
                                        .ok_or_else(|| "invalid surrogate pair".to_owned())?
                                } else {
                                    return Err("unpaired surrogate in \\u escape".into());
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err("unpaired low surrogate in \\u escape".into());
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| "invalid \\u escape".to_owned())?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!("invalid escape `\\{}`", other as char));
                        }
                    }
                }
                0x00..=0x1f => {
                    return Err(format!(
                        "unescaped control character {byte:#04x} in string"
                    ));
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so boundaries are
                    // valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let ch = rest.chars().next().expect("peeked byte implies a char");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

/// Appends the JSON string literal for `s` (quotes included) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_schema_shapes() {
        let v = parse(r#"{"kind":"call","args":[{"class":"Int"},null,true],"tid":7}"#).unwrap();
        let Json::Obj(pairs) = v else { panic!("not an object") };
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].0, "kind");
        assert_eq!(pairs[2].1, Json::Num(7));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "with \"quotes\"", "tab\tnewline\n", "uni ☃ 😀", "back\\slash"] {
            let mut line = String::new();
            write_escaped(&mut line, s);
            assert_eq!(parse(&line).unwrap(), Json::Str(s.to_owned()), "case {s:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Json::Str("😀".to_owned())
        );
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_owned())
        );
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn schema_foreign_numbers_are_rejected() {
        assert!(parse("-1").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("1e9").is_err());
        assert!(parse("99999999999999999999999999").is_err());
        assert_eq!(parse("18446744073709551615").unwrap(), Json::Num(u64::MAX));
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
            "{\"a\":1}extra", "\u{7}", "\"bad \\q escape\"", "[1 2]", "\"\\u+abc\"",
            "\"\\u12g4\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
