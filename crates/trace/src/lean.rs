//! Lean per-entry context: the bounded-memory companion of
//! [`KeyedTrace`](crate::keyed::KeyedTrace).
//!
//! A full [`TraceEntry`] is expensive to hold for multi-hundred-MB traces: each entry
//! carries owned strings (class names, printed values) and nested object
//! representations. The differencing and regression pipelines, however, only consult a
//! small slice of that data once a [`KeyedTrace`](crate::keyed::KeyedTrace) and a view
//! web exist:
//!
//! * the entry's **thread id** (thread-view correlation),
//! * the **enclosing method** and **active-object class** (difference signatures),
//! * the **correlation identity** of the active object and of the event's target object
//!   (class, value fingerprint, creation sequence — the inputs of
//!   [`ObjRep::correlates_with`]).
//!
//! [`LeanEntry`] captures exactly that, with every name interned to a [`Symbol`]: a
//! plain-data struct a fraction of the size of a decoded entry, held in one flat `Vec`.
//! Streaming ingestion (`rprism_core::ingest`) builds a [`LeanTrace`] instead of a
//! [`Trace`](crate::trace::Trace), which is what lets two large on-disk traces be
//! differenced without ever materializing either one.

use crate::entry::{ThreadId, TraceEntry};
use crate::intern::{intern, Symbol};
use crate::objrep::{CreationSeq, ObjRep, ValueFingerprint};
use crate::trace::TraceMeta;

/// The cross-trace correlation identity of one object representation: the three fields
/// [`ObjRep::correlates_with`] consults, with the class name interned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjIdent {
    /// The interned dynamic class name (or primitive type name).
    pub class: Symbol,
    /// The stable value fingerprint.
    pub fingerprint: ValueFingerprint,
    /// The per-class creation sequence number, when the value is a heap object.
    pub creation_seq: Option<CreationSeq>,
}

impl ObjIdent {
    /// Extracts the correlation identity of a full object representation.
    pub fn of(rep: &ObjRep) -> Self {
        ObjIdent {
            class: intern(&rep.class),
            fingerprint: rep.fingerprint,
            creation_seq: rep.creation_seq,
        }
    }

    /// [`ObjRep::correlates_with`] restated on identities: equal classes and either
    /// meaningful equal fingerprints or equal creation sequence numbers. Because the
    /// identity copies exactly the fields the full predicate reads, this agrees with
    /// [`ObjRep::correlates_with`] on the underlying representations.
    pub fn correlates_with(&self, other: &ObjIdent) -> bool {
        if self.class != other.class {
            return false;
        }
        if self.fingerprint.is_meaningful()
            && other.fingerprint.is_meaningful()
            && self.fingerprint == other.fingerprint
        {
            return true;
        }
        match (self.creation_seq, other.creation_seq) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Mixed-form correlation against a full representation (one side lean, one side
    /// full — e.g. a streamed trace differenced against a freshly traced one).
    pub fn correlates_with_rep(&self, other: &ObjRep) -> bool {
        if self.class.as_str() != other.class {
            return false;
        }
        if self.fingerprint.is_meaningful()
            && other.fingerprint.is_meaningful()
            && self.fingerprint == other.fingerprint
        {
            return true;
        }
        match (self.creation_seq, other.creation_seq) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

/// The lean context of one trace entry — everything the analysis pipeline reads from an
/// entry besides its precomputed event key and view memberships.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeanEntry {
    /// The thread that performed the action.
    pub tid: ThreadId,
    /// The interned name of the method under execution when the event occurred.
    pub method: Symbol,
    /// Correlation identity of the active object.
    pub active: ObjIdent,
    /// Correlation identity of the event's target object, if the event has one
    /// (`fork`/`end` events have none).
    pub target: Option<ObjIdent>,
}

impl LeanEntry {
    /// Reduces a full entry to its lean context (interning the names it mentions).
    pub fn of(entry: &TraceEntry) -> Self {
        LeanEntry {
            tid: entry.tid,
            method: intern(entry.method.as_str()),
            active: ObjIdent::of(&entry.active),
            target: entry.event.target_object().map(ObjIdent::of),
        }
    }
}

/// A trace reduced to lean per-entry contexts: metadata plus one flat [`LeanEntry`] per
/// entry, in execution order (index `i` is entry id `i`, like
/// [`Trace`](crate::trace::Trace)).
#[derive(Clone, Debug, Default)]
pub struct LeanTrace {
    /// Trace identification.
    pub meta: TraceMeta,
    entries: Vec<LeanEntry>,
}

impl LeanTrace {
    /// Creates an empty lean trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Self {
        LeanTrace {
            meta,
            entries: Vec::new(),
        }
    }

    /// Appends the lean context of one entry (exposed for incremental/streaming
    /// construction).
    pub fn push(&mut self, entry: &TraceEntry) {
        self.entries.push(LeanEntry::of(entry));
    }

    /// The lean contexts, in entry order.
    pub fn entries(&self) -> &[LeanEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The in-memory footprint of the lean representation in bytes.
    pub fn estimated_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<LeanEntry>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::{arbitrary_entry, Rng};

    #[test]
    fn lean_correlation_agrees_with_full_correlation() {
        let mut rng = Rng::new(0xab5e);
        let entries: Vec<TraceEntry> = (0..120).map(|_| arbitrary_entry(&mut rng)).collect();
        let reps: Vec<&ObjRep> = entries
            .iter()
            .flat_map(|e| {
                e.event
                    .target_object()
                    .into_iter()
                    .chain(std::iter::once(&e.active))
            })
            .collect();
        for a in &reps {
            for b in &reps {
                let full = a.correlates_with(b);
                let lean = ObjIdent::of(a).correlates_with(&ObjIdent::of(b));
                let mixed = ObjIdent::of(a).correlates_with_rep(b);
                assert_eq!(full, lean, "lean correlation diverged for {a:?} vs {b:?}");
                assert_eq!(full, mixed, "mixed correlation diverged for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn lean_entries_capture_context() {
        let mut rng = Rng::new(7);
        let mut lean = LeanTrace::new(TraceMeta::new("lean", "v", "t"));
        let mut entries = Vec::new();
        for _ in 0..40 {
            let e = arbitrary_entry(&mut rng);
            lean.push(&e);
            entries.push(e);
        }
        assert_eq!(lean.len(), entries.len());
        for (le, e) in lean.entries().iter().zip(&entries) {
            assert_eq!(le.tid, e.tid);
            assert_eq!(le.method.as_str(), e.method.as_str());
            assert_eq!(le.active.class.as_str(), e.active.class);
            assert_eq!(le.target.is_some(), e.event.target_object().is_some());
        }
        assert!(lean.estimated_bytes() > 0);
    }
}
