//! The checker against the real corpus: zero false positives on every committed golden
//! fixture and every case-study role, single-rule trips on targeted mutations, and
//! deterministic reports regardless of how the entries are delivered.

use rprism_check::{check_trace, CheckConfig, Checker, Severity};
use rprism_format::TraceReader;
use rprism_trace::{EntryId, Event, ThreadId, Trace, TraceEntry};
use rprism_workloads::casestudies;
use rprism_workloads::corpus::corpus_files;

/// Streams serialized bytes through the checker the way the engine does (no
/// materialized `Trace`), returning the finished report.
fn check_bytes(bytes: &[u8]) -> rprism_check::CheckReport {
    let mut reader = TraceReader::new(std::io::BufReader::new(bytes)).unwrap();
    let mut checker = Checker::new();
    let mut batch = Vec::new();
    while reader.read_batch(&mut batch, 256).unwrap() > 0 {
        for entry in &batch {
            checker.observe(entry);
        }
    }
    let mut report = checker.finish();
    report.trace_name = reader.meta().name.clone();
    report
}

/// Every committed corpus fixture checks clean at the warning threshold: the only
/// diagnostic anywhere is the aborted-run info on derby's new-regressing trace.
#[test]
fn all_sixteen_corpus_fixtures_lint_clean() {
    let files = corpus_files().unwrap();
    assert_eq!(files.len(), 16);
    for file in &files {
        let report = check_bytes(&file.bytes);
        assert_eq!(
            report.count_at_least(Severity::Warning),
            0,
            "{} has diagnostics at warning or above: {:#?}",
            file.name,
            report.diagnostics
        );
        for diag in &report.diagnostics {
            assert_eq!(
                diag.rule_id, "unclosed-call",
                "{}: unexpected info diagnostic {:#?}",
                file.name, diag
            );
            assert!(
                file.name.starts_with("derby-1633.new-regressing"),
                "{}: unexpected aborted-run info {:#?}",
                file.name,
                diag
            );
        }
    }
}

/// All four case studies, all four roles: the passing and regressing runs of both
/// versions are well-formed. The aborted derby compilation keeps its open calls as an
/// info-level note, everything else is fully clean.
#[test]
fn all_case_study_roles_check_clean() {
    for scenario in casestudies::all() {
        let traces = scenario.trace_all().unwrap();
        let roles = [
            ("old-regressing", &traces.traces.old_regressing),
            ("new-regressing", &traces.traces.new_regressing),
            ("old-passing", &traces.traces.old_passing),
            ("new-passing", &traces.traces.new_passing),
        ];
        for (role, handle) in roles {
            let report = check_trace(handle.trace());
            assert_eq!(
                report.count_at_least(Severity::Warning),
                0,
                "{}/{role}: {:#?}",
                scenario.name,
                report.diagnostics
            );
            let aborted = scenario.name == "derby-1633" && role == "new-regressing";
            if aborted {
                assert!(
                    report.by_rule("unclosed-call").count() == 1,
                    "{}/{role}: expected one aborted-run note, got {:#?}",
                    scenario.name,
                    report.diagnostics
                );
            } else {
                assert!(
                    report.is_clean(),
                    "{}/{role}: {:#?}",
                    scenario.name,
                    report.diagnostics
                );
            }
        }
    }
}

/// Rebuilds a trace with positional entry ids after a structural mutation.
fn rebuild(name: &str, entries: Vec<TraceEntry>) -> Trace {
    let mut out = Trace::named(name);
    for entry in entries {
        out.push(entry);
    }
    out
}

fn daikon_trace() -> Trace {
    let scenario = casestudies::all()
        .into_iter()
        .find(|s| s.name == "daikon")
        .unwrap();
    let traces = scenario.trace_all().unwrap();
    traces.traces.old_regressing.trace().clone()
}

fn derby_trace() -> Trace {
    let scenario = casestudies::all()
        .into_iter()
        .find(|s| s.name == "derby-1633")
        .unwrap();
    let traces = scenario.trace_all().unwrap();
    traces.traces.old_regressing.trace().clone()
}

/// Mutation: dropping a thread's final return leaves exactly one open call at its end
/// event — the unclosed-call rule, and nothing else.
#[test]
fn mutation_dropped_return_trips_only_unclosed_call() {
    let trace = daikon_trace();
    let last_return = trace
        .entries
        .iter()
        .rposition(|e| matches!(e.event, Event::Return { .. }) && e.tid == ThreadId::MAIN)
        .expect("daikon main thread has returns");
    let mut entries = trace.entries.clone();
    entries.remove(last_return);
    let report = check_trace(&rebuild("mutated/dropped-return", entries));
    assert!(!report.diagnostics.is_empty());
    for diag in &report.diagnostics {
        assert_eq!(diag.rule_id, "unclosed-call", "{:#?}", report.diagnostics);
    }
}

/// Mutation: moving a fork after its child's first entry makes the child an orphan —
/// the orphan-thread rule, and nothing else.
#[test]
fn mutation_reordered_fork_trips_only_orphan_thread() {
    let trace = derby_trace();
    let fork_idx = trace
        .entries
        .iter()
        .position(|e| matches!(e.event, Event::Fork { child, .. } if child == ThreadId(1)))
        .expect("derby forks thread 1");
    let first_child_idx = trace
        .entries
        .iter()
        .position(|e| e.tid == ThreadId(1))
        .expect("thread 1 emits entries");
    assert!(fork_idx < first_child_idx);
    let mut entries = trace.entries.clone();
    let fork = entries.remove(fork_idx);
    // Re-insert the fork right after the child's first entry (index shifted by the
    // removal).
    entries.insert(first_child_idx, fork);
    let report = check_trace(&rebuild("mutated/reordered-fork", entries));
    assert_eq!(
        report.by_rule("orphan-thread").count(),
        1,
        "{:#?}",
        report.diagnostics
    );
    for diag in &report.diagnostics {
        assert_eq!(diag.rule_id, "orphan-thread", "{:#?}", report.diagnostics);
    }
}

/// Mutation: retargeting a field access at a never-created object identity dangles the
/// reference — the define-before-use rule, and nothing else.
#[test]
fn mutation_dangled_object_trips_only_define_before_use() {
    let trace = daikon_trace();
    let mut entries = trace.entries.clone();
    let get_idx = entries
        .iter()
        .position(|e| matches!(e.event, Event::Get { .. }))
        .expect("daikon has field reads");
    if let Event::Get { target, .. } = &mut entries[get_idx].event {
        target.creation_seq = Some(rprism_trace::CreationSeq(9_999));
    }
    let report = check_trace(&rebuild("mutated/dangled-object", entries));
    assert!(!report.diagnostics.is_empty());
    for diag in &report.diagnostics {
        assert_eq!(
            diag.rule_id, "define-before-use",
            "{:#?}",
            report.diagnostics
        );
    }
}

/// Delivery-shape independence: feeding the same serialized trace entry-by-entry, in
/// large batches, or as a materialized `Trace` produces identical reports (the
/// determinism contract behind `remote check` ≡ local `check`).
#[test]
fn reports_are_independent_of_delivery_granularity() {
    let file = corpus_files()
        .unwrap()
        .into_iter()
        .find(|f| f.name == "derby-1633.new-regressing.rtr")
        .unwrap();
    let streamed = check_bytes(&file.bytes);

    let mut reader = TraceReader::new(std::io::BufReader::new(file.bytes.as_slice())).unwrap();
    let mut one_by_one = Checker::with_config(CheckConfig::default());
    while let Some(entry) = reader.next_entry().unwrap() {
        one_by_one.observe(&entry);
    }
    let mut single = one_by_one.finish();
    single.trace_name = reader.meta().name.clone();

    let full = {
        let trace = rprism_format::trace_from_bytes(&file.bytes).unwrap();
        check_trace(&trace)
    };

    assert_eq!(streamed, single);
    assert_eq!(streamed, full);
    assert_eq!(streamed.render_human(), full.render_human());
    assert_eq!(streamed.render_json(), full.render_json());
}

/// Entry-id sanity on a corpus trace survives a round-trip but trips after tampering —
/// guards the eid mutation path used by the format tests.
#[test]
fn tampered_entry_ids_are_detected() {
    let mut trace = daikon_trace();
    trace.entries[3].eid = EntryId(77);
    let report = check_trace(&trace);
    assert_eq!(report.by_rule("entry-id-order").count(), 1);
}
