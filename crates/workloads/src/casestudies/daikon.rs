//! The Daikon regression (paper §5.2, first case study; also evaluated by JUnit/CIA).
//!
//! Daikon filters candidate program invariants through a visitor; the regression was
//! caused by changes to the two predicate methods `shouldAddInv1` and `shouldAddInv2` of
//! `daikon.diff.XorVisitor`, observed by an outdated `testXor` test case. We model the
//! visitor over a stream of synthetic invariants: the new version tightens
//! `shouldAddInv2`'s threshold (the change that makes `testXor` fail) and also rewrites
//! `shouldAddInv1` in a way that happens not to affect the test inputs — reproducing the
//! shape in which the paper's analysis found the former but reported the latter as a false
//! negative.

use rprism_lang::parser::parse_program;
use rprism_lang::Program;
use rprism_regress::GroundTruth;
use rprism_vm::VmConfig;

use crate::scenario::Scenario;

const COMMON: &str = r#"
    class Sys extends Object {
        Unit print(Str msg) { unit; }
        Unit fail(Str msg) { unit; }
    }
    class Invariant extends Object {
        Int kind;
        Int strength;
        Int arity;
    }
    class InvariantStore extends Object {
        Int added;
        Int skipped;
        Unit record(Bool keep) {
            if (keep) {
                this.added = this.added + 1;
            } else {
                this.skipped = this.skipped + 1;
            }
        }
    }
"#;

const OLD_VISITOR: &str = r#"
    class XorVisitor extends Object {
        InvariantStore store;
        Int visited;
        Bool shouldAddInv1(Invariant inv) {
            return (inv.kind % 3) != 0;
        }
        Bool shouldAddInv2(Invariant inv) {
            return inv.strength >= 5;
        }
        Unit visit(Invariant inv) {
            this.visited = this.visited + 1;
            this.store.record(this.shouldAddInv1(inv) && this.shouldAddInv2(inv));
        }
    }
"#;

const NEW_VISITOR: &str = r#"
    class XorVisitor extends Object {
        InvariantStore store;
        Int visited;
        Bool shouldAddInv1(Invariant inv) {
            return ((inv.kind % 3) != 0) || (inv.arity > 9);
        }
        Bool shouldAddInv2(Invariant inv) {
            return inv.strength > 5;
        }
        Unit visit(Invariant inv) {
            this.visited = this.visited + 1;
            this.store.record(this.shouldAddInv1(inv) && this.shouldAddInv2(inv));
        }
    }
"#;

const DRIVER: &str = r#"
    class XorDriver extends Object {
        XorVisitor visitor;
        Unit feed(Int kind, Int strength, Int arity) {
            this.visitor.visit(new Invariant(kind, strength, arity));
        }
        Unit sweep(Int base) {
            let c = new Ctr(0);
            while (c.i < 12) {
                this.feed(base + c.i, 6 + (c.i % 4), 2);
                c.i = c.i + 1;
            }
        }
    }
    class Ctr extends Object { Int i; }
"#;

fn driver_main(strength_focus: i64) -> String {
    // The regressing test (`testXor`) exercises invariants whose strength is exactly the
    // boundary value 5 — the inputs on which `>= 5` and `> 5` disagree. The passing test
    // uses strengths well away from the boundary.
    format!(
        r#"
        main {{
            let sys = new Sys();
            let store = new InvariantStore(0, 0);
            let visitor = new XorVisitor(store, 0);
            let driver = new XorDriver(visitor);
            driver.sweep(1);
            driver.feed(1, {strength_focus}, 2);
            driver.feed(2, {strength_focus}, 3);
            driver.feed(4, {strength_focus}, 2);
            sys.print(store.added);
            sys.print(store.skipped);
        }}
        "#
    )
}

fn version(classes: &str, strength_focus: i64) -> Program {
    let src = format!("{COMMON}{classes}{DRIVER}{}", driver_main(strength_focus));
    parse_program(&src).expect("the Daikon scenario sources are well-formed")
}

/// Builds the Daikon `testXor` regression scenario.
pub fn scenario() -> Scenario {
    let old_reg = version(OLD_VISITOR, 5);
    let new_reg = version(NEW_VISITOR, 5);
    let old_pass = version(OLD_VISITOR, 9);

    Scenario {
        name: "daikon".into(),
        description: "XorVisitor.shouldAddInv2 threshold change makes testXor fail".into(),
        old_version: Program {
            classes: old_reg.classes.clone(),
            main: vec![],
        },
        new_version: Program {
            classes: new_reg.classes.clone(),
            main: vec![],
        },
        regressing_main: old_reg.main,
        passing_main: old_pass.main,
        new_regressing_main: None,
        new_passing_main: None,
        ground_truth: GroundTruth::new(["shouldAddInv2", "shouldAddInv1"]),
        vm_config: VmConfig::default(),
        code_removal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_regress::DiffAlgorithm;

    #[test]
    fn testxor_fails_only_on_the_boundary_inputs() {
        let traces = scenario().trace_all().unwrap();
        assert!(traces.exhibits_regression());
    }

    #[test]
    fn analysis_points_at_should_add_inv2() {
        let outcome = scenario()
            .analyze_and_evaluate(&DiffAlgorithm::Views(Default::default()))
            .unwrap();
        assert!(outcome.report.num_regression_sequences() >= 1);
        // shouldAddInv2 is covered; shouldAddInv1 may legitimately remain a false negative
        // (as it did for RPrism in the paper), so we only require that not *everything* was
        // missed.
        assert!(
            outcome.quality.covered_markers >= 1,
            "quality: {:?}",
            outcome.quality
        );
    }
}
