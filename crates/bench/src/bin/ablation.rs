//! Ablation study over the views-based differencer's design parameters (the design choices
//! called out in `DESIGN.md`): the secondary-view exploration radius Δ, the secondary LCS
//! window size δ, and the §5 relaxed-correlation mode. For each configuration the harness
//! reports differences found, compare operations and analysis quality on the Rhino-like
//! dataset.
//!
//! Run with `cargo run -p rprism-bench --bin ablation --release [-- <bugs> <script_length>]`.

use rprism::PreparedTrace;
use rprism_bench::{format_table, rhino_eval_dataset};
use rprism_diff::{views_diff_correlated, ViewsDiffOptions};
use rprism_views::Correlation;

fn main() {
    let mut args = std::env::args().skip(1);
    let bugs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let script_length: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);

    let dataset = rhino_eval_dataset(bugs, script_length);
    println!(
        "Views-differencing ablation over {} injected bugs (script length {script_length})\n",
        dataset.len()
    );

    let configs: Vec<(&str, ViewsDiffOptions)> = vec![
        ("default (Δ=2, δ=8, relaxed)", ViewsDiffOptions::default()),
        (
            "no secondary views (Δ=0, δ=0)",
            ViewsDiffOptions::builder().delta(0).window(0).build(),
        ),
        (
            "narrow windows (Δ=1, δ=2)",
            ViewsDiffOptions::builder().delta(1).window(2).build(),
        ),
        (
            "wide windows (Δ=4, δ=16)",
            ViewsDiffOptions::builder().delta(4).window(16).build(),
        ),
        (
            "no relaxed correlation",
            ViewsDiffOptions::builder().relaxed_correlation(false).build(),
        ),
        (
            "short scan-ahead (16)",
            ViewsDiffOptions::builder().max_scan_ahead(16).build(),
        ),
    ];

    // Trace every bug once up front: all six configurations diff the same prepared
    // handles, sharing each trace's event keys and view web AND each pair's view
    // correlation (a pure function of the two webs — the ablation varies only the
    // exploration knobs, which the correlation does not depend on).
    let prepared: Vec<(PreparedTrace, PreparedTrace, Correlation)> = dataset
        .iter()
        .filter_map(|bug| bug.scenario.trace_all().ok())
        .map(|traces| {
            let old = traces.traces.old_regressing;
            let new = traces.traces.new_regressing;
            let correlation = Correlation::build_with(old.web(), new.web(), true);
            (old, new, correlation)
        })
        .collect();

    let mut rows = Vec::new();
    for (label, options) in &configs {
        let mut total_diffs = 0usize;
        let mut total_similar = 0usize;
        let mut total_compare_ops = 0u64;
        let mut total_entries = 0usize;
        for (old, new, correlation) in &prepared {
            let result = views_diff_correlated(
                old.trace(),
                new.trace(),
                old.web(),
                new.web(),
                old.keyed(),
                new.keyed(),
                correlation,
                options,
            );
            total_diffs += result.num_differences();
            total_similar += result.num_similar();
            total_compare_ops += result.cost.compare_ops;
            total_entries += old.trace().len() + new.trace().len();
        }
        rows.push(vec![
            (*label).to_owned(),
            total_diffs.to_string(),
            total_similar.to_string(),
            format!(
                "{:.1}%",
                100.0 * total_diffs as f64 / total_entries.max(1) as f64
            ),
            total_compare_ops.to_string(),
        ]);
    }

    println!(
        "{}",
        format_table(
            &[
                "configuration",
                "total diffs",
                "total similar",
                "diff ratio",
                "compare ops"
            ],
            &rows
        )
    );
    println!("Lower diff ratio = more semantic correlations recovered; compare ops = cost.");
}
