//! Criterion benchmark: scaling of LCS-based vs views-based trace differencing with trace
//! length (the performance half of the paper's §5.1 evaluation — views-based differencing
//! is linear, the LCS baseline quadratic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rprism_diff::{lcs_diff, views_diff, LcsDiffOptions, MemoryBudget, ViewsDiffOptions};
use rprism_lang::parser::parse_program;
use rprism_trace::{Trace, TraceMeta};
use rprism_vm::{run_traced, VmConfig};

/// Builds a pair of traces (original / regressing) whose length scales with `iterations`.
fn trace_pair(iterations: usize, min: i64) -> (Trace, Trace) {
    let src = |min: i64| {
        format!(
            r#"
            class Ctr extends Object {{ Int i; }}
            class Range extends Object {{ Int min; Int max; }}
            class App extends Object {{
                Range r;
                Int hits;
                Unit setup() {{ this.r = new Range({min}, 127); }}
                Unit check(Int c) {{
                    if ((c >= this.r.min) && (c <= this.r.max)) {{ this.hits = this.hits + 1; }}
                }}
            }}
            main {{
                let a = new App(null, 0);
                a.setup();
                let c = new Ctr(0);
                while (c.i < {iterations}) {{
                    a.check(c.i % 200);
                    c.i = c.i + 1;
                }}
            }}
            "#
        )
    };
    let run = |source: &str, label: &str| {
        run_traced(
            &parse_program(source).unwrap(),
            TraceMeta::new(label, "", ""),
            VmConfig::default(),
        )
        .unwrap()
        .trace
    };
    (run(&src(32), "old"), run(&src(min), "new"))
}

fn bench_diff_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_scaling");
    group.sample_size(10);
    for iterations in [50usize, 150, 400] {
        let (old, new) = trace_pair(iterations, 1);
        group.bench_with_input(
            BenchmarkId::new("views", old.len()),
            &(&old, &new),
            |b, (old, new)| b.iter(|| views_diff(old, new, &ViewsDiffOptions::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("lcs", old.len()),
            &(&old, &new),
            |b, (old, new)| {
                b.iter(|| {
                    lcs_diff(
                        old,
                        new,
                        &LcsDiffOptions {
                            memory_budget: MemoryBudget::unlimited(),
                            linear_space: false,
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_diff_scaling);
criterion_main!(benches);
