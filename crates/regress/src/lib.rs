//! # rprism-regress
//!
//! Regression-cause analysis (paper §4) built on views-based trace differencing: given
//! traces of an original and a regressing program version under a regressing test case and
//! a similar passing test case, compute the suspected (A), expected (B) and regression (C)
//! difference sets, derive the candidate causes `D = (A − B) ∩ C` (or the code-removal
//! variant `(A − B) − C`), and classify the suspected comparison's difference sequences as
//! regression-related or not.
//!
//! * [`analysis`] — the sets, the algorithm and the [`RegressionReport`];
//! * [`sets`] — version-independent difference signatures and set algebra;
//! * [`metrics`] — accuracy / speedup (Fig. 14) and false-positive / false-negative
//!   evaluation against ground truth (Table 1);
//! * [`report`] — human-readable rendering of the semantic diff and candidate causes.

pub mod analysis;
pub mod metrics;
pub mod report;
pub mod sets;

#[allow(deprecated)]
pub use analysis::analyze;
pub use analysis::{
    analyze_prepared, analyze_prepared_with, AnalysisComparison, AnalysisMode, DiffAlgorithm,
    PreparedInput, PreparedTraceRef, RegressionReport, RegressionTraces, SequenceVerdict,
};
pub use metrics::{accuracy, evaluate, speedup, GroundTruth, QualityMetrics};
pub use report::{render_report, render_report_with, RenderOptions};
pub use sets::{DiffSet, DiffSignature};
