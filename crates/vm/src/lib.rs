//! # rprism-vm
//!
//! The tracing interpreter of the RPrism reproduction: an executable version of the
//! paper's dynamic semantics (§2.3, Fig. 6) for the core calculus defined in
//! [`rprism_lang`]. Running a program does two things at once:
//!
//! 1. it *evaluates* the program (heap, dynamic dispatch, threads, primitive operations),
//! 2. it *records* a [`rprism_trace::Trace`] containing exactly the entries the paper's
//!    instrumented semantics prescribes — object creations, field accesses, method
//!    calls/returns, thread forks/ends — each with the generic context (thread, enclosing
//!    method, enclosing receiver).
//!
//! In the paper the tracing layer is implemented by weaving AspectJ advice into JVM
//! bytecode; here the interpreter *is* the instrumentation (see `DESIGN.md` for the
//! substitution argument). The [`filter::TraceFilter`] plays the role of pointcuts, and
//! [`rprism_trace::SegmentedTrace`] plays the role of smart trace segmentation.
//!
//! ## Quickstart
//!
//! ```
//! use rprism_lang::parser::parse_program;
//! use rprism_trace::TraceMeta;
//! use rprism_vm::{run_traced, VmConfig};
//!
//! let program = parse_program(
//!     "class Counter extends Object {
//!          Int count;
//!          Int bump(Int by) { this.count = this.count + by; return this.count; }
//!      }
//!      main { let c = new Counter(0); c.bump(2); }",
//! )?;
//! let outcome = run_traced(&program, TraceMeta::new("demo", "v1", "t1"), VmConfig::default())?;
//! assert!(outcome.succeeded());
//! assert!(outcome.trace.len() >= 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod error;
pub mod filter;
pub mod heap;
pub mod interp;
pub mod value;

pub use config::{RunStats, VmConfig};
pub use error::RuntimeError;
pub use filter::TraceFilter;
pub use interp::{run_traced, run_validated, sys_class_def, RunOutcome, SYS_CLASS};
pub use value::{PrimValue, Value};
