//! Property-based tests relating the three LCS implementations and the views-based
//! differencer on randomly generated inputs.

#![cfg(test)]

use proptest::prelude::*;

use crate::cost::{CostMeter, MemoryBudget};
use crate::lcs::{lcs_dp, lcs_hirschberg, lcs_length, lcs_optimized};

fn sequences() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    // Small alphabets create many repeated symbols — the hard case for correlation.
    (
        proptest::collection::vec(0u8..6, 0..60),
        proptest::collection::vec(0u8..6, 0..60),
    )
}

proptest! {
    /// All three LCS implementations agree on the subsequence length.
    #[test]
    fn lcs_variants_agree_on_length((left, right) in sequences()) {
        let mut m = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m, MemoryBudget::unlimited()).unwrap();
        let opt = lcs_optimized(&left, &right, &mut m, MemoryBudget::unlimited()).unwrap();
        let hir = lcs_hirschberg(&left, &right, &mut m);
        let len = lcs_length(&left, &right, &mut m);
        prop_assert_eq!(dp.len(), len);
        prop_assert_eq!(opt.len(), len);
        prop_assert_eq!(hir.len(), len);
    }

    /// Every matching produced is a valid common subsequence: strictly increasing on both
    /// sides and element-wise equal.
    #[test]
    fn lcs_matchings_are_valid_common_subsequences((left, right) in sequences()) {
        let mut m = CostMeter::new();
        for pairs in [
            lcs_dp(&left, &right, &mut m, MemoryBudget::unlimited()).unwrap(),
            lcs_optimized(&left, &right, &mut m, MemoryBudget::unlimited()).unwrap(),
            lcs_hirschberg(&left, &right, &mut m),
        ] {
            for w in pairs.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
                prop_assert!(w[0].1 < w[1].1);
            }
            for (i, j) in pairs {
                prop_assert_eq!(left[i], right[j]);
            }
        }
    }

    /// LCS length bounds: no longer than either input, and equal to the input length when
    /// diffing a sequence against itself.
    #[test]
    fn lcs_length_bounds((left, right) in sequences()) {
        let mut m = CostMeter::new();
        let len = lcs_length(&left, &right, &mut m);
        prop_assert!(len <= left.len() && len <= right.len());
        prop_assert_eq!(lcs_length(&left, &left, &mut m), left.len());
    }

    /// The prefix/suffix optimization never changes the result length relative to plain DP,
    /// and never performs more comparisons.
    #[test]
    fn optimization_is_sound_and_never_slower((shared, mid_l, mid_r) in (
        proptest::collection::vec(0u8..6, 0..20),
        proptest::collection::vec(0u8..6, 0..20),
        proptest::collection::vec(0u8..6, 0..20),
    )) {
        // Construct inputs with a guaranteed common prefix and suffix.
        let left: Vec<u8> = shared.iter().copied().chain(mid_l).chain(shared.iter().copied()).collect();
        let right: Vec<u8> = shared.iter().copied().chain(mid_r).chain(shared.iter().copied()).collect();
        let mut m_dp = CostMeter::new();
        let mut m_opt = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m_dp, MemoryBudget::unlimited()).unwrap();
        let opt = lcs_optimized(&left, &right, &mut m_opt, MemoryBudget::unlimited()).unwrap();
        prop_assert_eq!(dp.len(), opt.len());
        prop_assert!(m_opt.stats().compare_ops <= m_dp.stats().compare_ops + 2 * (left.len() as u64 + right.len() as u64));
    }
}
