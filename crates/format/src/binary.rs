//! The compact binary trace encoding (`.rtr`).
//!
//! # Layout
//!
//! ```text
//! header   ::= magic "RPTR" (4 bytes)
//!              version u16 LE        -- currently 1
//!              flags   u16 LE        -- reserved, must be 0
//!              meta                  -- 3 length-prefixed UTF-8 strings:
//!                                       name, program version, test case
//! records  ::= (sym | entry)* end
//! sym      ::= 0x01 varint(len) utf8-bytes      -- defines the next string id (0, 1, …)
//! entry    ::= 0x02 varint(tid) symid(method) objrep(active) event
//! end      ::= 0x03 varint(entry-count) checksum u64 LE
//! ```
//!
//! All integers are LEB128 varints (see [`crate::varint`]) except the fixed-width header
//! and checksum fields. Strings are deduplicated through a define-before-use symbol
//! table: the first record mentioning a string is preceded by a `sym` record, and every
//! mention is a varint id into the table. The writer keys its deduplication off the
//! process-global [`Interner`](mod@rprism_trace::intern), so repeated names cost one hash
//! lookup and one varint.
//!
//! ```text
//! objrep   ::= flags u8            -- bit0: has loc, bit1: has creation seq
//!              symid(class) varint(fingerprint) symid(printed) [varint(loc)] [varint(seq)]
//! event    ::= 0x01 objrep(target) symid(field)  objrep(value)          -- get
//!            | 0x02 objrep(target) symid(field)  objrep(value)          -- set
//!            | 0x03 objrep(target) symid(method) varint(argc) objrep*   -- call
//!            | 0x04 objrep(target) symid(method) objrep(value)          -- return
//!            | 0x05 symid(class)   varint(argc)  objrep* objrep(result) -- init
//!            | 0x06 varint(child)  varint(depth) snapshot*              -- fork
//!            | 0x07 snapshot                                            -- end
//! snapshot ::= varint(frames) (symid(method) objrep(caller) objrep(callee))*
//! ```
//!
//! Entry ids are implicit: the n-th `entry` record has id n, mirroring the [`Trace`](rprism_trace::Trace)
//! invariant that entry ids equal positions.
//!
//! # Integrity
//!
//! The footer carries the entry count and an FNV-1a 64 checksum of every preceding byte
//! (header included). The reader verifies the tag structure, string ids, UTF-8, varint
//! bounds, entry count, checksum, and that nothing follows the footer — any truncation
//! or single-byte damage surfaces as a structured [`FormatError`], never a panic and
//! never a silently different trace.

use std::io::{Read, Write};

use rprism_lang::{FieldName, MethodName};
use rprism_trace::{
    intern, Event, ObjRep, StackFrame, StackSnapshot, ThreadId, TraceEntry, TraceMeta,
    ValueFingerprint,
};
use rprism_trace::{CreationSeq, EntryId, Loc};

use crate::error::{FormatError, Result};
use crate::varint::{self, ByteSource};
use crate::TailEntry;

/// The four magic bytes opening every binary trace.
pub const MAGIC: [u8; 4] = *b"RPTR";

/// The newest binary format version this crate reads and writes.
pub const FORMAT_VERSION: u16 = 1;

const TAG_SYM: u8 = 0x01;
const TAG_ENTRY: u8 = 0x02;
const TAG_END: u8 = 0x03;

const KIND_GET: u8 = 0x01;
const KIND_SET: u8 = 0x02;
const KIND_CALL: u8 = 0x03;
const KIND_RETURN: u8 = 0x04;
const KIND_INIT: u8 = 0x05;
const KIND_FORK: u8 = 0x06;
const KIND_END: u8 = 0x07;

const OBJ_HAS_LOC: u8 = 0x01;
const OBJ_HAS_SEQ: u8 = 0x02;

/// FNV-1a 64 running checksum (deterministic across platforms and Rust versions, like
/// the fingerprint hash in `rprism-trace`). This is the integrity hash of the whole
/// format layer: the binary footer checksum, the per-frame checksum of the wire
/// protocol ([`crate::frame`]) and the content-addressing hash
/// ([`crate::content_hash`]) all run through it.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV-1a 64 offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The hash of everything fed so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Streaming writer of the binary encoding: entries go straight to the underlying
/// `Write`, one record at a time; memory use is bounded by the string table and one
/// record's scratch buffer.
pub struct BinaryTraceWriter<W: Write> {
    out: W,
    hash: Fnv64,
    /// Interner symbol index → file-local string id, the deduplication table.
    sym_to_id: Vec<Option<u32>>,
    next_string_id: u32,
    entries: u64,
    scratch: Vec<u8>,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts a binary trace stream by writing the header.
    pub fn new(out: W, meta: &TraceMeta) -> Result<Self> {
        let mut writer = BinaryTraceWriter {
            out,
            hash: Fnv64::new(),
            sym_to_id: Vec::new(),
            next_string_id: 0,
            entries: 0,
            scratch: Vec::new(),
        };
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        for s in [&meta.name, &meta.version, &meta.test_case] {
            varint::write_u64(&mut header, s.len() as u64);
            header.extend_from_slice(s.as_bytes());
        }
        writer.emit(&header)?;
        Ok(writer)
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<()> {
        self.hash.update(bytes);
        self.out.write_all(bytes)?;
        Ok(())
    }

    /// The file-local id of a string, defining it (one `sym` record) on first use.
    /// Deduplication goes through the process-global interner: one hash lookup per
    /// mention, then a dense-vector hit.
    fn string_id(&mut self, s: &str) -> Result<u64> {
        let sym = intern(s);
        let index = sym.index();
        if index >= self.sym_to_id.len() {
            self.sym_to_id.resize(index + 1, None);
        }
        if let Some(id) = self.sym_to_id[index] {
            return Ok(u64::from(id));
        }
        let id = self.next_string_id;
        self.next_string_id += 1;
        self.sym_to_id[index] = Some(id);
        let mut record = Vec::with_capacity(s.len() + 6);
        record.push(TAG_SYM);
        varint::write_u64(&mut record, s.len() as u64);
        record.extend_from_slice(s.as_bytes());
        self.emit(&record)?;
        Ok(u64::from(id))
    }

    fn put_objrep(&mut self, buf: &mut Vec<u8>, rep: &ObjRep) -> Result<()> {
        let mut flags = 0u8;
        if rep.loc.is_some() {
            flags |= OBJ_HAS_LOC;
        }
        if rep.creation_seq.is_some() {
            flags |= OBJ_HAS_SEQ;
        }
        buf.push(flags);
        let class = self.string_id(&rep.class)?;
        varint::write_u64(buf, class);
        varint::write_u64(buf, rep.fingerprint.0);
        let printed = self.string_id(&rep.printed)?;
        varint::write_u64(buf, printed);
        if let Some(Loc(loc)) = rep.loc {
            varint::write_u64(buf, loc);
        }
        if let Some(CreationSeq(seq)) = rep.creation_seq {
            varint::write_u64(buf, seq);
        }
        Ok(())
    }

    fn put_snapshot(&mut self, buf: &mut Vec<u8>, snapshot: &StackSnapshot) -> Result<()> {
        varint::write_u64(buf, snapshot.frames.len() as u64);
        for frame in &snapshot.frames {
            let method = self.string_id(frame.method.as_str())?;
            varint::write_u64(buf, method);
            self.put_objrep(buf, &frame.caller)?;
            self.put_objrep(buf, &frame.callee)?;
        }
        Ok(())
    }

    /// Appends one entry record. The entry's `eid` is ignored: ids are implicit in
    /// record order, exactly as [`Trace::push`](rprism_trace::Trace::push) assigns them.
    pub fn write_entry(&mut self, entry: &TraceEntry) -> Result<()> {
        // `string_id` emits `sym` records directly to the output, so the entry body is
        // staged in a scratch buffer and emitted after every definition it references.
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.push(TAG_ENTRY);
        varint::write_u64(&mut buf, entry.tid.0);
        let method = self.string_id(entry.method.as_str())?;
        varint::write_u64(&mut buf, method);
        self.put_objrep(&mut buf, &entry.active)?;
        match &entry.event {
            Event::Get {
                target,
                field,
                value,
            }
            | Event::Set {
                target,
                field,
                value,
            } => {
                buf.push(if matches!(entry.event, Event::Get { .. }) {
                    KIND_GET
                } else {
                    KIND_SET
                });
                self.put_objrep(&mut buf, target)?;
                let field = self.string_id(field.as_str())?;
                varint::write_u64(&mut buf, field);
                self.put_objrep(&mut buf, value)?;
            }
            Event::Call {
                target,
                method,
                args,
            } => {
                buf.push(KIND_CALL);
                self.put_objrep(&mut buf, target)?;
                let method = self.string_id(method.as_str())?;
                varint::write_u64(&mut buf, method);
                varint::write_u64(&mut buf, args.len() as u64);
                for arg in args {
                    self.put_objrep(&mut buf, arg)?;
                }
            }
            Event::Return {
                target,
                method,
                value,
            } => {
                buf.push(KIND_RETURN);
                self.put_objrep(&mut buf, target)?;
                let method = self.string_id(method.as_str())?;
                varint::write_u64(&mut buf, method);
                self.put_objrep(&mut buf, value)?;
            }
            Event::Init {
                class,
                args,
                result,
            } => {
                buf.push(KIND_INIT);
                let class = self.string_id(class)?;
                varint::write_u64(&mut buf, class);
                varint::write_u64(&mut buf, args.len() as u64);
                for arg in args {
                    self.put_objrep(&mut buf, arg)?;
                }
                self.put_objrep(&mut buf, result)?;
            }
            Event::Fork { child, parentage } => {
                buf.push(KIND_FORK);
                varint::write_u64(&mut buf, child.0);
                varint::write_u64(&mut buf, parentage.len() as u64);
                for snapshot in parentage {
                    self.put_snapshot(&mut buf, snapshot)?;
                }
            }
            Event::End { stack } => {
                buf.push(KIND_END);
                self.put_snapshot(&mut buf, stack)?;
            }
        }
        self.emit(&buf)?;
        self.scratch = buf;
        self.entries += 1;
        Ok(())
    }

    /// Writes the footer (entry count + checksum), flushes, and returns the underlying
    /// writer. A stream that is never finished is unreadable by design: the reader
    /// treats a missing footer as truncation.
    pub fn finish(mut self) -> Result<W> {
        let mut footer = vec![TAG_END];
        varint::write_u64(&mut footer, self.entries);
        self.emit(&footer)?;
        // The checksum covers every byte before itself; the field is excluded.
        let checksum = self.hash.finish();
        self.out.write_all(&checksum.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader of the binary encoding: one entry is decoded (and handed out) at a
/// time; memory use is bounded by the string table plus a single entry.
///
/// The string table is **file-local** (`Vec<Box<str>>`), deliberately not the
/// process-global interner: interned strings are leaked for the process lifetime, so
/// routing untrusted input through the interner would let a single adversarial or
/// corrupt file (whose checksum is only verified at the footer) permanently grow
/// process memory. Interning happens later, lazily, when a loaded trace is prepared
/// for analysis — at that point the trace has been fully validated.
pub struct BinaryTraceReader<R: Read> {
    input: R,
    offset: u64,
    hash: Fnv64,
    meta: TraceMeta,
    /// File-local string id → string (dropped with the reader).
    strings: Vec<Box<str>>,
    /// Lazily built per-id name values, so repeated mentions share one `Arc` each.
    methods: Vec<Option<MethodName>>,
    fields: Vec<Option<FieldName>>,
    entries_read: u64,
    done: bool,
    /// Bytes consumed from `input` since the last committed record boundary, retained
    /// so an incomplete record can be re-decoded after the source grows (a tailed file
    /// or a byte stream that ends mid-record is a *state*, not necessarily an error).
    replay: Vec<u8>,
    replay_pos: usize,
    /// Where the last incomplete read ran dry, for strict-mode truncation reports.
    dry_offset: u64,
}

/// Rollback point for one record decode: everything a partial decode may have mutated.
/// The replay buffer itself is not part of the checkpoint — restoring simply rewinds
/// `replay_pos` to serve the same bytes again.
#[derive(Clone, Copy)]
struct Checkpoint {
    offset: u64,
    hash: Fnv64,
    strings: usize,
    entries_read: u64,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a binary trace stream, parsing and validating the header.
    pub fn new(input: R) -> Result<Self> {
        let mut reader = BinaryTraceReader {
            input,
            offset: 0,
            hash: Fnv64::new(),
            meta: TraceMeta::default(),
            strings: Vec::new(),
            methods: Vec::new(),
            fields: Vec::new(),
            entries_read: 0,
            done: false,
            replay: Vec::new(),
            replay_pos: 0,
            dry_offset: 0,
        };
        let mut magic = [0u8; 4];
        reader.read_hashed(&mut magic)?;
        if magic != MAGIC {
            return Err(FormatError::BadMagic { found: magic });
        }
        let mut word = [0u8; 2];
        reader.read_hashed(&mut word)?;
        let version = u16::from_le_bytes(word);
        if version != FORMAT_VERSION {
            return Err(FormatError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        reader.read_hashed(&mut word)?;
        let flags = u16::from_le_bytes(word);
        if flags != 0 {
            return Err(FormatError::Corrupt {
                offset: 6,
                detail: format!("reserved header flags set ({flags:#06x})"),
            });
        }
        let name = reader.read_string()?;
        let version_label = reader.read_string()?;
        let test_case = reader.read_string()?;
        reader.meta = TraceMeta::new(name, version_label, test_case);
        reader.commit();
        Ok(reader)
    }

    /// The trace metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The next byte, served from the replay buffer first, then from the input (and
    /// recorded for replay). `None` means the input has no byte *right now* — a clean
    /// end for a complete stream, a wait state for a growing one.
    fn pull_byte(&mut self) -> Result<Option<u8>> {
        if self.replay_pos < self.replay.len() {
            let b = self.replay[self.replay_pos];
            self.replay_pos += 1;
            return Ok(Some(b));
        }
        let mut byte = [0u8; 1];
        loop {
            match self.input.read(&mut byte) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.replay.push(byte[0]);
                    self.replay_pos = self.replay.len();
                    return Ok(Some(byte[0]));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FormatError::Io(e)),
            }
        }
    }

    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            offset: self.offset,
            hash: self.hash,
            strings: self.strings.len(),
            entries_read: self.entries_read,
        }
    }

    /// Rewinds to `cp`: decode state rolls back and the bytes consumed since then are
    /// queued for replay on the next attempt.
    fn restore(&mut self, cp: Checkpoint) {
        self.offset = cp.offset;
        self.hash = cp.hash;
        self.strings.truncate(cp.strings);
        self.methods.truncate(cp.strings);
        self.fields.truncate(cp.strings);
        self.entries_read = cp.entries_read;
        self.replay_pos = 0;
    }

    /// Declares every replayed byte consumed for good: the stream is at a record
    /// boundary and this record can never be re-decoded.
    fn commit(&mut self) {
        self.replay.drain(..self.replay_pos);
        self.replay_pos = 0;
    }

    /// Reads exactly `buf.len()` bytes, feeding them into the running checksum.
    fn read_hashed(&mut self, buf: &mut [u8]) -> Result<()> {
        self.read_raw(buf)?;
        self.hash.update(buf);
        Ok(())
    }

    fn read_raw(&mut self, buf: &mut [u8]) -> Result<()> {
        for slot in buf.iter_mut() {
            let Some(b) = self.pull_byte()? else {
                return Err(FormatError::Truncated { offset: self.offset });
            };
            *slot = b;
            self.offset += 1;
        }
        Ok(())
    }

    /// Reads one byte, or `None` at a clean end of input.
    fn read_optional_byte(&mut self) -> Result<Option<u8>> {
        match self.pull_byte()? {
            Some(b) => {
                self.offset += 1;
                self.hash.update(&[b]);
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    fn read_varint(&mut self) -> Result<u64> {
        varint::read_u64(self)
    }

    /// Reads a length-prefixed UTF-8 string. Bytes arrive through the bounded
    /// byte-at-a-time path, so a forged length cannot trigger a huge allocation: the
    /// stream runs out first and reports truncation.
    fn read_string(&mut self) -> Result<String> {
        let start = self.offset;
        let len = self.read_varint()?;
        let mut bytes = Vec::new();
        for _ in 0..len {
            let Some(b) = self.read_optional_byte()? else {
                return Err(FormatError::Truncated { offset: self.offset });
            };
            bytes.push(b);
        }
        String::from_utf8(bytes).map_err(|_| FormatError::Corrupt {
            offset: start,
            detail: "string is not valid UTF-8".into(),
        })
    }

    /// Validates a string id against the table, returning the index.
    fn lookup(&self, id: u64) -> Result<usize> {
        let index = usize::try_from(id).unwrap_or(usize::MAX);
        if index < self.strings.len() {
            Ok(index)
        } else {
            Err(FormatError::Corrupt {
                offset: self.offset,
                detail: format!(
                    "string id {id} out of range (table has {} entries)",
                    self.strings.len()
                ),
            })
        }
    }

    fn lookup_str(&self, id: u64) -> Result<&str> {
        Ok(&self.strings[self.lookup(id)?])
    }

    fn method_name(&mut self, id: u64) -> Result<MethodName> {
        let index = self.lookup(id)?;
        let strings = &self.strings;
        Ok(self.methods[index]
            .get_or_insert_with(|| MethodName::new(&strings[index]))
            .clone())
    }

    fn field_name(&mut self, id: u64) -> Result<FieldName> {
        let index = self.lookup(id)?;
        let strings = &self.strings;
        Ok(self.fields[index]
            .get_or_insert_with(|| FieldName::new(&strings[index]))
            .clone())
    }

    fn read_objrep(&mut self) -> Result<ObjRep> {
        let start = self.offset;
        let Some(flags) = self.read_optional_byte()? else {
            return Err(FormatError::Truncated { offset: self.offset });
        };
        if flags & !(OBJ_HAS_LOC | OBJ_HAS_SEQ) != 0 {
            return Err(FormatError::Corrupt {
                offset: start,
                detail: format!("unknown object representation flags {flags:#04x}"),
            });
        }
        let class_id = self.read_varint()?;
        let class = self.lookup_str(class_id)?.to_owned();
        let fingerprint = ValueFingerprint(self.read_varint()?);
        let printed_id = self.read_varint()?;
        let printed = self.lookup_str(printed_id)?.to_owned();
        let loc = if flags & OBJ_HAS_LOC != 0 {
            Some(Loc(self.read_varint()?))
        } else {
            None
        };
        let creation_seq = if flags & OBJ_HAS_SEQ != 0 {
            Some(CreationSeq(self.read_varint()?))
        } else {
            None
        };
        Ok(ObjRep {
            loc,
            class,
            fingerprint,
            printed,
            creation_seq,
        })
    }

    fn read_snapshot(&mut self) -> Result<StackSnapshot> {
        let count = self.read_varint()?;
        let mut frames = Vec::new();
        for _ in 0..count {
            let method = self.read_varint()?;
            let method = self.method_name(method)?;
            let caller = self.read_objrep()?;
            let callee = self.read_objrep()?;
            frames.push(StackFrame::new(method, caller, callee));
        }
        Ok(StackSnapshot::new(frames))
    }

    fn read_event(&mut self) -> Result<Event> {
        let start = self.offset;
        let Some(kind) = self.read_optional_byte()? else {
            return Err(FormatError::Truncated { offset: self.offset });
        };
        Ok(match kind {
            KIND_GET | KIND_SET => {
                let target = self.read_objrep()?;
                let field = self.read_varint()?;
                let field = self.field_name(field)?;
                let value = self.read_objrep()?;
                if kind == KIND_GET {
                    Event::Get {
                        target,
                        field,
                        value,
                    }
                } else {
                    Event::Set {
                        target,
                        field,
                        value,
                    }
                }
            }
            KIND_CALL => {
                let target = self.read_objrep()?;
                let method = self.read_varint()?;
                let method = self.method_name(method)?;
                let argc = self.read_varint()?;
                let mut args = Vec::new();
                for _ in 0..argc {
                    args.push(self.read_objrep()?);
                }
                Event::Call {
                    target,
                    method,
                    args,
                }
            }
            KIND_RETURN => {
                let target = self.read_objrep()?;
                let method = self.read_varint()?;
                let method = self.method_name(method)?;
                let value = self.read_objrep()?;
                Event::Return {
                    target,
                    method,
                    value,
                }
            }
            KIND_INIT => {
                let class = self.read_varint()?;
                let class = self.lookup_str(class)?.to_owned();
                let argc = self.read_varint()?;
                let mut args = Vec::new();
                for _ in 0..argc {
                    args.push(self.read_objrep()?);
                }
                let result = self.read_objrep()?;
                Event::Init {
                    class,
                    args,
                    result,
                }
            }
            KIND_FORK => {
                let child = ThreadId(self.read_varint()?);
                let depth = self.read_varint()?;
                let mut parentage = Vec::new();
                for _ in 0..depth {
                    parentage.push(self.read_snapshot()?);
                }
                Event::Fork { child, parentage }
            }
            KIND_END => Event::End {
                stack: self.read_snapshot()?,
            },
            other => {
                return Err(FormatError::Corrupt {
                    offset: start,
                    detail: format!("unknown event kind {other:#04x}"),
                })
            }
        })
    }

    fn read_footer(&mut self) -> Result<()> {
        let footer_offset = self.offset - 1;
        let declared = self.read_varint()?;
        if declared != self.entries_read {
            return Err(FormatError::Corrupt {
                offset: footer_offset,
                detail: format!(
                    "footer declares {declared} entries but {} were read",
                    self.entries_read
                ),
            });
        }
        // Snapshot the running hash before consuming the (unhashed) checksum field.
        let computed = self.hash.finish();
        let mut checksum = [0u8; 8];
        self.read_raw(&mut checksum)?;
        let expected = u64::from_le_bytes(checksum);
        if expected != computed {
            return Err(FormatError::ChecksumMismatch {
                expected,
                found: computed,
            });
        }
        if self.read_optional_byte()?.is_some() {
            return Err(FormatError::Corrupt {
                offset: self.offset - 1,
                detail: "trailing bytes after the trace footer".into(),
            });
        }
        self.done = true;
        Ok(())
    }

    /// Decodes one record starting at the current boundary. `Ok(None)` means no tag
    /// byte is available right now.
    fn read_record(&mut self) -> Result<Option<Record>> {
        let Some(tag) = self.read_optional_byte()? else {
            return Ok(None);
        };
        match tag {
            TAG_SYM => {
                let s = self.read_string()?;
                self.strings.push(s.into_boxed_str());
                self.methods.push(None);
                self.fields.push(None);
                Ok(Some(Record::Sym))
            }
            TAG_ENTRY => {
                let tid = ThreadId(self.read_varint()?);
                let method = self.read_varint()?;
                let method = self.method_name(method)?;
                let active = self.read_objrep()?;
                let event = self.read_event()?;
                let eid = EntryId(self.entries_read);
                self.entries_read += 1;
                Ok(Some(Record::Entry(TraceEntry::new(
                    eid, tid, method, active, event,
                ))))
            }
            TAG_END => {
                self.read_footer()?;
                Ok(Some(Record::End))
            }
            other => Err(FormatError::Corrupt {
                offset: self.offset - 1,
                detail: format!("unknown record tag {other:#04x}"),
            }),
        }
    }

    /// Decodes the next entry, treating a stream that currently ends mid-record (or at
    /// a record boundary without a footer) as the resumable [`TailEntry::Pending`]
    /// state: the partial record's bytes are retained and re-decoded on the next call,
    /// so the reader keeps working once the underlying source has grown. Corruption
    /// (bad tags, checksum mismatches, invalid ids) remains a hard error.
    pub fn next_entry_tail(&mut self) -> Result<TailEntry> {
        if self.done {
            return Ok(TailEntry::End);
        }
        loop {
            let cp = self.checkpoint();
            match self.read_record() {
                Ok(Some(Record::Sym)) => self.commit(),
                Ok(Some(Record::Entry(entry))) => {
                    self.commit();
                    return Ok(TailEntry::Entry(entry));
                }
                Ok(Some(Record::End)) => {
                    self.commit();
                    return Ok(TailEntry::End);
                }
                Ok(None) => {
                    self.dry_offset = self.offset;
                    self.restore(cp);
                    return Ok(TailEntry::Pending);
                }
                Err(FormatError::Truncated { offset }) => {
                    self.dry_offset = offset;
                    self.restore(cp);
                    return Ok(TailEntry::Pending);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Decodes the next entry, or returns `Ok(None)` after a verified footer.
    ///
    /// The entry's id is its position in the stream, matching the
    /// [`Trace`](rprism_trace::Trace) invariant. A stream that ends without a verified
    /// footer reports [`FormatError::Truncated`] — but the reader is *not* poisoned:
    /// the incomplete record's bytes are retained, so calling again after the
    /// underlying source has grown resumes cleanly (see [`Self::next_entry_tail`]).
    pub fn next_entry(&mut self) -> Result<Option<TraceEntry>> {
        match self.next_entry_tail()? {
            TailEntry::Entry(entry) => Ok(Some(entry)),
            TailEntry::End => Ok(None),
            TailEntry::Pending => Err(FormatError::Truncated {
                offset: self.dry_offset,
            }),
        }
    }
}

/// One decoded record of the binary stream (see [`BinaryTraceReader::read_record`]).
// The Entry payload is moved straight out to the caller; boxing it would cost an
// allocation per decoded entry on the ingest hot path.
#[allow(clippy::large_enum_variant)]
enum Record {
    Sym,
    Entry(TraceEntry),
    End,
}

impl<R: Read> ByteSource for BinaryTraceReader<R> {
    fn next_byte(&mut self) -> Result<Option<u8>> {
        self.read_optional_byte()
    }

    fn offset(&self) -> u64 {
        self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_trace::testgen::{arbitrary_entry, Rng};
    use rprism_trace::Trace;

    fn sample_trace(seed: u64, len: usize) -> Trace {
        let mut rng = Rng::new(seed);
        let mut t = Trace::new(TraceMeta::new("sample", "v1", "t1"));
        for _ in 0..len {
            t.push(arbitrary_entry(&mut rng));
        }
        t
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut w = BinaryTraceWriter::new(Vec::new(), &trace.meta).unwrap();
        for entry in trace {
            w.write_entry(entry).unwrap();
        }
        w.finish().unwrap()
    }

    fn decode(bytes: &[u8]) -> Result<Trace> {
        let mut r = BinaryTraceReader::new(bytes)?;
        let mut trace = Trace::new(r.meta().clone());
        while let Some(entry) = r.next_entry()? {
            trace.push(entry);
        }
        Ok(trace)
    }

    #[test]
    fn round_trips_structurally() {
        let trace = sample_trace(11, 200);
        let decoded = decode(&encode(&trace)).unwrap();
        assert_eq!(trace, decoded);
    }

    #[test]
    fn re_encoding_is_byte_stable() {
        let trace = sample_trace(23, 150);
        let bytes = encode(&trace);
        let again = encode(&decode(&bytes).unwrap());
        assert_eq!(bytes, again);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new(TraceMeta::new("empty", "", ""));
        let decoded = decode(&encode(&trace)).unwrap();
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.meta, trace.meta);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample_trace(1, 3));
        bytes[0] = b'X';
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            FormatError::BadMagic { .. }
        ));
    }

    #[test]
    fn future_version_is_rejected_cleanly() {
        let mut bytes = encode(&sample_trace(1, 3));
        bytes[4] = 0x2a; // version 42
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            FormatError::UnsupportedVersion { found: 42, .. }
        ));
    }

    #[test]
    fn reserved_flags_are_rejected() {
        let mut bytes = encode(&sample_trace(1, 3));
        bytes[6] = 0x01;
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            FormatError::Corrupt { .. }
        ));
    }

    #[test]
    fn missing_footer_is_truncation() {
        let bytes = encode(&sample_trace(5, 10));
        // Drop the footer (tag + count + checksum = at least 10 bytes).
        let cut = &bytes[..bytes.len() - 10];
        assert!(matches!(
            decode(cut).unwrap_err(),
            FormatError::Truncated { .. } | FormatError::Corrupt { .. }
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sample_trace(5, 10));
        bytes.push(0x00);
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            FormatError::Corrupt { .. }
        ));
    }

    #[test]
    fn entry_ids_are_positions() {
        let trace = sample_trace(7, 25);
        let decoded = decode(&encode(&trace)).unwrap();
        for (i, e) in decoded.iter().enumerate() {
            assert_eq!(e.eid.index(), i);
        }
    }
}
