//! Benchmark: cost of the views-based differencer under different exploration parameters
//! (Δ radius, δ window, relaxed correlation) — the performance side of the ablation
//! binary. `harness = false` with a built-in measurement loop (see `diff_scaling.rs` for
//! the measurement conventions).
//!
//! Run with `cargo bench -p rprism-bench --bench views_ablation`.

use std::time::Instant;

use rprism_bench::measure::{sample_env, summarize};
use rprism_diff::{views_diff, ViewsDiffOptions};
use rprism_trace::Trace;
use rprism_workloads::{generate_bug, RhinoConfig};

fn scenario_traces() -> (Trace, Trace) {
    let bug = generate_bug(&RhinoConfig {
        seed: 7,
        modules: 5,
        script_length: 30,
        max_injection_attempts: 40,
    })
    .expect("seed 7 yields a bug");
    let traces = bug.scenario.trace_all().expect("traces");
    (traces.traces.old_regressing, traces.traces.new_regressing)
}

fn main() {
    let samples = sample_env(10);
    let (old, new) = scenario_traces();
    println!(
        "views_ablation — {samples} samples per configuration, traces {} / {} entries\n",
        old.len(),
        new.len()
    );

    let configs: Vec<(&str, ViewsDiffOptions)> = vec![
        ("default", ViewsDiffOptions::default()),
        (
            "no_secondary",
            ViewsDiffOptions {
                delta: 0,
                window: 0,
                ..ViewsDiffOptions::default()
            },
        ),
        (
            "wide",
            ViewsDiffOptions {
                delta: 4,
                window: 16,
                ..ViewsDiffOptions::default()
            },
        ),
        (
            "strict_correlation",
            ViewsDiffOptions {
                relaxed_correlation: false,
                ..ViewsDiffOptions::default()
            },
        ),
        (
            "sequential",
            ViewsDiffOptions {
                parallel: false,
                ..ViewsDiffOptions::default()
            },
        ),
    ];
    for (label, options) in configs {
        // Warmup.
        let _ = views_diff(&old, &new, &options);
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            let r = views_diff(&old, &new, &options);
            std::hint::black_box(&r);
            times.push(start.elapsed());
        }
        println!("{}", summarize(label, old.len(), times));
    }
}
