//! Length-prefixed checksummed frames — the unit of the `rprism-server` wire protocol.
//!
//! A frame is the smallest self-delimiting, self-verifying chunk of a byte stream:
//!
//! ```text
//! frame ::= varint(payload-len) payload-bytes checksum u64 LE
//! ```
//!
//! The length prefix is a canonical LEB128 varint ([`crate::varint`]) and the checksum
//! is the FNV-1a 64 ([`Fnv64`]) of the payload bytes — the same integer encoding and
//! the same hash the binary trace encoding uses, so a stack that already speaks `.rtr`
//! files needs no new primitives to speak the wire.
//!
//! Reading is **bounded and structured**: the caller supplies the maximum payload
//! length it is willing to buffer, a declared length beyond it is rejected *before*
//! any allocation ([`FormatError::Corrupt`]), a stream that ends mid-frame reports
//! [`FormatError::Truncated`], and a checksum mismatch reports
//! [`FormatError::ChecksumMismatch`]. A clean end of stream *between* frames returns
//! `Ok(None)`, so connection teardown is distinguishable from damage.

use std::io::{Read, Write};

use crate::binary::Fnv64;
use crate::error::{FormatError, Result};
use crate::varint;

/// A sane default bound on a single frame's payload (64 MiB): large enough for any
/// realistic serialized trace upload, small enough that a forged length prefix cannot
/// take the process down.
pub const DEFAULT_MAX_PAYLOAD: u64 = 64 * 1024 * 1024;

/// Writes one frame (length prefix, payload, FNV-64 checksum) and flushes.
pub fn write_frame(out: &mut impl Write, payload: &[u8]) -> Result<()> {
    let mut prefix = Vec::with_capacity(10);
    varint::write_u64(&mut prefix, payload.len() as u64);
    let mut hash = Fnv64::new();
    hash.update(payload);
    out.write_all(&prefix)?;
    out.write_all(payload)?;
    out.write_all(&hash.finish().to_le_bytes())?;
    out.flush()?;
    Ok(())
}

/// The serialized bytes of one frame, for callers that assemble a message before
/// handing it to a socket in a single write.
pub fn frame_to_bytes(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + 18);
    varint::write_u64(&mut bytes, payload.len() as u64);
    bytes.extend_from_slice(payload);
    let mut hash = Fnv64::new();
    hash.update(payload);
    bytes.extend_from_slice(&hash.finish().to_le_bytes());
    bytes
}

/// Reads one frame's payload, or `Ok(None)` at a clean end of stream (end of input
/// *before* the first length byte).
///
/// # Errors
///
/// * [`FormatError::Corrupt`] — the declared payload length exceeds `max_payload`
///   (rejected before allocating), or the length prefix is a non-canonical varint;
/// * [`FormatError::Truncated`] — the stream ends inside the frame;
/// * [`FormatError::ChecksumMismatch`] — the payload bytes do not hash to the trailing
///   checksum.
pub fn read_frame(input: &mut impl Read, max_payload: u64) -> Result<Option<Vec<u8>>> {
    // Read the length prefix byte by byte; a clean EOF on the very first byte is the
    // normal end of a frame stream.
    let (len, prefix_len) = {
        let mut source = ReaderSource {
            input,
            offset: 0,
            eof_before_any: false,
        };
        let len = match varint::read_u64(&mut source) {
            Ok(len) => len,
            Err(FormatError::Truncated { .. }) if source.eof_before_any => return Ok(None),
            Err(e) => return Err(e),
        };
        (len, source.offset)
    };
    if len > max_payload {
        return Err(FormatError::Corrupt {
            offset: 0,
            detail: format!("frame payload of {len} bytes exceeds the {max_payload}-byte limit"),
        });
    }
    let mut payload = vec![0u8; usize::try_from(len).expect("bounded by max_payload")];
    read_exact(input, &mut payload, prefix_len)?;
    let mut checksum = [0u8; 8];
    read_exact(input, &mut checksum, prefix_len + len)?;
    let expected = u64::from_le_bytes(checksum);
    let mut hash = Fnv64::new();
    hash.update(&payload);
    let found = hash.finish();
    if expected != found {
        return Err(FormatError::ChecksumMismatch { expected, found });
    }
    Ok(Some(payload))
}

struct ReaderSource<'a, R: Read> {
    input: &'a mut R,
    offset: u64,
    /// Set when end of input arrived before any byte of the length prefix — the clean
    /// "no more frames" condition.
    eof_before_any: bool,
}

impl<R: Read> varint::ByteSource for ReaderSource<'_, R> {
    fn next_byte(&mut self) -> Result<Option<u8>> {
        let mut byte = [0u8; 1];
        loop {
            match self.input.read(&mut byte) {
                Ok(0) => {
                    self.eof_before_any = self.offset == 0;
                    return Ok(None);
                }
                Ok(_) => {
                    self.offset += 1;
                    return Ok(Some(byte[0]));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FormatError::Io(e)),
            }
        }
    }

    fn offset(&self) -> u64 {
        self.offset
    }
}

fn read_exact(input: &mut impl Read, buf: &mut [u8], base: u64) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FormatError::Truncated {
                    offset: base + filled as u64,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FormatError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut stream = Vec::new();
        let payloads: [&[u8]; 3] = [b"first", b"", b"a longer third frame payload"];
        for payload in payloads {
            write_frame(&mut stream, payload).unwrap();
        }
        let mut input = stream.as_slice();
        for payload in payloads {
            assert_eq!(read_frame(&mut input, 1024).unwrap().unwrap(), payload);
        }
        assert!(read_frame(&mut input, 1024).unwrap().is_none());
    }

    #[test]
    fn frame_to_bytes_matches_write_frame() {
        let mut streamed = Vec::new();
        write_frame(&mut streamed, b"payload").unwrap();
        assert_eq!(streamed, frame_to_bytes(b"payload"));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, u64::MAX);
        let err = read_frame(&mut bytes.as_slice(), 1024).unwrap_err();
        assert!(matches!(err, FormatError::Corrupt { .. }));
    }

    #[test]
    fn corrupt_payload_is_a_checksum_mismatch() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"some payload").unwrap();
        let flip = stream.len() / 2;
        stream[flip] ^= 0x40;
        let err = read_frame(&mut stream.as_slice(), 1024).unwrap_err();
        assert!(matches!(
            err,
            FormatError::ChecksumMismatch { .. } | FormatError::Corrupt { .. }
        ));
    }

    #[test]
    fn truncation_anywhere_inside_a_frame_is_an_error_not_a_hang() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"truncate me").unwrap();
        for cut in 1..stream.len() {
            let err = read_frame(&mut &stream[..cut], 1024).unwrap_err();
            assert!(
                matches!(err, FormatError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }
}
