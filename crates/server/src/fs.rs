//! The repository's narrow filesystem seam: every disk operation [`TraceRepo`]
//! performs goes through [`RepoFs`], so the chaos suites can interpose deterministic
//! faults (torn writes, failed fsyncs, un-renameable staging files) at each one —
//! the kill-point sweep in `tests/chaos.rs` "crashes" a put at every site and proves
//! the restart invariants.
//!
//! [`StdFs`] is the production implementation (plain `std::fs` plus real `fsync`);
//! [`FaultyFs`] wraps any implementation with a [`FaultPlan`] consulted once per
//! operation, under these site names:
//!
//! | site           | operation                                           |
//! |----------------|-----------------------------------------------------|
//! | `fs:write`     | create + write of a staging file                    |
//! | `fs:sync_file` | fsync of a written file                             |
//! | `fs:rename`    | atomic rename (staging → blob, blob → quarantine)   |
//! | `fs:sync_dir`  | fsync of the repository directory                   |
//! | `fs:remove`    | unlink                                              |
//! | `fs:open`      | open-for-read of a blob                             |
//!
//! A [`Fault::Short`] on `fs:write` leaves a *partial file on disk* and reports
//! failure — the torn-write shape a real crash produces; everything else maps the
//! fault to a plain `io::Error`.
//!
//! [`TraceRepo`]: crate::TraceRepo

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use rprism_format::fault::{Fault, FaultPlan};

/// The filesystem operations a [`TraceRepo`](crate::TraceRepo) performs, as a trait
/// object so storage faults can be injected in tests (see the module docs).
pub trait RepoFs: Send + Sync + std::fmt::Debug {
    /// Creates (or truncates) `path` and writes `bytes` to it. Durability is *not*
    /// implied — pair with [`RepoFs::sync_file`].
    fn write_all(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;

    /// Flushes `path`'s data and metadata to stable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> std::io::Result<()>;

    /// Flushes the directory entry table of `dir` to stable storage — the second
    /// half of a durable rename-commit (the rename itself lives in the directory).
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;

    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Unlinks `path`.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;

    /// Creates `dir` (and parents) if missing.
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()>;

    /// Opens `path` for streaming reads.
    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn Read + Send>>;

    /// The byte length of `path`.
    fn len(&self, path: &Path) -> std::io::Result<u64>;

    /// Reads all of `path` into memory.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.open_read(path)?.read_to_end(&mut out)?;
        Ok(out)
    }
}

/// The production [`RepoFs`]: plain `std::fs` with real `fsync` durability.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdFs;

impl RepoFs for StdFs {
    fn write_all(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(bytes)?;
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        // Directories are opened read-only for fsync; on platforms where that is not
        // supported (Windows), the open itself fails and the caller treats the commit
        // as best-effort.
        match File::open(dir) {
            Ok(handle) => handle.sync_all(),
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(File::open(path)?))
    }

    fn len(&self, path: &Path) -> std::io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

/// A fault-injecting [`RepoFs`] decorator for the chaos suites (see the module docs).
#[derive(Debug)]
pub struct FaultyFs<F = StdFs> {
    inner: F,
    plan: FaultPlan,
}

impl<F: RepoFs> FaultyFs<F> {
    /// Wraps `inner`; every operation consults `plan` at its site.
    pub fn new(inner: F, plan: FaultPlan) -> Self {
        FaultyFs { inner, plan }
    }

    /// The plan this filesystem consults.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Maps a scheduled fault to the `io::Error` the operation reports, or `None`
    /// to let the operation proceed. `Short` is handled by the callers that can
    /// meaningfully truncate (writes).
    fn gate(&self, site: &str) -> std::io::Result<Option<Fault>> {
        match self.plan.next(site) {
            None => Ok(None),
            Some(Fault::Error(kind)) => Err(std::io::Error::new(kind, "injected fault")),
            Some(Fault::Interrupt) => Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected fault",
            )),
            Some(Fault::WouldBlock) => Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "injected fault",
            )),
            Some(other) => Ok(Some(other)),
        }
    }
}

impl<F: RepoFs> RepoFs for FaultyFs<F> {
    fn write_all(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match self.gate("fs:write")? {
            Some(Fault::Short(n)) => {
                // The torn write: part of the data reaches disk, then the "machine
                // dies" — the file exists, truncated, and the operation fails.
                self.inner.write_all(path, &bytes[..n.min(bytes.len())])?;
                Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected torn write",
                ))
            }
            Some(Fault::Corrupt { index, mask }) if !bytes.is_empty() => {
                // Silent in-flight corruption: the write "succeeds" but one byte
                // lands flipped.
                let mut corrupted = bytes.to_vec();
                let at = index % corrupted.len();
                corrupted[at] ^= mask;
                self.inner.write_all(path, &corrupted)
            }
            _ => self.inner.write_all(path, bytes),
        }
    }

    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        self.gate("fs:sync_file")?;
        self.inner.sync_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.gate("fs:sync_dir")?;
        self.inner.sync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.gate("fs:rename")?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        self.gate("fs:remove")?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn Read + Send>> {
        self.gate("fs:open")?;
        self.inner.open_read(path)
    }

    fn len(&self, path: &Path) -> std::io::Result<u64> {
        self.inner.len(path)
    }
}
