//! The object store `E` of the dynamic semantics, plus trace-representation building.
//!
//! Besides mapping locations to objects, the heap assigns every object its per-class
//! creation sequence number and builds the [`ObjRep`]s / [`ValueRepr`]s (`E'#` of Fig. 8)
//! that get embedded in trace entries.

use std::collections::{HashMap, HashSet};

use rprism_lang::{ClassName, FieldName};
use rprism_trace::{CreationSeq, Loc, ObjRep, ValueRepr};

use crate::error::RuntimeError;
use crate::value::Value;

/// A heap object: its dynamic class, its fields, and its creation sequence number.
#[derive(Clone, Debug)]
pub struct HeapObject {
    /// The dynamic class of the object.
    pub class: ClassName,
    /// Field values, in `fields(C)` declaration order.
    pub fields: Vec<(FieldName, Value)>,
    /// The per-class creation sequence number of this object.
    pub creation_seq: CreationSeq,
}

impl HeapObject {
    /// Reads a field value.
    pub fn field(&self, name: &FieldName) -> Option<&Value> {
        self.fields.iter().find(|(f, _)| f == name).map(|(_, v)| v)
    }

    /// Writes a field value, returning `false` when the field does not exist.
    pub fn set_field(&mut self, name: &FieldName, value: Value) -> bool {
        if let Some(slot) = self.fields.iter_mut().find(|(f, _)| f == name) {
            slot.1 = value;
            true
        } else {
            false
        }
    }
}

/// The object store.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    objects: Vec<HeapObject>,
    creation_counters: HashMap<ClassName, u64>,
    /// Classes whose value representations are forced to be opaque (the "default
    /// hashCode/toString" objects of §5).
    opaque_classes: HashSet<ClassName>,
    /// Maximum recursion depth when serializing object graphs.
    repr_depth: usize,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new(opaque_classes: HashSet<ClassName>, repr_depth: usize) -> Self {
        Heap {
            objects: Vec::new(),
            creation_counters: HashMap::new(),
            opaque_classes,
            repr_depth: repr_depth.max(1),
        }
    }

    /// Number of allocated objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates a new object of `class` with the given ordered field values and returns
    /// its location.
    pub fn allocate(&mut self, class: ClassName, fields: Vec<(FieldName, Value)>) -> Loc {
        let counter = self.creation_counters.entry(class.clone()).or_insert(0);
        let seq = CreationSeq(*counter);
        *counter += 1;
        let loc = Loc(self.objects.len() as u64);
        self.objects.push(HeapObject {
            class,
            fields,
            creation_seq: seq,
        });
        loc
    }

    /// Returns the object at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if the location was not produced by [`Heap::allocate`] on this heap —
    /// impossible for locations flowing through the interpreter.
    pub fn object(&self, loc: Loc) -> &HeapObject {
        &self.objects[loc.0 as usize]
    }

    /// Mutable access to the object at `loc`.
    pub fn object_mut(&mut self, loc: Loc) -> &mut HeapObject {
        &mut self.objects[loc.0 as usize]
    }

    /// Reads `target.field`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownField`] when the object has no such field.
    pub fn read_field(&self, loc: Loc, field: &FieldName) -> Result<Value, RuntimeError> {
        let obj = self.object(loc);
        obj.field(field).cloned().ok_or_else(|| RuntimeError::UnknownField {
            class: obj.class.as_str().to_owned(),
            field: field.as_str().to_owned(),
        })
    }

    /// Writes `target.field = value`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownField`] when the object has no such field.
    pub fn write_field(
        &mut self,
        loc: Loc,
        field: &FieldName,
        value: Value,
    ) -> Result<(), RuntimeError> {
        let obj = self.object_mut(loc);
        if obj.set_field(field, value) {
            Ok(())
        } else {
            Err(RuntimeError::UnknownField {
                class: obj.class.as_str().to_owned(),
                field: field.as_str().to_owned(),
            })
        }
    }

    /// Builds the recursive value serialization (`E'#`) of a runtime value, bounded by the
    /// configured depth and protected against reference cycles.
    pub fn value_repr(&self, value: &Value) -> ValueRepr {
        let mut visited = HashSet::new();
        self.value_repr_rec(value, self.repr_depth, &mut visited)
    }

    fn value_repr_rec(&self, value: &Value, depth: usize, visited: &mut HashSet<Loc>) -> ValueRepr {
        match value {
            Value::Null => ValueRepr::Null,
            Value::Prim(p) => ValueRepr::Prim {
                type_name: p.prim_type().name().to_owned(),
                printed: p.printed(),
            },
            Value::Ref { loc, class } => {
                if self.opaque_classes.contains(class) {
                    return ValueRepr::Opaque;
                }
                if depth == 0 || visited.contains(loc) {
                    return ValueRepr::Truncated;
                }
                visited.insert(*loc);
                let obj = self.object(*loc);
                let fields = obj
                    .fields
                    .iter()
                    .map(|(_, v)| self.value_repr_rec(v, depth - 1, visited))
                    .collect();
                visited.remove(loc);
                ValueRepr::Object {
                    class: class.as_str().to_owned(),
                    fields,
                }
            }
        }
    }

    /// Builds the trace object representation of a runtime value (the `E'#` projection
    /// plus class and creation-sequence metadata).
    pub fn obj_rep(&self, value: &Value) -> ObjRep {
        match value {
            Value::Null => ObjRep::null(),
            Value::Prim(p) => ObjRep::prim(p.prim_type().name(), p.printed()),
            Value::Ref { loc, class } => {
                let seq = self.object(*loc).creation_seq;
                if self.opaque_classes.contains(class) {
                    ObjRep::opaque_object(*loc, class.as_str(), seq)
                } else {
                    let repr = self.value_repr(value);
                    ObjRep::object(*loc, class.as_str(), seq, &repr)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::PrimValue;

    fn int(v: i64) -> Value {
        Value::Prim(PrimValue::Int(v))
    }

    fn heap() -> Heap {
        Heap::new(HashSet::new(), 4)
    }

    #[test]
    fn allocation_assigns_per_class_sequence_numbers() {
        let mut h = heap();
        let a1 = h.allocate(ClassName::new("A"), vec![]);
        let _b1 = h.allocate(ClassName::new("B"), vec![]);
        let a2 = h.allocate(ClassName::new("A"), vec![]);
        assert_eq!(h.object(a1).creation_seq, CreationSeq(0));
        assert_eq!(h.object(a2).creation_seq, CreationSeq(1));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn field_read_write_round_trip() {
        let mut h = heap();
        let loc = h.allocate(
            ClassName::new("Counter"),
            vec![(FieldName::new("count"), int(0))],
        );
        assert_eq!(h.read_field(loc, &FieldName::new("count")).unwrap(), int(0));
        h.write_field(loc, &FieldName::new("count"), int(7)).unwrap();
        assert_eq!(h.read_field(loc, &FieldName::new("count")).unwrap(), int(7));
        assert!(matches!(
            h.read_field(loc, &FieldName::new("ghost")),
            Err(RuntimeError::UnknownField { .. })
        ));
        assert!(matches!(
            h.write_field(loc, &FieldName::new("ghost"), int(1)),
            Err(RuntimeError::UnknownField { .. })
        ));
    }

    #[test]
    fn value_repr_serializes_nested_objects() {
        let mut h = heap();
        let inner = h.allocate(
            ClassName::new("Range"),
            vec![
                (FieldName::new("min"), int(32)),
                (FieldName::new("max"), int(127)),
            ],
        );
        let outer = h.allocate(
            ClassName::new("Filter"),
            vec![(
                FieldName::new("range"),
                Value::Ref {
                    loc: inner,
                    class: ClassName::new("Range"),
                },
            )],
        );
        let rep = h.obj_rep(&Value::Ref {
            loc: outer,
            class: ClassName::new("Filter"),
        });
        assert!(rep.printed.contains("Range"));
        assert!(rep.printed.contains("32"));
        assert!(rep.fingerprint.is_meaningful());
    }

    #[test]
    fn cyclic_object_graphs_do_not_diverge() {
        let mut h = heap();
        let a = h.allocate(ClassName::new("Node"), vec![(FieldName::new("next"), Value::Null)]);
        let b = h.allocate(
            ClassName::new("Node"),
            vec![(
                FieldName::new("next"),
                Value::Ref {
                    loc: a,
                    class: ClassName::new("Node"),
                },
            )],
        );
        h.write_field(
            a,
            &FieldName::new("next"),
            Value::Ref {
                loc: b,
                class: ClassName::new("Node"),
            },
        )
        .unwrap();
        // Serialization terminates and produces a truncated marker somewhere.
        let rep = h.value_repr(&Value::Ref {
            loc: a,
            class: ClassName::new("Node"),
        });
        let printed = rep.printed();
        assert!(printed.contains("Node"));
    }

    #[test]
    fn opaque_classes_produce_empty_fingerprints() {
        let mut opaque = HashSet::new();
        opaque.insert(ClassName::new("Logger"));
        let mut h = Heap::new(opaque, 4);
        let loc = h.allocate(ClassName::new("Logger"), vec![(FieldName::new("n"), int(3))]);
        let rep = h.obj_rep(&Value::Ref {
            loc,
            class: ClassName::new("Logger"),
        });
        assert!(!rep.fingerprint.is_meaningful());
        assert!(rep.printed.is_empty());
        assert_eq!(rep.creation_seq, Some(CreationSeq(0)));
    }

    #[test]
    fn prim_and_null_reps() {
        let h = heap();
        assert_eq!(h.obj_rep(&Value::Null), ObjRep::null());
        let rep = h.obj_rep(&int(42));
        assert_eq!(rep.class, "Int");
        assert_eq!(rep.printed, "42");
    }

    #[test]
    fn identical_states_in_different_heaps_have_equal_fingerprints() {
        let mk = || {
            let mut h = heap();
            let loc = h.allocate(
                ClassName::new("Range"),
                vec![
                    (FieldName::new("min"), int(32)),
                    (FieldName::new("max"), int(127)),
                ],
            );
            h.obj_rep(&Value::Ref {
                loc,
                class: ClassName::new("Range"),
            })
        };
        // Fingerprints are the cross-execution identity: building the same logical object
        // in two separate heaps must produce the same fingerprint.
        assert_eq!(mk().fingerprint, mk().fingerprint);
    }
}
