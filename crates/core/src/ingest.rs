//! Streaming trace ingestion: one bounded-memory pass from serialized bytes to
//! prepared analysis artifacts.
//!
//! The load-then-prepare path ([`Engine::load_trace`](crate::Engine::load_trace))
//! materializes a full [`Trace`](rprism_trace::Trace) — every entry with its owned
//! strings — and then re-walks it to derive the [`KeyedTrace`] and [`ViewWeb`]. For
//! multi-hundred-MB
//! traces that double-walks the data and, more importantly, keeps the whole decoded
//! trace resident for the lifetime of the handle.
//!
//! [`stream_prepare`] instead drives the [`TraceReader`] batch by batch and folds
//! **abstraction into ingestion** (the tracer-driver/TAAF design): as each entry is
//! decoded it is interned and keyed, appended to the incrementally extended view web,
//! and reduced to its [`LeanTrace`] context — then dropped. At no point does more than
//! a bounded window of decoded entries exist:
//!
//! * sequentially, one batch of [`BATCH_ENTRIES`] entries is alive at a time;
//! * in parallel mode, the decoder feeds a scoped-thread pipeline over bounded
//!   channels of entry batches — stage one builds the keyed trace and the lean
//!   context, then forwards the batch; stage two extends the web, then drops it — so
//!   at most `(2 × channel capacity + 3) × batch size` decoded entries are in flight
//!   while decoding overlaps artifact construction.
//!
//! Peak memory is therefore O(accumulated artifacts) — lean contexts, keys, web —
//! rather than O(decoded trace); the `streaming_ingest` measurement of `perf_smoke`
//! (BENCH_4.json) and the counting-allocator test in `crates/core/tests` pin the
//! resulting ≥2× peak reduction down.
//!
//! Both builders produce artifacts *identical* to the load-then-prepare path: the web
//! is extended in entry order ([`ViewWeb::extend`]), keys are pushed in entry order,
//! and the lean context captures exactly the fields the differencer and the regression
//! analysis read. The workspace-level `streaming_equivalence` suite asserts identical
//! matchings, difference signatures and compare counts on all four case studies.
//!
//! One deliberate trade-off: the load-then-prepare path defers interning until after
//! the checksum footer has validated the whole stream, whereas streaming ingestion
//! interns names *as they arrive* — a corrupt file that fails late can leave already
//! interned strings behind (bounded by the bytes read). Callers ingesting wholly
//! untrusted data who cannot accept that should use
//! [`Engine::load_trace`](crate::Engine::load_trace).

use std::io::BufRead;
use std::sync::mpsc::sync_channel;
use std::time::{Duration, Instant};

use rprism_format::{FormatError, TraceReader};
use rprism_trace::{KeyedTrace, LeanTrace, TraceEntry, TraceMeta};
use rprism_views::ViewWeb;

/// Entries decoded per batch. Batching amortizes channel traffic; the value bounds the
/// number of fully decoded entries alive at any instant.
pub const BATCH_ENTRIES: usize = 256;

/// Batches buffered per pipeline channel before the sender blocks (back-pressure).
const CHANNEL_BATCHES: usize = 2;

/// The artifacts one streaming pass accumulates: everything a prepared handle needs,
/// with the full trace replaced by its [`LeanTrace`] reduction.
#[derive(Debug)]
pub struct StreamedArtifacts {
    /// Trace identification from the stream header.
    pub meta: TraceMeta,
    /// Lean per-entry context (thread ids, interned names, object identities).
    pub lean: LeanTrace,
    /// Precomputed event keys, identical to `KeyedTrace::build` over the full trace.
    pub keyed: KeyedTrace,
    /// The view web, identical to `ViewWeb::build` over the full trace.
    pub web: ViewWeb,
}

impl StreamedArtifacts {
    /// Number of ingested entries.
    pub fn len(&self) -> usize {
        self.lean.len()
    }

    /// Returns `true` when the stream contained no entries.
    pub fn is_empty(&self) -> bool {
        self.lean.is_empty()
    }
}

/// Wall time the three ingest phases accumulated over one streaming pass. Timing is
/// per batch (two `Instant` reads per phase per 256 entries), so the cost of always
/// collecting it is noise; in parallel mode the phases overlap, so the components can
/// legitimately sum to more than the pass's elapsed wall time.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Decoding batches off the reader (checksums, varints, string heap).
    pub decode: Duration,
    /// Keyed-trace and lean-context construction.
    pub key: Duration,
    /// View-web extension.
    pub web: Duration,
}

/// Drives a [`TraceReader`] to completion, building the prepared artifacts in one
/// bounded-memory pass. With `parallel` set, keyed/web/lean construction runs on
/// scoped worker threads fed by bounded channels of entry batches, overlapping with
/// decoding; the results are identical either way.
///
/// # Errors
///
/// Propagates the first [`FormatError`] of the stream (truncation, corruption,
/// checksum mismatch, …). Nothing is retained on error — the partial artifacts are
/// dropped with the call frame, so a failed ingest leaves no residue beyond interned
/// name strings (see the module docs).
pub fn stream_prepare<R: BufRead>(
    reader: TraceReader<R>,
    parallel: bool,
) -> Result<StreamedArtifacts, FormatError> {
    stream_prepare_observed(reader, parallel, |_| {})
}

/// [`stream_prepare`] with a per-entry observer: `observe` is called once for every
/// decoded entry, in entry order, on the calling thread, while the entry is still
/// alive — before the pipeline consumes and drops it. This is how ingest-time
/// analyses (the `rprism-check` streaming checker behind
/// `EngineBuilder::check_on_ingest`) see every entry without a second decode pass and
/// without the ingest layer depending on them.
///
/// The observer shares the pass's memory bound: it borrows each entry transiently and
/// must not retain it.
///
/// # Errors
///
/// Propagates the first [`FormatError`] of the stream, like [`stream_prepare`].
pub fn stream_prepare_observed<R: BufRead>(
    reader: TraceReader<R>,
    parallel: bool,
    observe: impl FnMut(&TraceEntry),
) -> Result<StreamedArtifacts, FormatError> {
    stream_prepare_timed(reader, parallel, observe).map(|(artifacts, _)| artifacts)
}

/// [`stream_prepare_observed`], additionally reporting how long each ingest phase
/// took ([`PhaseTimes`]). This is what the engine's pipeline instrumentation records
/// into the `pipeline.decode` / `pipeline.key` / `pipeline.web` histograms.
///
/// # Errors
///
/// Propagates the first [`FormatError`] of the stream, like [`stream_prepare`].
pub fn stream_prepare_timed<R: BufRead>(
    mut reader: TraceReader<R>,
    parallel: bool,
    mut observe: impl FnMut(&TraceEntry),
) -> Result<(StreamedArtifacts, PhaseTimes), FormatError> {
    let meta = reader.meta().clone();
    if parallel {
        stream_parallel(reader, meta, &mut observe)
    } else {
        stream_sequential(&mut reader, meta, &mut observe)
    }
}

fn stream_sequential<R: BufRead>(
    reader: &mut TraceReader<R>,
    meta: TraceMeta,
    observe: &mut impl FnMut(&TraceEntry),
) -> Result<(StreamedArtifacts, PhaseTimes), FormatError> {
    let mut lean = LeanTrace::new(meta.clone());
    let mut keyed = KeyedTrace::default();
    let mut web = ViewWeb::empty();
    let mut batch = Vec::with_capacity(BATCH_ENTRIES);
    let mut index = 0usize;
    let mut times = PhaseTimes::default();
    loop {
        let decode_start = Instant::now();
        let n = reader.read_batch(&mut batch, BATCH_ENTRIES)?;
        times.decode += decode_start.elapsed();
        if n == 0 {
            break;
        }
        for entry in &batch {
            observe(entry);
        }
        let key_start = Instant::now();
        for entry in &batch {
            lean.push(entry);
            keyed.push_entry(entry);
        }
        times.key += key_start.elapsed();
        let web_start = Instant::now();
        for entry in &batch {
            web.extend(index, entry);
            index += 1;
        }
        times.web += web_start.elapsed();
    }
    Ok((
        StreamedArtifacts {
            meta,
            lean,
            keyed,
            web,
        },
        times,
    ))
}

/// One decoded batch moving through the pipeline: the base entry index plus the
/// entries themselves. Each stage owns the batch while working on it; the last stage
/// drops it, reclaiming its memory.
type Batch = (usize, Vec<TraceEntry>);

fn stream_parallel<R: BufRead>(
    mut reader: TraceReader<R>,
    meta: TraceMeta,
    observe: &mut impl FnMut(&TraceEntry),
) -> Result<(StreamedArtifacts, PhaseTimes), FormatError> {
    let (stage1_tx, stage1_rx) = sync_channel::<Batch>(CHANNEL_BATCHES);
    let (stage2_tx, stage2_rx) = sync_channel::<Batch>(CHANNEL_BATCHES);
    let lean_meta = meta.clone();
    std::thread::scope(|scope| {
        // Stage 1: keys + lean context, then hand the batch on (no copy, no sharing).
        let keyed_builder = scope.spawn(move || {
            let mut keyed = KeyedTrace::default();
            let mut lean = LeanTrace::new(lean_meta);
            let mut busy = Duration::ZERO;
            while let Ok(batch) = stage1_rx.recv() {
                let start = Instant::now();
                for entry in &batch.1 {
                    keyed.push_entry(entry);
                    lean.push(entry);
                }
                busy += start.elapsed();
                if stage2_tx.send(batch).is_err() {
                    break; // stage 2 panicked; the join below propagates it
                }
            }
            (keyed, lean, busy)
        });
        // Stage 2: view web, then drop the batch — the only place entries die.
        let web_builder = scope.spawn(move || {
            let mut web = ViewWeb::empty();
            let mut busy = Duration::ZERO;
            while let Ok(batch) = stage2_rx.recv() {
                let start = Instant::now();
                for (offset, entry) in batch.1.iter().enumerate() {
                    web.extend(batch.0 + offset, entry);
                }
                busy += start.elapsed();
            }
            (web, busy)
        });

        let mut base = 0usize;
        let mut decode = Duration::ZERO;
        let mut outcome: Result<(), FormatError> = Ok(());
        loop {
            let mut batch = Vec::with_capacity(BATCH_ENTRIES);
            let decode_start = Instant::now();
            let read = reader.read_batch(&mut batch, BATCH_ENTRIES);
            decode += decode_start.elapsed();
            match read {
                Ok(0) => break,
                Ok(n) => {
                    // The observer runs on the decode thread, in entry order, before
                    // the batch enters the pipeline.
                    for entry in &batch {
                        observe(entry);
                    }
                    // A send only fails when a builder panicked; the join below
                    // propagates that panic.
                    if stage1_tx.send((base, batch)).is_err() {
                        break;
                    }
                    base += n;
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        // Closing the channel lets the pipeline drain and finish.
        drop(stage1_tx);
        let (keyed, lean, key) = keyed_builder.join().expect("keyed/lean builder panicked");
        let (web, web_busy) = web_builder.join().expect("web builder panicked");
        outcome.map(|()| {
            (
                StreamedArtifacts {
                    meta,
                    lean,
                    keyed,
                    web,
                },
                PhaseTimes {
                    decode,
                    key,
                    web: web_busy,
                },
            )
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_format::{trace_to_bytes, Encoding};
    use rprism_trace::testgen::{arbitrary_trace, Rng};
    use std::io::BufReader;

    fn streamed(trace: &rprism_trace::Trace, parallel: bool) -> StreamedArtifacts {
        let bytes = trace_to_bytes(trace, Encoding::Binary).unwrap();
        let reader = TraceReader::new(BufReader::new(bytes.as_slice())).unwrap();
        stream_prepare(reader, parallel).unwrap()
    }

    #[test]
    fn streamed_artifacts_match_whole_trace_builds() {
        let mut rng = Rng::new(0x1157);
        let trace = arbitrary_trace(&mut rng, 1500);
        let reference_keyed = KeyedTrace::build(&trace);
        let reference_web = ViewWeb::build(&trace);
        for parallel in [false, true] {
            let artifacts = streamed(&trace, parallel);
            assert_eq!(artifacts.meta, trace.meta);
            assert_eq!(artifacts.len(), trace.len());
            assert_eq!(artifacts.keyed.len(), reference_keyed.len());
            for i in 0..trace.len() {
                assert!(
                    artifacts.keyed.key_eq(i, &reference_keyed, i),
                    "key {i} diverged (parallel={parallel})"
                );
            }
            assert_eq!(artifacts.web.total_views(), reference_web.total_views());
            for (id, view) in reference_web.views_with_ids() {
                assert_eq!(
                    artifacts.web.view_by_id(id).entries,
                    view.entries,
                    "view {id:?} diverged (parallel={parallel})"
                );
            }
        }
    }

    #[test]
    fn truncated_streams_error_and_leave_nothing_behind() {
        let mut rng = Rng::new(0xdead);
        let trace = arbitrary_trace(&mut rng, 300);
        let bytes = trace_to_bytes(&trace, Encoding::Binary).unwrap();
        for parallel in [false, true] {
            let cut = &bytes[..bytes.len() * 2 / 3];
            let reader = TraceReader::new(BufReader::new(cut)).unwrap();
            assert!(stream_prepare(reader, parallel).is_err());
        }
    }
}
