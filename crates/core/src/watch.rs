//! Live (incremental) differencing: a fixed prepared *old* trace watched against a
//! *new* trace that is still being produced.
//!
//! [`Watch`] is the engine-level wrapper around [`rprism_diff::DiffSession`]: it owns a
//! clone of the old handle (forcing its keyed/web artifacts once, like a batch diff
//! would), feeds every arriving entry through the optional ingest checker
//! ([`crate::EngineBuilder::check_on_ingest`]), and folds key derivation, web extension
//! and the suspended lock-step scan into each push — the new trace is never
//! materialized. [`Watch::finish`] produces the authoritative verdict, byte-identical
//! (matching, difference sequences, compare counts) to
//! [`Engine::diff`](crate::Engine::diff) of the same two traces, plus a streamed
//! [`PreparedTrace`] handle for the watched side so reports render exactly like the
//! batch path's.
//!
//! Construction goes through [`Engine::watch`](crate::Engine::watch) (push-driven, the
//! server's mode) or [`Engine::watch_prepared`](crate::Engine::watch_prepared) (drives
//! a [`TraceReader`](rprism_format::TraceReader) to completion, tailing across
//! incomplete-record boundaries).

use rprism_check::{Checker, Severity};
use rprism_diff::{DiffSession, ProvisionalEvent, SessionArtifacts, TraceDiffResult};
use rprism_trace::{TraceEntry, TraceMeta};

use crate::ingest::StreamedArtifacts;
use crate::{Error, PreparedTrace, Result};

/// An in-progress live diff: push new-trace entries as they arrive, collect
/// provisional events, then [`finish`](Watch::finish) for the authoritative verdict.
///
/// The provisional stream is monotone: a `(left, right)` pair retracted by an
/// `Invalidate` event is never re-reported as a `Match`, not even by the final
/// reconciliation. See [`rprism_diff::DiffSession`] for the exact event semantics.
pub struct Watch {
    old: PreparedTrace,
    session: DiffSession,
    name: String,
    gate: Option<(Checker, Severity)>,
}

/// Everything a finished watch produces.
#[derive(Debug)]
pub struct WatchOutcome {
    /// The authoritative diff, byte-identical to the batch
    /// [`Engine::diff`](crate::Engine::diff) of the same pair.
    pub result: TraceDiffResult,
    /// Final reconciliation events: `Match` for authoritative pairs never reported
    /// provisionally, then `Invalidate` for provisional pairs the verdict dropped.
    pub events: Vec<ProvisionalEvent>,
    /// The watched trace as a streamed prepared handle (keys and web already built),
    /// for rendering the final report or further queries.
    pub new_trace: PreparedTrace,
}

impl Watch {
    pub(crate) fn new(
        old: PreparedTrace,
        meta: TraceMeta,
        session: DiffSession,
        gate: Option<(Checker, Severity)>,
    ) -> Self {
        Watch {
            old,
            session,
            name: meta.name,
            gate,
        }
    }

    /// Number of new-trace entries consumed so far.
    pub fn right_len(&self) -> usize {
        self.session.right_len()
    }

    /// Appends a chunk of new-trace entries (in trace order, any chunk boundaries) and
    /// advances the incremental scan, returning the provisional events the chunk
    /// produced.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Check`] as soon as the ingest gate's streaming checker raises
    /// a diagnostic at or above the deny threshold — the watch aborts mid-stream
    /// instead of diffing a trace the session is configured to reject. The report
    /// carries every diagnostic raised up to that point.
    pub fn push_entries(&mut self, entries: &[TraceEntry]) -> Result<Vec<ProvisionalEvent>> {
        if let Some((mut checker, deny)) = self.gate.take() {
            for entry in entries {
                checker.observe(entry);
            }
            if checker.raised_at_least(deny) > 0 {
                let mut report = checker.finish();
                report.trace_name = self.name.clone();
                return Err(Error::Check(Box::new(report)));
            }
            self.gate = Some((checker, deny));
        }
        Ok(self.session.push_entries(&self.old.side(), entries))
    }

    /// Ends the stream: runs the checker's end-of-trace rules, then computes the
    /// authoritative verdict over the accumulated artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Check`] when the ingest gate's end-of-trace diagnostics reach
    /// the deny threshold (mirroring the batch
    /// [`Engine::load_prepared`](crate::Engine::load_prepared) gate).
    pub fn finish(self) -> Result<WatchOutcome> {
        if let Some((checker, deny)) = self.gate {
            let mut report = checker.finish();
            report.trace_name = self.name.clone();
            if report.count_at_least(deny) > 0 {
                return Err(Error::Check(Box::new(report)));
            }
        }
        let finish = self.session.finish(&self.old.side());
        let SessionArtifacts {
            meta,
            lean,
            keyed,
            web,
        } = finish.artifacts;
        let new_trace = PreparedTrace::from_streamed(StreamedArtifacts {
            meta,
            lean,
            keyed,
            web,
        });
        Ok(WatchOutcome {
            result: finish.result,
            events: finish.events,
            new_trace,
        })
    }
}
