//! The TCP daemon: a bounded worker pool serving the framed protocol over one shared
//! [`TraceRepo`] and its [`Engine`](rprism::Engine).
//!
//! ## Concurrency model
//!
//! The listener thread accepts connections and hands them to a fixed pool of worker
//! threads over a bounded channel (back-pressure: when every worker is busy and the
//! queue is full, accepting pauses instead of piling up sockets). Each worker owns one
//! connection at a time and runs its request/response loop to completion. All workers
//! share one `Arc<TraceRepo>` — and therefore one `Engine`, whose `Send + Sync`
//! prepared/correlation caches are exactly what turns N clients diffing the same pairs
//! into cache hits (the stress test in `rprism-core` pins the engine-level guarantee;
//! `BENCH_5.json` records the resulting request throughput).
//!
//! ## Failure containment
//!
//! A connection's errors never leave the connection: an undecodable message is
//! answered with an error frame and the loop continues; a transport-level failure
//! (checksum mismatch, truncated frame, I/O error) is answered best-effort and the
//! connection closed. Workers catch panics per connection (`catch_unwind`), so even a
//! bug in a single request cannot take the daemon down.
//!
//! ## Shutdown
//!
//! A [`Request::Shutdown`] flips the shared stop flag and is acknowledged immediately.
//! The listener stops accepting, the connection queue is closed and drained, and
//! every worker finishes the requests already in flight before exiting —
//! [`Server::run`] returns only after the pool has joined.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rprism::{Engine, PreparedTrace, RegressionInput};
use rprism_format::frame::{read_frame, write_frame};

use crate::proto::{Request, Response, WireDiff, WireReport, WireStats};
use crate::repo::{TraceRepo, DEFAULT_CACHE_BUDGET};
use crate::{Result, ServerError};

/// How long a worker waits for the rest of a frame once its first byte arrived. A peer
/// that stalls mid-frame has lost framing sync anyway, so this closes the connection.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// The poll quantum of idle waits (between frames on a connection, and in the accept
/// loop): how quickly a blocked worker or the listener notices the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The address to bind (e.g. `127.0.0.1:7171`; port 0 picks an ephemeral port).
    pub addr: String,
    /// The repository directory (must exist and be writable).
    pub repo_dir: std::path::PathBuf,
    /// Worker threads serving connections (defaults to `available_parallelism`,
    /// minimum 2 so a long request cannot starve the shutdown path). Each open
    /// connection occupies one worker for its lifetime, so size the pool for the
    /// expected peak of *concurrent connections* — further connections queue (with
    /// back-pressure) until a worker frees up.
    pub threads: usize,
    /// Byte budget of the prepared-handle cache.
    pub cache_budget: u64,
    /// Maximum accepted frame payload (uploads larger than this are rejected).
    pub max_frame: u64,
    /// The analysis engine configuration shared by every request.
    pub engine: Engine,
}

impl ServerConfig {
    /// A configuration with the defaults: one worker per core (min 2), a 256 MiB
    /// prepared-cache budget, 64 MiB frames, and a default [`Engine`].
    pub fn new(addr: impl Into<String>, repo_dir: impl Into<std::path::PathBuf>) -> Self {
        ServerConfig {
            addr: addr.into(),
            repo_dir: repo_dir.into(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2),
            cache_budget: DEFAULT_CACHE_BUDGET,
            max_frame: rprism_format::frame::DEFAULT_MAX_PAYLOAD,
            engine: Engine::new(),
        }
    }
}

/// A bound (but not yet running) trace-repository daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    repo: Arc<TraceRepo>,
    threads: usize,
    max_frame: u64,
    stop: Arc<AtomicBool>,
    requests_served: Arc<AtomicU64>,
}

impl Server {
    /// Binds the listener and opens the repository. Fails fast — a missing or
    /// unwritable repository directory, a corrupt blob, or an unbindable address is a
    /// startup error, not a latent runtime one.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Repo`]/[`ServerError::Format`] for repository problems
    /// and [`ServerError::Io`] when the address cannot be bound.
    pub fn bind(config: ServerConfig) -> Result<Server> {
        let repo = TraceRepo::open(&config.repo_dir, config.engine.clone(), config.cache_budget)?;
        let listener = TcpListener::bind(resolve(&config.addr)?)?;
        Ok(Server {
            listener,
            repo: Arc::new(repo),
            threads: config.threads.max(2),
            max_frame: config.max_frame,
            stop: Arc::new(AtomicBool::new(false)),
            requests_served: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The bound address (the actual port when the config asked for port 0).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle that can stop this server from another thread (equivalent to a
    /// [`Request::Shutdown`] arriving on the wire).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the daemon until a shutdown request (or [`Server::stop_handle`]) stops it,
    /// then drains in-flight requests and joins the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] only for listener-level failures; per-connection
    /// errors are contained and answered on their own connections.
    pub fn run(self) -> Result<()> {
        self.listener.set_nonblocking(true)?;
        let (queue_tx, queue_rx) = sync_channel::<TcpStream>(self.threads * 2);
        let queue_rx = Arc::new(Mutex::new(queue_rx));
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let worker = Worker {
                    repo: Arc::clone(&self.repo),
                    stop: Arc::clone(&self.stop),
                    requests_served: Arc::clone(&self.requests_served),
                    max_frame: self.max_frame,
                };
                let queue_rx = Arc::clone(&queue_rx);
                scope.spawn(move || loop {
                    // Take the next queued connection; the queue closing is the pool's
                    // signal to exit (after the in-flight connection finished).
                    let next = queue_rx.lock().expect("queue poisoned").recv();
                    match next {
                        Ok(stream) => worker.serve_connection(stream),
                        Err(_) => break,
                    }
                });
            }

            while !self.stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Block for queue space (back-pressure), but never enqueue
                        // past a stop request.
                        if self.stop.load(Ordering::SeqCst) || queue_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(IDLE_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(ServerError::Io(e)),
                }
            }
            // Closing the queue drains it: workers finish queued and in-flight
            // connections, then exit; the scope joins them.
            drop(queue_tx);
            Ok(())
        })
    }
}

fn resolve(addr: &str) -> Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| ServerError::Io(std::io::Error::other(format!("cannot resolve {addr:?}"))))
}

/// Per-worker state: everything a connection handler needs, cheap to clone into the
/// pool.
struct Worker {
    repo: Arc<TraceRepo>,
    stop: Arc<AtomicBool>,
    requests_served: Arc<AtomicU64>,
    max_frame: u64,
}

impl Worker {
    /// Serves one connection to completion. Panics are contained per connection.
    fn serve_connection(&self, stream: TcpStream) {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Err(e) = self.connection_loop(&stream) {
                // Best effort: tell the peer what went wrong before closing.
                let response = Response::Error {
                    message: e.to_string(),
                };
                let mut out = BufWriter::new(&stream);
                let _ = write_frame(&mut out, &response.encode());
            }
        }));
        if outcome.is_err() {
            let response = Response::Error {
                message: "internal server error (request handler panicked)".into(),
            };
            let mut out = BufWriter::new(&stream);
            let _ = write_frame(&mut out, &response.encode());
        }
    }

    /// The request/response loop. Returns `Ok` on clean close (peer done, or
    /// post-shutdown), `Err` when the transport is no longer trustworthy.
    fn connection_loop(&self, stream: &TcpStream) -> Result<()> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(FRAME_READ_TIMEOUT))?;
        let mut input = stream;
        loop {
            // Idle wait: poll (peek, no bytes consumed) for the next frame's first
            // byte, so a worker parked on an idle connection notices a shutdown and
            // releases itself instead of blocking the drain.
            stream.set_read_timeout(Some(IDLE_POLL))?;
            let mut probe = [0u8; 1];
            match stream.peek(&mut probe) {
                Ok(0) => return Ok(()), // peer closed between frames
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ServerError::Io(e)),
            }
            // A frame is arriving: switch to the real read timeout for its body.
            stream.set_read_timeout(Some(FRAME_READ_TIMEOUT))?;
            let payload = match read_frame(&mut input, self.max_frame) {
                Ok(Some(payload)) => payload,
                // Clean end of stream between frames: the peer is done.
                Ok(None) => return Ok(()),
                Err(e) => return Err(ServerError::Proto(e)),
            };
            // A decode failure is a *request* problem, not a transport one: answer it
            // and keep the connection.
            let response = match Request::decode(&payload) {
                Ok(request) => {
                    let is_shutdown = matches!(request, Request::Shutdown);
                    let response = self.handle(request);
                    self.requests_served.fetch_add(1, Ordering::Relaxed);
                    if is_shutdown {
                        let mut out = BufWriter::new(stream);
                        write_frame(&mut out, &response.encode()).map_err(ServerError::Proto)?;
                        return Ok(());
                    }
                    response
                }
                Err(e) => Response::Error {
                    message: format!("malformed request: {e}"),
                },
            };
            let mut out = BufWriter::new(stream);
            write_frame(&mut out, &response.encode()).map_err(ServerError::Proto)?;
            if self.stop.load(Ordering::SeqCst) {
                // Drain semantics: the request that was in flight got its response;
                // new requests belong to a restarted server.
                return Ok(());
            }
        }
    }

    /// Executes one request. Every failure becomes a structured [`Response::Error`].
    fn handle(&self, request: Request) -> Response {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }

    fn try_handle(&self, request: Request) -> Result<Response> {
        let engine = self.repo.engine();
        match request {
            Request::Put { bytes } => {
                let (hash, deduped, entries) = self.repo.put_bytes(&bytes)?;
                Ok(Response::PutOk {
                    hash,
                    deduped,
                    entries,
                })
            }
            Request::Get { hash } => Ok(Response::GetOk {
                bytes: self.repo.get_bytes(hash)?,
            }),
            Request::List => Ok(Response::ListOk {
                entries: self.repo.list(),
            }),
            Request::Diff {
                left,
                right,
                max_sequences,
            } => {
                let left = self.repo.prepared(left)?;
                let right = self.repo.prepared(right)?;
                let result = engine.diff(&left, &right)?;
                let rendered = render_diff(&result, &left, &right, max_sequences as usize);
                Ok(Response::DiffOk(WireDiff::from_result(&result, rendered)))
            }
            Request::Analyze {
                old_regressing,
                new_regressing,
                old_passing,
                new_passing,
                mode,
                max_sequences,
            } => {
                let mut input = RegressionInput::new(
                    self.repo.prepared(old_regressing)?,
                    self.repo.prepared(new_regressing)?,
                    self.repo.prepared(old_passing)?,
                    self.repo.prepared(new_passing)?,
                );
                if let Some(mode) = mode {
                    input = input.with_mode(mode);
                }
                let report = engine.analyze(&input)?;
                // Render under the caller's sequence bound (engine defaults for the
                // rest) so remote reports read exactly like local ones.
                let render = rprism_regress::RenderOptions {
                    max_regression_sequences: max_sequences as usize,
                    ..*engine.render_options()
                };
                let rendered = rprism_regress::render_report_with(
                    &report,
                    &render,
                    |idx| input.old_regressing.describe_entry(idx),
                    |idx| input.new_regressing.describe_entry(idx),
                );
                Ok(Response::AnalyzeOk(WireReport::from_report(&report, rendered)))
            }
            Request::Stats => {
                let repo = self.repo.stats();
                Ok(Response::StatsOk(WireStats {
                    blobs: repo.blobs,
                    blob_bytes: repo.blob_bytes,
                    prepared_cached: repo.prepared_cached,
                    prepared_cached_bytes: repo.prepared_cached_bytes,
                    cache_budget_bytes: repo.cache_budget_bytes,
                    prepared_hits: repo.prepared_hits,
                    prepared_misses: repo.prepared_misses,
                    evictions: repo.evictions,
                    dedup_hits: repo.dedup_hits,
                    requests_served: self.requests_served.load(Ordering::Relaxed),
                    correlation_builds: engine.correlation_builds(),
                    cached_correlations: engine.cached_correlations() as u64,
                }))
            }
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(Response::ShutdownOk)
            }
        }
    }
}

fn render_diff(
    result: &rprism::TraceDiffResult,
    left: &PreparedTrace,
    right: &PreparedTrace,
    max_sequences: usize,
) -> String {
    result.render_with(
        max_sequences,
        |idx| left.describe_entry(idx),
        |idx| right.describe_entry(idx),
    )
}
