//! LEB128 unsigned varints, the integer encoding of the binary trace format.
//!
//! Seven payload bits per byte, least-significant group first; the high bit of each byte
//! marks continuation. A `u64` therefore takes at most ten bytes, and the decoder rejects
//! anything longer (or any continuation past the 64th bit) as corrupt rather than
//! silently wrapping.
//!
//! Decoding is **canonical**: every value has exactly one accepted encoding, the
//! shortest one. Overlong forms (a final byte of `0x00` after a continuation, e.g.
//! `80 00` for zero) are rejected as corrupt — accepting them would let two different
//! byte streams decode to the same trace, silently breaking the format's byte-stability
//! guarantee on re-encode.

use crate::error::{FormatError, Result};

/// A stream of bytes with a known absolute offset, the input side of the binary decoder.
/// `next` returns `Ok(None)` at a clean end of input; the varint decoder converts that
/// into a [`FormatError::Truncated`] because a varint never ends mid-value.
pub trait ByteSource {
    /// The next byte, or `None` at end of input.
    fn next_byte(&mut self) -> Result<Option<u8>>;
    /// Absolute offset of the *next* byte `next_byte` would return.
    fn offset(&self) -> u64;
}

/// A [`ByteSource`] over an in-memory slice (used by tests and the sniffing logic).
pub struct SliceSource<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice whose first byte sits at absolute offset `base`.
    pub fn new(bytes: &'a [u8], base: u64) -> Self {
        SliceSource { bytes, pos: 0, base }
    }
}

impl ByteSource for SliceSource<'_> {
    fn next_byte(&mut self) -> Result<Option<u8>> {
        let byte = self.bytes.get(self.pos).copied();
        if byte.is_some() {
            self.pos += 1;
        }
        Ok(byte)
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }
}

/// Appends the LEB128 encoding of `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The number of bytes [`write_u64`] produces for `value`.
pub fn encoded_len(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Reads one LEB128 `u64` from the source.
pub fn read_u64(src: &mut impl ByteSource) -> Result<u64> {
    let start = src.offset();
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let Some(byte) = src.next_byte()? else {
            return Err(FormatError::Truncated { offset: src.offset() });
        };
        let payload = u64::from(byte & 0x7f);
        // The tenth byte of a u64 varint may only contribute the single remaining bit.
        if shift == 63 && payload > 1 {
            return Err(FormatError::Corrupt {
                offset: start,
                detail: "varint overflows u64".into(),
            });
        }
        if shift > 63 {
            return Err(FormatError::Corrupt {
                offset: start,
                detail: "varint longer than 10 bytes".into(),
            });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            // Canonicality: a multi-byte encoding whose final group is all zeros spells
            // a value that fits in fewer bytes — a non-canonical (overlong) form.
            if byte == 0 && shift > 0 {
                return Err(FormatError::Corrupt {
                    offset: start,
                    detail: "non-canonical (overlong) varint".into(),
                });
            }
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        assert_eq!(buf.len(), encoded_len(v), "length prediction for {v}");
        let mut src = SliceSource::new(&buf, 0);
        assert_eq!(read_u64(&mut src).unwrap(), v);
        assert_eq!(src.offset(), buf.len() as u64);
    }

    #[test]
    fn round_trips_across_the_range() {
        for v in [0, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            round_trip(v);
        }
        // Every power-of-two boundary.
        for shift in 0..64 {
            round_trip(1u64 << shift);
            round_trip((1u64 << shift) - 1);
        }
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for len in 0..buf.len() {
            let mut src = SliceSource::new(&buf[..len], 100);
            let err = read_u64(&mut src).unwrap_err();
            assert!(matches!(err, FormatError::Truncated { offset } if offset >= 100));
        }
    }

    #[test]
    fn overlong_encodings_are_rejected_as_non_canonical() {
        // `80 00` spells zero in two bytes; `ff 00` spells 127 in two bytes. Both have
        // canonical one-byte forms and must be rejected, not silently normalized.
        for overlong in [&[0x80u8, 0x00][..], &[0xff, 0x00], &[0x80, 0x80, 0x00]] {
            let mut src = SliceSource::new(overlong, 0);
            let err = read_u64(&mut src).unwrap_err();
            assert!(
                matches!(&err, FormatError::Corrupt { detail, .. } if detail.contains("overlong")),
                "expected overlong rejection for {overlong:02x?}, got {err:?}"
            );
        }
        // The canonical single-byte zero still decodes.
        let mut src = SliceSource::new(&[0x00], 0);
        assert_eq!(read_u64(&mut src).unwrap(), 0);
    }

    #[test]
    fn overlong_varint_is_corrupt_not_wrapping() {
        // Eleven continuation bytes: longer than any valid u64 varint.
        let buf = [0x80u8; 11];
        let mut src = SliceSource::new(&buf, 0);
        assert!(matches!(
            read_u64(&mut src).unwrap_err(),
            FormatError::Corrupt { .. }
        ));
        // Ten bytes whose final payload would overflow the 64th bit.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x02);
        let mut src = SliceSource::new(&buf, 0);
        assert!(matches!(
            read_u64(&mut src).unwrap_err(),
            FormatError::Corrupt { .. }
        ));
    }
}
