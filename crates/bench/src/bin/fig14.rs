//! Reproduces Fig. 14 of the paper: accuracy (a) and speedup (b) of views-based
//! differencing relative to the optimized-LCS baseline over the injected-bug dataset.
//!
//! Run with `cargo run -p rprism-bench --bin fig14 --release [-- <bugs> <script_length>]`.

use std::collections::BTreeMap;

use rprism::Engine;
use rprism_bench::{accuracy_bucket, format_histogram, format_table, rhino_eval_dataset, speedup_bucket};
use rprism_diff::{LcsDiffOptions, MemoryBudget};

fn main() {
    let mut args = std::env::args().skip(1);
    let bugs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
    let script_length: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);

    println!("Fig. 14 reproduction — {bugs} injected bugs, script length {script_length}");
    println!("(accuracy and speedup of views-based differencing vs optimized LCS)\n");

    let dataset = rhino_eval_dataset(bugs, script_length);
    let mut accuracy_hist: BTreeMap<String, usize> = BTreeMap::new();
    let mut speedup_hist: BTreeMap<String, usize> = BTreeMap::new();
    let mut rows = Vec::new();
    // The paper gives the baseline a 32 GB server; scale the budget to this harness.
    let lcs_budget = MemoryBudget::gib(2);

    // One session per algorithm; both diff the same prepared handles, so each trace's
    // event keys are derived once and shared between the two runs.
    let views_engine = Engine::new();
    let lcs_engine = Engine::builder()
        .lcs_baseline(
            LcsDiffOptions::builder()
                .memory_budget(lcs_budget)
                .linear_space(false)
                .build(),
        )
        .build();

    for bug in &dataset {
        let traces = match bug.scenario.trace_all() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skipping {}: {e}", bug.scenario.name);
                continue;
            }
        };
        let left = &traces.traces.old_regressing;
        let right = &traces.traces.new_regressing;
        let views = views_engine.diff(left, right).expect("views never fails");
        let lcs = lcs_engine.diff(left, right);

        // The paper's baseline fails with memory exhaustion on the longest traces; the
        // views result still counts, with accuracy/speedup reported as unbounded.
        let (accuracy, speedup, lcs_diffs) = match &lcs {
            Ok(lcs) => (
                views.accuracy_vs(lcs),
                lcs.cost.compare_ops as f64 / views.cost.compare_ops.max(1) as f64,
                lcs.num_differences().to_string(),
            ),
            Err(_) => (f64::INFINITY, f64::INFINITY, "OOM".to_owned()),
        };

        if accuracy.is_finite() {
            *accuracy_hist.entry(accuracy_bucket(accuracy)).or_insert(0) += 1;
        }
        if speedup.is_finite() {
            *speedup_hist.entry(speedup_bucket(speedup)).or_insert(0) += 1;
        }
        rows.push(vec![
            bug.scenario.name.clone(),
            bug.mutation.cause.label().to_owned(),
            left.len().to_string(),
            views.num_differences().to_string(),
            lcs_diffs,
            if accuracy.is_finite() {
                format!("{:.1}%", accuracy * 100.0)
            } else {
                "n/a (LCS OOM)".to_owned()
            },
            if speedup.is_finite() {
                format!("{speedup:.1}x")
            } else {
                "inf".to_owned()
            },
        ]);
    }

    println!(
        "{}",
        format_table(
            &[
                "bug",
                "cause",
                "trace",
                "views diffs",
                "lcs diffs",
                "accuracy",
                "speedup"
            ],
            &rows
        )
    );
    println!(
        "{}",
        format_histogram("Fig. 14(a) — accuracy (RPrism vs LCS)", &accuracy_hist)
    );
    println!(
        "{}",
        format_histogram("Fig. 14(b) — speedup (compare operations, RPrism vs LCS)", &speedup_hist)
    );
}
