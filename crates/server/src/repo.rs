//! The content-addressed trace repository: blobs on disk, prepared handles in a
//! byte-budgeted LRU cache.
//!
//! Storage is keyed by [`rprism_format::content_hash`] — the encoding-independent
//! FNV-64 of the trace's canonical binary form — so the *content* is the identity:
//! uploading the same trace twice, or once as `.rtr` and once as its JSONL conversion,
//! stores exactly one blob. Blobs keep the bytes the client sent (`<hash>.trace`,
//! either encoding; readers sniff), and the startup scan re-derives every blob's
//! summary from its content, verifying the filename hash in the process — a repo
//! directory is self-describing, with no index file to drift.
//!
//! Above the blobs sits the hot cache: [`PreparedTrace`] handles produced by
//! [`Engine::load_prepared`]'s bounded-memory streaming pipeline, keyed by content
//! hash and bounded by a **byte budget** with least-recently-used eviction. The weight
//! of a handle is its blob's on-disk size — a deliberate proxy for the prepared
//! artifacts' footprint that is cheap, deterministic, and proportional to the trace.
//! Eviction drops handles only; blobs are never deleted, and an evicted trace simply
//! streams back in on its next use. Handles are `Arc`s, so evicting one that an
//! in-flight request is using is safe — the request keeps its clone alive.
//!
//! One deliberate slack: evicting a handle does not purge the engine's pair-level
//! correlation cache, so correlations of evicted handles linger until LRU churn
//! pushes them out. That lingering set is hard-bounded by the engine's correlation
//! capacity (128 pairs by default, tunable via
//! [`EngineBuilder::correlation_cache_capacity`](rprism::EngineBuilder::correlation_cache_capacity)),
//! so it adds a bounded constant on top of the byte budget rather than growing with
//! repository churn.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use rprism::{Engine, PreparedTrace};
use rprism_format::content_summary_path;

use crate::proto::RepoEntry;
use crate::{Result, ServerError};

/// Default prepared-cache byte budget (256 MiB of blob-weight).
pub const DEFAULT_CACHE_BUDGET: u64 = 256 * 1024 * 1024;

const BLOB_EXTENSION: &str = "trace";

/// What the repository knows about one stored blob.
#[derive(Clone, Debug)]
struct BlobInfo {
    name: String,
    entries: u64,
    bytes: u64,
}

#[derive(Debug, Default)]
struct PreparedCache {
    /// Hash → hot handle. Handles are cheap `Arc` clones of what requests borrow.
    handles: HashMap<u64, PreparedTrace>,
    /// LRU order, least recently used at the front.
    order: VecDeque<u64>,
    /// Sum of the cached handles' weights (blob bytes).
    weight: u64,
    /// Hashes some worker is currently streaming in (single-flight guard: concurrent
    /// cold misses of one trace wait for the first load instead of each re-streaming
    /// the blob — N identical loads would multiply both wall time and the transient
    /// O(artifacts) heap).
    in_flight: std::collections::HashSet<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PreparedCache {
    fn touch(&mut self, hash: u64) {
        if let Some(pos) = self.order.iter().position(|&h| h == hash) {
            self.order.remove(pos);
        }
        self.order.push_back(hash);
    }
}

/// A point-in-time statistics snapshot of the repository.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepoStats {
    /// Number of stored blobs.
    pub blobs: u64,
    /// Total on-disk blob bytes.
    pub blob_bytes: u64,
    /// Prepared handles currently cached.
    pub prepared_cached: u64,
    /// Current cache weight against the byte budget.
    pub prepared_cached_bytes: u64,
    /// The configured byte budget.
    pub cache_budget_bytes: u64,
    /// Cache hits since startup.
    pub prepared_hits: u64,
    /// Cache misses (streaming loads) since startup.
    pub prepared_misses: u64,
    /// Handles evicted by the budget since startup.
    pub evictions: u64,
    /// Uploads deduplicated against existing content since startup.
    pub dedup_hits: u64,
}

/// The content-addressed trace store shared by every server worker.
#[derive(Debug)]
pub struct TraceRepo {
    dir: PathBuf,
    engine: Engine,
    cache_budget: u64,
    index: Mutex<BTreeMap<u64, BlobInfo>>,
    cache: Mutex<PreparedCache>,
    /// Wakes waiters of the single-flight guard when an in-flight load finishes.
    load_done: Condvar,
    dedup_hits: AtomicU64,
    /// Distinguishes the staging files of concurrent puts of identical content.
    staging_seq: AtomicU64,
}

impl TraceRepo {
    /// Opens a repository over an **existing, writable** directory, scanning (and
    /// content-verifying) the blobs already in it. The engine is the analysis session
    /// every request shares — its prepared-pair correlation cache is what makes
    /// repeated remote diffs cheap.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Repo`] when the directory is missing, not a directory,
    /// or not writable, and [`ServerError::Format`] when a blob in it is corrupt or
    /// misnamed.
    pub fn open(dir: impl AsRef<Path>, engine: Engine, cache_budget: u64) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        if !dir.is_dir() {
            return Err(ServerError::Repo(format!(
                "repository directory {} does not exist (create it first)",
                dir.display()
            )));
        }
        // Probe writability up front so `serve` fails at startup, not on the first put.
        let probe = dir.join(".rprism-write-probe");
        std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&probe)
            .and_then(|_| std::fs::remove_file(&probe))
            .map_err(|e| {
                ServerError::Repo(format!(
                    "repository directory {} is not writable: {e}",
                    dir.display()
                ))
            })?;

        let mut index = BTreeMap::new();
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| ServerError::Repo(format!("cannot scan {}: {e}", dir.display())))?;
        for entry in entries {
            let path = entry
                .map_err(|e| ServerError::Repo(format!("cannot scan {}: {e}", dir.display())))?
                .path();
            match path.extension().and_then(|e| e.to_str()) {
                Some(BLOB_EXTENSION) => {}
                // Staging leftovers of a put that crashed mid-write: harmless (never
                // under a valid blob name) but worth sweeping so crash-restart cycles
                // cannot accumulate dead blob-sized files.
                Some("tmp") => {
                    std::fs::remove_file(&path).ok();
                    continue;
                }
                _ => continue,
            }
            let declared = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok());
            let summary = content_summary_path(&path).map_err(ServerError::Format)?;
            if declared != Some(summary.hash) {
                return Err(ServerError::Repo(format!(
                    "blob {} does not hash to its filename (content hash {:016x})",
                    path.display(),
                    summary.hash
                )));
            }
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            index.insert(
                summary.hash,
                BlobInfo {
                    name: summary.meta.name.clone(),
                    entries: summary.entries,
                    bytes,
                },
            );
        }
        Ok(TraceRepo {
            dir,
            engine,
            cache_budget: cache_budget.max(1),
            index: Mutex::new(index),
            cache: Mutex::new(PreparedCache::default()),
            load_done: Condvar::new(),
            dedup_hits: AtomicU64::new(0),
            staging_seq: AtomicU64::new(0),
        })
    }

    /// The shared analysis engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The blob path of a content hash (whether or not it exists yet).
    fn blob_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.{BLOB_EXTENSION}"))
    }

    /// Stores a serialized trace, deduplicating by content: the upload is validated
    /// and hashed in one streaming pass, and when the repository already holds the
    /// content — regardless of which encoding either upload used — nothing is written.
    /// Returns `(hash, deduped, entries)`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Format`] for corrupt uploads and [`ServerError::Io`]
    /// when the blob cannot be written.
    pub fn put_bytes(&self, bytes: &[u8]) -> Result<(u64, bool, u64)> {
        // Hash/validate outside the lock — this is the expensive part of a put.
        let summary = rprism_format::content_summary(bytes).map_err(ServerError::Format)?;
        if self
            .index
            .lock()
            .expect("repo index poisoned")
            .contains_key(&summary.hash)
        {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((summary.hash, true, summary.entries));
        }
        // Stage the blob *outside* the lock (the disk write is the slow part and must
        // not stall concurrent requests), under a writer-unique name so racing puts of
        // the same content cannot trample each other's staging file. Write-then-rename
        // keeps a crashed put from leaving a half-blob under a valid blob name (the
        // startup scan would reject it).
        let path = self.blob_path(summary.hash);
        let staging = self.dir.join(format!(
            "{:016x}-{}.tmp",
            summary.hash,
            self.staging_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&staging, bytes)?;
        let mut index = self.index.lock().expect("repo index poisoned");
        if index.contains_key(&summary.hash) {
            // A racing put of the same content won; ours is redundant.
            drop(index);
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            std::fs::remove_file(&staging).ok();
            return Ok((summary.hash, true, summary.entries));
        }
        if let Err(e) = std::fs::rename(&staging, &path) {
            std::fs::remove_file(&staging).ok();
            return Err(e.into());
        }
        index.insert(
            summary.hash,
            BlobInfo {
                name: summary.meta.name.clone(),
                entries: summary.entries,
                bytes: bytes.len() as u64,
            },
        );
        Ok((summary.hash, false, summary.entries))
    }

    /// The stored bytes of a blob.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownTrace`] for hashes the repository does not hold.
    pub fn get_bytes(&self, hash: u64) -> Result<Vec<u8>> {
        if !self.index.lock().expect("repo index poisoned").contains_key(&hash) {
            return Err(ServerError::UnknownTrace { hash });
        }
        Ok(std::fs::read(self.blob_path(hash))?)
    }

    /// The prepared handle of a stored trace: from the hot cache when present, else
    /// streamed in from its blob via [`Engine::load_prepared`] (one bounded-memory
    /// pass — the server never materializes a full `Trace` for a repository read) and
    /// cached under the byte budget.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownTrace`] for unknown hashes and
    /// [`ServerError::Engine`] when the blob fails to stream.
    pub fn prepared(&self, hash: u64) -> Result<PreparedTrace> {
        let weight = {
            let index = self.index.lock().expect("repo index poisoned");
            index
                .get(&hash)
                .map(|info| info.bytes)
                .ok_or(ServerError::UnknownTrace { hash })?
        };
        // Hit, or claim the single-flight load of this hash. Concurrent cold misses
        // of one trace wait here for the claiming worker instead of each streaming
        // the blob; if that load *fails*, a waiter wakes with the hash neither cached
        // nor in flight and becomes the next claimant (a transient failure is retried
        // by the next request, not broadcast to all waiters).
        {
            let mut cache = self.cache.lock().expect("prepared cache poisoned");
            loop {
                if let Some(handle) = cache.handles.get(&hash).cloned() {
                    cache.hits += 1;
                    cache.touch(hash);
                    return Ok(handle);
                }
                if cache.in_flight.insert(hash) {
                    break;
                }
                cache = self
                    .load_done
                    .wait(cache)
                    .expect("prepared cache poisoned");
            }
        }
        // Stream outside the lock — this is the expensive part.
        let loaded = self.engine.load_prepared(self.blob_path(hash));
        let mut cache = self.cache.lock().expect("prepared cache poisoned");
        cache.in_flight.remove(&hash);
        self.load_done.notify_all();
        cache.misses += 1;
        let handle = loaded?;
        cache.handles.insert(hash, handle.clone());
        cache.order.push_back(hash);
        cache.weight += weight;
        // Evict least-recently-used down to the budget, always keeping the handle
        // just inserted (evicting it immediately would make an over-budget trace
        // reload on every request for no memory win — the in-flight request holds it
        // alive anyway).
        while cache.weight > self.cache_budget && cache.order.len() > 1 {
            let Some(evicted) = cache.order.pop_front() else {
                break;
            };
            if evicted == hash {
                cache.order.push_back(hash);
                continue;
            }
            if cache.handles.remove(&evicted).is_some() {
                cache.evictions += 1;
                let evicted_weight = self
                    .index
                    .lock()
                    .expect("repo index poisoned")
                    .get(&evicted)
                    .map(|info| info.bytes)
                    .unwrap_or(0);
                cache.weight = cache.weight.saturating_sub(evicted_weight);
            }
        }
        Ok(handle)
    }

    /// The repository listing, ordered by content hash.
    pub fn list(&self) -> Vec<RepoEntry> {
        self.index
            .lock()
            .expect("repo index poisoned")
            .iter()
            .map(|(&hash, info)| RepoEntry {
                hash,
                name: info.name.clone(),
                entries: info.entries,
                bytes: info.bytes,
            })
            .collect()
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> RepoStats {
        let (blobs, blob_bytes) = {
            let index = self.index.lock().expect("repo index poisoned");
            (
                index.len() as u64,
                index.values().map(|info| info.bytes).sum(),
            )
        };
        let cache = self.cache.lock().expect("prepared cache poisoned");
        RepoStats {
            blobs,
            blob_bytes,
            prepared_cached: cache.handles.len() as u64,
            prepared_cached_bytes: cache.weight,
            cache_budget_bytes: self.cache_budget,
            prepared_hits: cache.hits,
            prepared_misses: cache.misses,
            evictions: cache.evictions,
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_format::{trace_to_bytes, Encoding};
    use rprism_trace::testgen::{arbitrary_trace, Rng};

    fn temp_repo(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rprism-repo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_bytes(seed: u64, len: usize, encoding: Encoding) -> Vec<u8> {
        let mut rng = Rng::new(seed);
        let trace = arbitrary_trace(&mut rng, len);
        trace_to_bytes(&trace, encoding).unwrap()
    }

    #[test]
    fn put_deduplicates_across_encodings_and_survives_reopen() {
        let dir = temp_repo("dedup");
        let repo = TraceRepo::open(&dir, Engine::new(), DEFAULT_CACHE_BUDGET).unwrap();

        let mut rng = Rng::new(0xabc);
        let trace = arbitrary_trace(&mut rng, 80);
        let binary = trace_to_bytes(&trace, Encoding::Binary).unwrap();
        let jsonl = trace_to_bytes(&trace, Encoding::Jsonl).unwrap();

        let (hash, deduped, entries) = repo.put_bytes(&binary).unwrap();
        assert!(!deduped);
        assert_eq!(entries, 80);
        // Same bytes again: deduplicated.
        assert_eq!(repo.put_bytes(&binary).unwrap(), (hash, true, 80));
        // Same *content* in the other encoding: still deduplicated.
        assert_eq!(repo.put_bytes(&jsonl).unwrap(), (hash, true, 80));
        let stats = repo.stats();
        assert_eq!(stats.blobs, 1);
        assert_eq!(stats.dedup_hits, 2);
        assert_eq!(repo.list().len(), 1);

        // A different trace is a second blob.
        let other = sample_bytes(0xdef, 40, Encoding::Binary);
        let (other_hash, deduped, _) = repo.put_bytes(&other).unwrap();
        assert!(!deduped);
        assert_ne!(other_hash, hash);

        // Reopening rebuilds the index from the blobs themselves.
        drop(repo);
        let reopened = TraceRepo::open(&dir, Engine::new(), DEFAULT_CACHE_BUDGET).unwrap();
        assert_eq!(reopened.stats().blobs, 2);
        assert_eq!(reopened.get_bytes(hash).unwrap(), binary);
        assert!(matches!(
            reopened.get_bytes(0x1234),
            Err(ServerError::UnknownTrace { hash: 0x1234 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_uploads_are_rejected_without_storing() {
        let dir = temp_repo("corrupt");
        let repo = TraceRepo::open(&dir, Engine::new(), DEFAULT_CACHE_BUDGET).unwrap();
        let mut bytes = sample_bytes(7, 30, Encoding::Binary);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            repo.put_bytes(&bytes),
            Err(ServerError::Format(_))
        ));
        assert_eq!(repo.stats().blobs, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_invalid_directories_fail_cleanly() {
        let missing = std::env::temp_dir().join(format!(
            "rprism-repo-definitely-missing-{}",
            std::process::id()
        ));
        assert!(matches!(
            TraceRepo::open(&missing, Engine::new(), DEFAULT_CACHE_BUDGET),
            Err(ServerError::Repo(_))
        ));
        // A path that exists but is a file, not a directory.
        let file = std::env::temp_dir().join(format!("rprism-repo-file-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        assert!(matches!(
            TraceRepo::open(&file, Engine::new(), DEFAULT_CACHE_BUDGET),
            Err(ServerError::Repo(_))
        ));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn lru_budget_evicts_handles_but_never_blobs() {
        let dir = temp_repo("lru");
        let blobs: Vec<Vec<u8>> = (0..3)
            .map(|i| sample_bytes(100 + i, 60, Encoding::Binary))
            .collect();
        // Budget fits any two of the three blobs' weights, never all three.
        let sizes: Vec<u64> = blobs.iter().map(|b| b.len() as u64).collect();
        let total: u64 = sizes.iter().sum();
        let budget = total - sizes.iter().min().unwrap() / 2;
        let repo = TraceRepo::open(&dir, Engine::new(), budget).unwrap();
        let hashes: Vec<u64> = blobs
            .iter()
            .map(|b| repo.put_bytes(b).unwrap().0)
            .collect();

        repo.prepared(hashes[0]).unwrap();
        repo.prepared(hashes[1]).unwrap();
        repo.prepared(hashes[0]).unwrap(); // touch: 0 is now most recent
        assert_eq!(repo.stats().prepared_misses, 2);
        assert_eq!(repo.stats().prepared_hits, 1);

        repo.prepared(hashes[2]).unwrap(); // over budget: evicts 1 (LRU), not 0
        let stats = repo.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.prepared_cached_bytes <= budget);
        assert_eq!(stats.blobs, 3, "eviction must never touch the blobs");

        // The touched survivor is still a hit…
        repo.prepared(hashes[0]).unwrap();
        assert_eq!(repo.stats().prepared_hits, 2);
        // …and the evicted trace streams back in from its blob (a miss, not an error),
        // pushing out the now-least-recently-used handle in turn.
        repo.prepared(hashes[1]).unwrap();
        let stats = repo.stats();
        assert_eq!(stats.prepared_misses, 4);
        assert_eq!(stats.evictions, 2);
        repo.prepared(hashes[0]).unwrap();
        assert_eq!(repo.stats().prepared_hits, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
