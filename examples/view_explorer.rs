//! Explores the "web of views" of a single execution: builds every view of a trace and
//! shows how an individual trace entry links into its thread, method and object views
//! (the navigation structure of the paper's §2.4 / Fig. 2).
//!
//! Run with `cargo run --example view_explorer`.

use rprism::Engine;
use rprism_views::ViewKind;

fn main() -> Result<(), rprism::Error> {
    let src = r#"
        class Log extends Object {
            Int n;
            Unit addMsg(Str m) { this.n = this.n + 1; }
        }
        class Worker extends Object {
            Log log;
            Int done;
            Unit work(Int v) {
                this.log.addMsg("working");
                this.done = this.done + v;
            }
        }
        main {
            let log = new Log(0);
            let w = new Worker(log, 0);
            spawn { w.work(10); }
            w.work(1);
            w.work(2);
        }
    "#;

    let engine = Engine::new();
    let prepared = engine.trace_source(src, "explore")?;
    let trace = prepared.trace();
    // The web is an artifact of the prepared handle: built here on first access, shared
    // with every later diff or analysis over the same handle.
    let web = prepared.web();

    let counts = web.count_by_kind();
    println!(
        "trace has {} entries across {} threads; {} views total ({} TH, {} CM, {} TO, {} AO)\n",
        trace.len(),
        trace.thread_ids().len(),
        counts.total(),
        counts.thread,
        counts.method,
        counts.target_object,
        counts.active_object
    );

    for kind in [ViewKind::Thread, ViewKind::Method, ViewKind::TargetObject] {
        println!("{kind} views:");
        for view in web.views_of_kind(kind) {
            println!("  {} — {} entries", view.name, view.len());
        }
        println!();
    }

    // Pick one entry and navigate its links.
    let probe = trace.len() / 2;
    println!("entry #{probe}: {}", trace[probe].render());
    println!("is a member of:");
    for id in web.views_of_entry(probe).iter() {
        let view = web.view_by_id(id);
        let pos = view.position_of(probe).expect("member");
        println!("  {} at position {pos} of {}", view.name, view.len());
    }
    Ok(())
}
