//! Trace containers.
//!
//! A [`Trace`] is a named sequence of [`TraceEntry`]s (the paper's `π = γ1 . … . γn`).
//! [`SegmentedTrace`] mirrors RPrism's "smart trace segmentation" (§5): during tracing of
//! long-running programs, entries are accumulated into bounded segments which are sealed
//! (in the real system, offloaded to disk) once full, keeping the tracing memory bounded;
//! the analysis later walks the segments in order as one logical trace.


use crate::entry::{EntryId, ThreadId, TraceEntry};
use crate::eq::event_eq;

/// Metadata identifying a trace: which program version produced it and under which test
/// case, mirroring the paper's `π^L` / `π^R` superscript naming.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// A human-readable trace name (e.g. `"original/regressing-test"`).
    pub name: String,
    /// The program version label (e.g. `"v2.5.1"`).
    pub version: String,
    /// The test-case label (e.g. `"testXor"`).
    pub test_case: String,
}

impl TraceMeta {
    /// Creates metadata from the three labels.
    pub fn new(
        name: impl Into<String>,
        version: impl Into<String>,
        test_case: impl Into<String>,
    ) -> Self {
        TraceMeta {
            name: name.into(),
            version: version.into(),
            test_case: test_case.into(),
        }
    }
}

/// A complete execution trace.
#[derive(Debug, PartialEq, Default)]
pub struct Trace {
    /// Trace identification.
    pub meta: TraceMeta,
    /// The entries, in execution order; `entries[i].eid == EntryId(i)`.
    pub entries: Vec<TraceEntry>,
}

/// Process-wide count of deep [`Trace`] copies (see [`Trace::clone_count`]).
static TRACE_CLONES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Clone for Trace {
    fn clone(&self) -> Self {
        // Deep-copying a trace is the expense the prepared-handle API exists to avoid,
        // so every copy is counted: tests assert the analysis path performs none.
        TRACE_CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Trace {
            meta: self.meta.clone(),
            entries: self.entries.clone(),
        }
    }
}

impl Trace {
    /// The number of deep `Trace` copies performed by this process so far. Trace clones
    /// are O(trace length); the analysis pipeline shares traces behind handles instead,
    /// and the `no_trace_clone` regression test pins that down with this counter.
    pub fn clone_count() -> u64 {
        TRACE_CLONES.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Creates an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Self {
        Trace {
            meta,
            entries: Vec::new(),
        }
    }

    /// Creates an empty trace with only a name.
    pub fn named(name: impl Into<String>) -> Self {
        Trace::new(TraceMeta::new(name, "", ""))
    }

    /// Appends an entry, assigning it the next entry id.
    ///
    /// The entry's `eid` is overwritten to maintain the invariant that entry ids equal
    /// positions.
    pub fn push(&mut self, mut entry: TraceEntry) -> EntryId {
        let eid = EntryId(self.entries.len() as u64);
        entry.eid = eid;
        self.entries.push(entry);
        eid
    }

    /// The number of entries `|π|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the trace has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the entry with the given id, if in range.
    pub fn get(&self, eid: EntryId) -> Option<&TraceEntry> {
        self.entries.get(eid.index())
    }

    /// Iterates over the entries in order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry> {
        self.entries.iter()
    }

    /// The distinct thread ids appearing in the trace, in order of first appearance.
    pub fn thread_ids(&self) -> Vec<ThreadId> {
        let mut out = Vec::new();
        for e in &self.entries {
            if !out.contains(&e.tid) {
                out.push(e.tid);
            }
        }
        out
    }

    /// The paper's `win(γ, Δ)` helper restricted to the base trace: the entries whose
    /// index lies within `center ± delta`, clamped to the trace bounds.
    pub fn window(&self, center: usize, delta: usize) -> &[TraceEntry] {
        if self.entries.is_empty() {
            return &[];
        }
        let lo = center.saturating_sub(delta);
        let hi = (center + delta + 1).min(self.entries.len());
        &self.entries[lo..hi]
    }

    /// Counts entries `=e`-equal to the given entry (used by tests and statistics).
    pub fn count_matching(&self, entry: &TraceEntry) -> usize {
        self.entries.iter().filter(|e| event_eq(e, entry)).count()
    }

    /// A rough estimate of the in-memory size of the trace in bytes, used by the memory
    /// cost model of the differencing benchmarks.
    pub fn estimated_bytes(&self) -> usize {
        // A conservative flat per-entry estimate: context + event payload.
        self.entries.len() * 160
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = TraceEntry;

    fn index(&self, index: usize) -> &TraceEntry {
        &self.entries[index]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A segment-at-a-time trace store mirroring RPrism's smart trace segmentation (§5).
///
/// Entries are pushed into an open segment; when the segment reaches the configured
/// capacity it is *sealed*. In the paper's implementation sealed segments are serialized
/// to disk and their memory reclaimed; here sealing simply moves the segment into the
/// sealed list (and the benchmarks account for its bytes separately), which preserves the
/// behaviourally relevant property: the set of entries available to the *online* part of
/// the system at any instant is bounded by the segment capacity.
#[derive(Clone, Debug)]
pub struct SegmentedTrace {
    meta: TraceMeta,
    segment_capacity: usize,
    sealed: Vec<Vec<TraceEntry>>,
    open: Vec<TraceEntry>,
    next_eid: u64,
}

impl SegmentedTrace {
    /// Creates a segmented trace with the given per-segment entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `segment_capacity` is zero.
    pub fn new(meta: TraceMeta, segment_capacity: usize) -> Self {
        assert!(segment_capacity > 0, "segment capacity must be positive");
        SegmentedTrace {
            meta,
            segment_capacity,
            sealed: Vec::new(),
            open: Vec::new(),
            next_eid: 0,
        }
    }

    /// Appends an entry, sealing the open segment first if it is full.
    pub fn push(&mut self, mut entry: TraceEntry) -> EntryId {
        if self.open.len() >= self.segment_capacity {
            self.seal();
        }
        let eid = EntryId(self.next_eid);
        self.next_eid += 1;
        entry.eid = eid;
        self.open.push(entry);
        eid
    }

    /// Seals the currently open segment (no-op when it is empty).
    pub fn seal(&mut self) {
        if !self.open.is_empty() {
            let segment = std::mem::take(&mut self.open);
            self.sealed.push(segment);
        }
    }

    /// Total number of entries across all segments.
    pub fn len(&self) -> usize {
        self.next_eid as usize
    }

    /// Returns `true` when no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.next_eid == 0
    }

    /// Number of sealed segments.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// The number of entries currently held in the open (in-memory) segment — the
    /// quantity the segmentation scheme keeps bounded.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Finalizes the store into a single logical [`Trace`] for offline analysis.
    pub fn into_trace(mut self) -> Trace {
        self.seal();
        let mut trace = Trace::new(self.meta);
        for segment in self.sealed {
            for entry in segment {
                trace.push(entry);
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::objrep::{CreationSeq, Loc, ObjRep};
    use rprism_lang::{FieldName, MethodName};

    fn set_entry(tid: u64, field: &str, value: i64) -> TraceEntry {
        TraceEntry::new(
            EntryId(0),
            ThreadId(tid),
            MethodName::toplevel(),
            ObjRep::null(),
            Event::Set {
                target: ObjRep::opaque_object(Loc(1), "NUM", CreationSeq(0)),
                field: FieldName::new(field),
                value: ObjRep::prim("Int", value.to_string()),
            },
        )
    }

    #[test]
    fn push_assigns_sequential_entry_ids() {
        let mut t = Trace::named("test");
        let a = t.push(set_entry(0, "x", 1));
        let b = t.push(set_entry(0, "y", 2));
        assert_eq!(a, EntryId(0));
        assert_eq!(b, EntryId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b).unwrap().eid, b);
        assert!(t.get(EntryId(99)).is_none());
    }

    #[test]
    fn window_clamps_to_bounds() {
        let mut t = Trace::named("w");
        for i in 0..10 {
            t.push(set_entry(0, "x", i));
        }
        assert_eq!(t.window(0, 3).len(), 4);
        assert_eq!(t.window(9, 3).len(), 4);
        assert_eq!(t.window(5, 2).len(), 5);
        assert_eq!(Trace::named("empty").window(0, 5).len(), 0);
    }

    #[test]
    fn thread_ids_in_order_of_first_appearance() {
        let mut t = Trace::named("threads");
        t.push(set_entry(0, "x", 1));
        t.push(set_entry(2, "x", 1));
        t.push(set_entry(0, "x", 1));
        t.push(set_entry(1, "x", 1));
        assert_eq!(
            t.thread_ids(),
            vec![ThreadId(0), ThreadId(2), ThreadId(1)]
        );
    }

    #[test]
    fn count_matching_uses_event_equality() {
        let mut t = Trace::named("count");
        t.push(set_entry(0, "x", 1));
        t.push(set_entry(1, "x", 1));
        t.push(set_entry(0, "x", 2));
        assert_eq!(t.count_matching(&set_entry(9, "x", 1)), 2);
    }

    #[test]
    fn segmented_trace_bounds_open_segment() {
        let mut st = SegmentedTrace::new(TraceMeta::new("seg", "v1", "t1"), 3);
        for i in 0..10 {
            st.push(set_entry(0, "x", i));
            assert!(st.open_len() <= 3, "open segment exceeded capacity");
        }
        assert_eq!(st.len(), 10);
        assert_eq!(st.sealed_segments(), 3);
        let trace = st.into_trace();
        assert_eq!(trace.len(), 10);
        // Entry ids are consecutive after finalization.
        for (i, e) in trace.iter().enumerate() {
            assert_eq!(e.eid.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "segment capacity")]
    fn zero_capacity_segments_rejected() {
        let _ = SegmentedTrace::new(TraceMeta::default(), 0);
    }

    #[test]
    fn estimated_bytes_scales_with_length() {
        let mut t = Trace::named("bytes");
        assert_eq!(t.estimated_bytes(), 0);
        for i in 0..5 {
            t.push(set_entry(0, "x", i));
        }
        assert!(t.estimated_bytes() >= 5 * 100);
    }
}
