//! Tracing and evaluation configuration.

use std::collections::HashSet;

use rprism_lang::ClassName;

use crate::filter::TraceFilter;

/// Configuration of a tracing run.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// The scheduling quantum: how many recorded events a thread executes before the turn
    /// passes to the next runnable thread (deterministic round-robin interleaving).
    pub quantum: usize,
    /// Hard bound on evaluation steps per run (runaway-program guard).
    pub max_steps: u64,
    /// Hard bound on iterations of any single `while` loop execution.
    pub max_loop_iterations: u64,
    /// Per-segment capacity of the segmented trace store (§5 "smart trace segmentation").
    pub segment_capacity: usize,
    /// The pointcut-like filter deciding which events are recorded.
    pub filter: TraceFilter,
    /// Classes whose value representation is forced to be opaque (identity-only objects).
    pub opaque_classes: HashSet<ClassName>,
    /// Maximum depth of recursive value serialization. The default of 1 serializes an
    /// object's *own* primitive fields and treats nested objects as opaque references,
    /// mirroring RPrism's `hashCode`/`toString` approximation (§5): it keeps object
    /// identity stable across versions while still detecting changes to the object's own
    /// state, and prevents a single changed value from polluting the fingerprints of every
    /// container that (transitively) reaches it.
    pub value_repr_depth: usize,
    /// Whether `init` events are recorded for primitive value creation (`new D(d)`,
    /// rule CONS-VAL-E). Off by default: RPrism's pointcuts exclude this noise in practice.
    pub trace_prim_init: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            quantum: 16,
            max_steps: 20_000_000,
            max_loop_iterations: 1_000_000,
            segment_capacity: 64 * 1024,
            filter: TraceFilter::record_all(),
            opaque_classes: HashSet::new(),
            value_repr_depth: 1,
            trace_prim_init: false,
        }
    }
}

impl VmConfig {
    /// Marks a class as opaque (its instances provide no version-stable value
    /// representation, like objects with the default `hashCode`/`toString` in §5).
    pub fn with_opaque_class(mut self, class: impl Into<ClassName>) -> Self {
        self.opaque_classes.insert(class.into());
        self
    }

    /// Replaces the trace filter.
    pub fn with_filter(mut self, filter: TraceFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Sets the scheduling quantum.
    ///
    /// # Panics
    ///
    /// Panics when `quantum` is zero.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        assert!(quantum > 0, "scheduling quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Sets the step limit.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }
}

/// Aggregate statistics of a tracing run, reported alongside the trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total evaluation steps performed (AST nodes evaluated).
    pub steps: u64,
    /// Number of trace entries recorded.
    pub events_recorded: u64,
    /// Number of events suppressed by the trace filter.
    pub events_filtered: u64,
    /// Number of threads spawned (excluding the main thread).
    pub threads_spawned: u64,
    /// Number of heap objects allocated.
    pub objects_allocated: u64,
    /// Deepest call stack observed across all threads.
    pub max_stack_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = VmConfig::default();
        assert!(c.quantum > 0);
        assert!(c.max_steps > 1000);
        assert!(!c.trace_prim_init);
    }

    #[test]
    fn builder_methods_compose() {
        let c = VmConfig::default()
            .with_quantum(4)
            .with_max_steps(100)
            .with_opaque_class("Logger")
            .with_filter(TraceFilter::record_all().exclude_method("toString"));
        assert_eq!(c.quantum, 4);
        assert_eq!(c.max_steps, 100);
        assert!(c.opaque_classes.contains(&ClassName::new("Logger")));
        assert_eq!(c.filter.exclude_methods, vec!["toString".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_rejected() {
        let _ = VmConfig::default().with_quantum(0);
    }
}
