//! A frozen replica of the *pre-interning* views differencer, kept exclusively as the
//! measurement baseline for `perf_smoke` / `BENCH_1.json`.
//!
//! This reproduces how the differencer worked before the keyed-trace refactor: every
//! entry is canonicalized into an owned [`EventKey`] (two `String` clones plus an operand
//! `Vec` per entry), every `=e` comparison walks those owned structures, secondary-view
//! exploration clones `ViewName`s into a per-mismatch `HashSet`, and views are looked up
//! by hashed `ViewName`. Do **not** use this for analysis — it exists so the speedup of
//! the keyed pipeline is measured against the real prior behaviour rather than guessed.

use std::collections::HashSet;
use std::time::Instant;

use rprism_diff::{CostMeter, DiffError, Matching, MemoryBudget, TraceDiffResult, ViewsDiffOptions};
use rprism_trace::{EventKey, Trace};
use rprism_views::correlate::relaxed::same_distance_from_anchor;
use rprism_views::view::{
    active_object_view_name, method_view_name, target_object_view_name, thread_view_name,
};
use rprism_views::{
    correlate_objects, correlate_threads, ViewKind, ViewName, ViewWeb,
};

/// A frozen copy of the seed-era `lcs_dp`: the full `(n+1)×(m+1)` table with **no**
/// common-prefix/suffix stripping (the strip has since been folded into the live
/// `lcs_dp`, so calling that here would under-count the seed's table sizes and compare
/// ops — and its traceback can pick a different, equally-sized matching).
fn seed_lcs_dp<T: PartialEq>(
    left: &[T],
    right: &[T],
    meter: &mut CostMeter,
    budget: MemoryBudget,
) -> Result<Vec<(usize, usize)>, DiffError> {
    let rows = left.len() + 1;
    let cols = right.len() + 1;
    let table_bytes = (rows as u64) * (cols as u64) * std::mem::size_of::<u32>() as u64;
    budget.check(table_bytes)?;
    meter.allocate(table_bytes);

    let mut table = vec![0u32; rows * cols];
    let idx = |i: usize, j: usize| i * cols + j;
    for i in 1..rows {
        for j in 1..cols {
            meter.count_compares(1);
            table[idx(i, j)] = if left[i - 1] == right[j - 1] {
                table[idx(i - 1, j - 1)] + 1
            } else {
                table[idx(i - 1, j)].max(table[idx(i, j - 1)])
            };
        }
    }

    let mut pairs = Vec::with_capacity(table[idx(rows - 1, cols - 1)] as usize);
    let (mut i, mut j) = (rows - 1, cols - 1);
    while i > 0 && j > 0 {
        meter.count_compares(1);
        if left[i - 1] == right[j - 1] {
            pairs.push((i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if table[idx(i - 1, j)] >= table[idx(i, j - 1)] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    pairs.reverse();
    meter.release(table_bytes);
    Ok(pairs)
}

/// The seed-era correlation shape: name-keyed hash maps.
struct SeedCorrelation {
    threads: std::collections::HashMap<rprism_trace::ThreadId, rprism_trace::ThreadId>,
    target_objects: std::collections::HashMap<ViewName, ViewName>,
    active_objects: std::collections::HashMap<ViewName, ViewName>,
}

/// Seed-style views differencing over owned `EventKey`s. Sequential, allocating — the
/// "pre" column of `BENCH_1.json`.
pub fn seed_views_diff(
    left: &Trace,
    right: &Trace,
    options: &ViewsDiffOptions,
) -> TraceDiffResult {
    let left_web = ViewWeb::build(left);
    let right_web = ViewWeb::build(right);
    let start = Instant::now();
    let mut meter = CostMeter::new();
    let correlation = SeedCorrelation {
        threads: correlate_threads(&left_web, &right_web),
        target_objects: correlate_objects(&left_web, &right_web, ViewKind::TargetObject),
        active_objects: correlate_objects(&left_web, &right_web, ViewKind::ActiveObject),
    };

    let left_keys: Vec<EventKey> = left.iter().map(EventKey::of).collect();
    let right_keys: Vec<EventKey> = right.iter().map(EventKey::of).collect();
    meter.allocate(((left_keys.len() + right_keys.len()) * 64) as u64);

    let differ = SeedDiffer {
        left,
        right,
        left_web: &left_web,
        right_web: &right_web,
        correlation: &correlation,
        left_keys: &left_keys,
        right_keys: &right_keys,
        options,
    };

    let mut thread_pairs: Vec<_> = correlation.threads.iter().map(|(l, r)| (*l, *r)).collect();
    thread_pairs.sort();

    let mut matching = Matching::new(left.len(), right.len());
    for (lt, rt) in thread_pairs {
        let lview = left_web.view(&ViewName::Thread(lt));
        let rview = right_web.view(&ViewName::Thread(rt));
        if let (Some(lv), Some(rv)) = (lview, rview) {
            differ.diff_thread_pair(&lv.entries, &rv.entries, &mut matching, &mut meter);
        }
    }

    let sequences = matching.difference_sequences();
    TraceDiffResult {
        matching,
        sequences,
        cost: meter.stats(),
        elapsed: start.elapsed(),
        algorithm: "views-seed-baseline",
    }
}

struct SeedDiffer<'a> {
    left: &'a Trace,
    right: &'a Trace,
    left_web: &'a ViewWeb,
    right_web: &'a ViewWeb,
    correlation: &'a SeedCorrelation,
    left_keys: &'a [EventKey],
    right_keys: &'a [EventKey],
    options: &'a ViewsDiffOptions,
}

impl SeedDiffer<'_> {
    fn diff_thread_pair(
        &self,
        lv: &[usize],
        rv: &[usize],
        matching: &mut Matching,
        meter: &mut CostMeter,
    ) {
        let mut i = 0usize;
        let mut j = 0usize;
        while i < lv.len() && j < rv.len() {
            meter.count_compares(1);
            if self.left_keys[lv[i]] == self.right_keys[rv[j]] {
                matching.push(lv[i], rv[j]);
                i += 1;
                j += 1;
                continue;
            }
            self.explore_secondary_views(lv, rv, i, j, matching, meter);
            match self.next_correspondence(lv, rv, i, j, meter) {
                Some((a, b)) => {
                    i += a;
                    j += b;
                }
                None => {
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    fn correlate_entry_names(
        &self,
        kind: ViewKind,
        le: &rprism_trace::TraceEntry,
        re: &rprism_trace::TraceEntry,
    ) -> Option<(ViewName, ViewName)> {
        match kind {
            ViewKind::Thread => {
                let l = thread_view_name(le);
                let r = thread_view_name(re);
                let (ViewName::Thread(lt), ViewName::Thread(rt)) = (&l, &r) else {
                    return None;
                };
                (self.correlation.threads.get(lt) == Some(rt)).then(|| (l.clone(), r.clone()))
            }
            ViewKind::Method => {
                let l = method_view_name(le);
                let r = method_view_name(re);
                (l == r).then_some((l, r))
            }
            ViewKind::TargetObject => {
                let l = target_object_view_name(le)?;
                let r = target_object_view_name(re)?;
                let lo = le.event.target_object()?;
                let ro = re.event.target_object()?;
                let ok = match self.correlation.target_objects.get(&l) {
                    Some(mapped) => mapped == &r,
                    None => lo.correlates_with(ro),
                };
                ok.then_some((l, r))
            }
            ViewKind::ActiveObject => {
                let l = active_object_view_name(le)?;
                let r = active_object_view_name(re)?;
                let ok = match self.correlation.active_objects.get(&l) {
                    Some(mapped) => mapped == &r,
                    None => le.active.correlates_with(&re.active),
                };
                ok.then_some((l, r))
            }
        }
    }

    fn explore_secondary_views(
        &self,
        lv: &[usize],
        rv: &[usize],
        i: usize,
        j: usize,
        matching: &mut Matching,
        meter: &mut CostMeter,
    ) {
        let delta = self.options.delta as i64;
        let mut explored: HashSet<(ViewName, ViewName)> = HashSet::new();

        for da in -delta..=delta {
            let li = i as i64 + da;
            if li < 0 || li as usize >= lv.len() {
                continue;
            }
            for db in -delta..=delta {
                let rj = j as i64 + db;
                if rj < 0 || rj as usize >= rv.len() {
                    continue;
                }
                let left_idx = lv[li as usize];
                let right_idx = rv[rj as usize];
                let le = &self.left[left_idx];
                let re = &self.right[right_idx];

                for kind in ViewKind::ALL {
                    meter.count_compares(1);
                    let pair = self.correlate_entry_names(kind, le, re);
                    let pair = match pair {
                        Some(p) => Some(p),
                        None if self.options.relaxed_correlation && kind == ViewKind::Method => {
                            if same_distance_from_anchor(i, j, li as usize, rj as usize, 0) {
                                Some((method_view_name(le), method_view_name(re)))
                            } else {
                                None
                            }
                        }
                        None => None,
                    };
                    let Some((lname, rname)) = pair else {
                        continue;
                    };
                    if !explored.insert((lname.clone(), rname.clone())) {
                        continue;
                    }
                    self.windowed_secondary_lcs(
                        &lname, &rname, left_idx, right_idx, matching, meter,
                    );
                }
            }
        }
    }

    fn windowed_secondary_lcs(
        &self,
        left_view: &ViewName,
        right_view: &ViewName,
        left_idx: usize,
        right_idx: usize,
        matching: &mut Matching,
        meter: &mut CostMeter,
    ) {
        let (Some(lsec), Some(rsec)) =
            (self.left_web.view(left_view), self.right_web.view(right_view))
        else {
            return;
        };
        let (Some(lpos), Some(rpos)) = (lsec.position_of(left_idx), rsec.position_of(right_idx))
        else {
            return;
        };
        let lwin = lsec.window(lpos, self.options.window);
        let rwin = rsec.window(rpos, self.options.window);
        let lkeys: Vec<&EventKey> = lwin.iter().map(|&x| &self.left_keys[x]).collect();
        let rkeys: Vec<&EventKey> = rwin.iter().map(|&x| &self.right_keys[x]).collect();
        if let Ok(pairs) = seed_lcs_dp(&lkeys, &rkeys, meter, MemoryBudget::unlimited()) {
            for (wi, wj) in pairs {
                matching.push(lwin[wi], rwin[wj]);
            }
        }
    }

    fn next_correspondence(
        &self,
        lv: &[usize],
        rv: &[usize],
        i: usize,
        j: usize,
        meter: &mut CostMeter,
    ) -> Option<(usize, usize)> {
        for total in 1..=self.options.max_scan_ahead {
            for a in 0..=total {
                let b = total - a;
                let (li, rj) = (i + a, j + b);
                if li >= lv.len() || rj >= rv.len() {
                    continue;
                }
                meter.count_compares(1);
                if self.left_keys[lv[li]] == self.right_keys[rv[rj]] {
                    return Some((a, b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    // Comparing against the deprecated one-shot shim is the point here: the seed
    // replica must match the current cold pipeline bit for bit.
    #![allow(deprecated)]

    use super::*;
    use rprism_diff::views_diff;
    use rprism_lang::parser::parse_program;
    use rprism_trace::TraceMeta;
    use rprism_vm::{run_traced, VmConfig};

    fn trace_of(src: &str, name: &str) -> Trace {
        let program = parse_program(src).unwrap();
        run_traced(&program, TraceMeta::new(name, "v", "c"), VmConfig::default())
            .unwrap()
            .trace
    }

    #[test]
    fn seed_baseline_agrees_with_keyed_pipeline() {
        let src = |v: i64| {
            format!(
                r#"
                class Range extends Object {{ Int min; Int max; }}
                class App extends Object {{
                    Range r; Int hits;
                    Unit setup() {{ this.r = new Range({v}, 127); }}
                    Unit check(Int c) {{
                        if ((c >= this.r.min) && (c <= this.r.max)) {{ this.hits = this.hits + 1; }}
                    }}
                }}
                main {{
                    let a = new App(null, 0);
                    a.setup();
                    a.check(20); a.check(64); a.check(200);
                }}
                "#
            )
        };
        let old = trace_of(&src(32), "old");
        let new = trace_of(&src(1), "new");
        let seed = seed_views_diff(&old, &new, &ViewsDiffOptions::default());
        let keyed = views_diff(&old, &new, &ViewsDiffOptions::default());
        assert_eq!(
            seed.matching.normalized_pairs(),
            keyed.matching.normalized_pairs(),
            "the keyed pipeline must preserve the seed algorithm's result"
        );
        assert_eq!(seed.sequences, keyed.sequences);
    }
}
