//! Longest-common-subsequence algorithms.
//!
//! These are the baselines the paper compares against (§3.2): differencing tools in the
//! `diff` family are founded on LCS, but the standard dynamic-programming algorithm is
//! Θ(n·m) in time *and* — when the subsequence itself (not just its length) must be
//! reconstructed — in space, which is what makes it intractable on long execution traces.
//!
//! Four variants are provided, all generic over the element type and all metering their
//! compare operations and working-set bytes through [`CostMeter`]:
//!
//! * [`lcs_dp`] — the textbook full-table algorithm with traceback (quadratic space;
//!   subject to the [`MemoryBudget`]),
//! * [`lcs_optimized`] — full-table LCS after stripping the common prefix and suffix, the
//!   "optimized version of the LCS algorithm (common-prefix/suffix optimizations)" used as
//!   the baseline in §5.1,
//! * [`lcs_bitparallel`] — a bit-parallel (Myers/Hyyrö-style, u64-word) formulation that
//!   packs one DP row into `⌈n/64⌉` machine words and advances a whole row per left
//!   element with a handful of word operations, falling back to [`lcs_dp`] when the
//!   alphabet exceeds the word-packing scheme. Produces *byte-identical* matchings to
//!   [`lcs_dp`] (same traceback tie-breaks), so it is a drop-in for the exact modes,
//! * [`lcs_hirschberg`] — Hirschberg's linear-space divide-and-conquer algorithm
//!   (cited as \[9\] in the paper: same result, roughly twice the computation).

use crate::cost::{CostMeter, DiffError, MemoryBudget};

/// Selects the exact-LCS kernel used for a matching-producing pass. Both kernels return
/// byte-identical pair lists and meter identical compare counts; they differ only in
/// wall-clock speed and working-set shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LcsKernel {
    /// The classic full-table dynamic program ([`lcs_dp`]).
    Dp,
    /// The bit-parallel word-packed kernel ([`lcs_bitparallel`]), which itself falls back
    /// to the DP when a sub-problem's alphabet exceeds [`MAX_BITPARALLEL_CLASSES`].
    BitParallel,
}

/// Runs the selected exact kernel. Matchings and compare counts are identical across
/// kernels; see [`LcsKernel`].
///
/// # Errors
///
/// Returns [`DiffError::OutOfMemory`] when the kernel's working set exceeds the budget.
pub fn lcs_with_kernel<T: PartialEq>(
    kernel: LcsKernel,
    left: &[T],
    right: &[T],
    meter: &mut CostMeter,
    budget: MemoryBudget,
) -> Result<Vec<(usize, usize)>, DiffError> {
    match kernel {
        LcsKernel::Dp => lcs_dp(left, right, meter, budget),
        LcsKernel::BitParallel => lcs_bitparallel(left, right, meter, budget),
    }
}

/// Computes the length of the LCS using two rolling rows (linear space). Useful on its own
/// and as the building block of [`lcs_hirschberg`].
pub fn lcs_length<T: PartialEq>(left: &[T], right: &[T], meter: &mut CostMeter) -> usize {
    *lcs_length_row(left, right, meter).last().unwrap_or(&0)
}

/// The final DP row of LCS lengths: `row[j]` = LCS length of `left` and `right[..j]`.
fn lcs_length_row<T: PartialEq>(left: &[T], right: &[T], meter: &mut CostMeter) -> Vec<usize> {
    let cols = right.len() + 1;
    let mut prev = vec![0usize; cols];
    let mut curr = vec![0usize; cols];
    meter.allocate((cols * 2 * std::mem::size_of::<usize>()) as u64);
    for l in left {
        for (j, r) in right.iter().enumerate() {
            meter.count_compares(1);
            curr[j + 1] = if l == r {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    meter.release((cols * 2 * std::mem::size_of::<usize>()) as u64);
    prev
}

/// Full dynamic-programming LCS with traceback.
///
/// Identical leading and trailing entries are matched directly *before* the table is
/// sized: the quadratic table only ever covers the differing middle, so both the memory
/// budget check and the compare count shrink with the common prefix/suffix. This matters
/// for the windowed secondary-view LCS calls of the views differencer, whose windows are
/// frequently near-identical.
///
/// Returns the matched index pairs `(left, right)` in ascending order.
///
/// # Errors
///
/// Returns [`DiffError::OutOfMemory`] when the middle-section table exceeds the memory
/// budget — the same failure mode the paper reports for traces beyond ~100K entries.
pub fn lcs_dp<T: PartialEq>(
    left: &[T],
    right: &[T],
    meter: &mut CostMeter,
    budget: MemoryBudget,
) -> Result<Vec<(usize, usize)>, DiffError> {
    let (prefix, suffix) = strip_common(left, right, meter);
    let mut pairs: Vec<(usize, usize)> = (0..prefix).map(|i| (i, i)).collect();
    let mid = lcs_dp_table(
        &left[prefix..left.len() - suffix],
        &right[prefix..right.len() - suffix],
        meter,
        budget,
    )?;
    pairs.extend(mid.into_iter().map(|(i, j)| (i + prefix, j + prefix)));
    pairs.extend(
        (0..suffix)
            .rev()
            .map(|k| (left.len() - 1 - k, right.len() - 1 - k)),
    );
    Ok(pairs)
}

/// Lengths of the common prefix and the (non-overlapping) common suffix, metered one
/// compare per examined element pair — shared by every stripped entry point so their
/// compare accounting is identical.
///
/// The loop conditions guarantee `prefix + suffix <= min(left.len(), right.len())`, so
/// the `len - suffix` slice arithmetic at every call site is subtraction-safe even for
/// empty, one-sided-empty, and all-equal inputs (the degenerate shapes the regression
/// tests below pin).
fn strip_common<T: PartialEq>(left: &[T], right: &[T], meter: &mut CostMeter) -> (usize, usize) {
    let mut prefix = 0usize;
    while prefix < left.len() && prefix < right.len() {
        meter.count_compares(1);
        if left[prefix] == right[prefix] {
            prefix += 1;
        } else {
            break;
        }
    }
    let mut suffix = 0usize;
    while suffix < left.len() - prefix && suffix < right.len() - prefix {
        meter.count_compares(1);
        if left[left.len() - 1 - suffix] == right[right.len() - 1 - suffix] {
            suffix += 1;
        } else {
            break;
        }
    }
    (prefix, suffix)
}

/// The unstripped table core of [`lcs_dp`] (crate-visible so the property tests can
/// compare the stripped entry point against it).
pub(crate) fn lcs_dp_table<T: PartialEq>(
    left: &[T],
    right: &[T],
    meter: &mut CostMeter,
    budget: MemoryBudget,
) -> Result<Vec<(usize, usize)>, DiffError> {
    if left.is_empty() || right.is_empty() {
        return Ok(Vec::new());
    }
    let rows = left.len() + 1;
    let cols = right.len() + 1;
    // Invariant: cells store u32 LCS lengths, so sides beyond u32::MAX entries would
    // silently truncate. Unreachable in practice — such a table is ~2^64 cells and the
    // budget check below rejects it long before — but pinned here for the audit trail.
    debug_assert!(
        left.len() <= u32::MAX as usize && right.len() <= u32::MAX as usize,
        "LCS table cells are u32; inputs beyond u32::MAX entries are unsupported"
    );
    // Each cell stores a u32 LCS length.
    let table_bytes = (rows as u64) * (cols as u64) * std::mem::size_of::<u32>() as u64;
    budget.check(table_bytes)?;
    meter.allocate(table_bytes);

    let mut table = vec![0u32; rows * cols];
    let idx = |i: usize, j: usize| i * cols + j;
    for i in 1..rows {
        for j in 1..cols {
            meter.count_compares(1);
            table[idx(i, j)] = if left[i - 1] == right[j - 1] {
                table[idx(i - 1, j - 1)] + 1
            } else {
                table[idx(i - 1, j)].max(table[idx(i, j - 1)])
            };
        }
    }

    // Traceback from the bottom-right corner.
    let mut pairs = Vec::with_capacity(table[idx(rows - 1, cols - 1)] as usize);
    let (mut i, mut j) = (rows - 1, cols - 1);
    while i > 0 && j > 0 {
        meter.count_compares(1);
        if left[i - 1] == right[j - 1] {
            pairs.push((i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if table[idx(i - 1, j)] >= table[idx(i, j - 1)] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    pairs.reverse();
    meter.release(table_bytes);
    Ok(pairs)
}

/// LCS with the common-prefix/common-suffix optimization — the baseline configuration
/// used in the paper's evaluation. The optimization now lives inside [`lcs_dp`] itself,
/// so this is an alias retained for callers (and measurements) that name the optimized
/// variant explicitly.
///
/// # Errors
///
/// Returns [`DiffError::OutOfMemory`] when the middle-section table exceeds the budget.
pub fn lcs_optimized<T: PartialEq>(
    left: &[T],
    right: &[T],
    meter: &mut CostMeter,
    budget: MemoryBudget,
) -> Result<Vec<(usize, usize)>, DiffError> {
    lcs_dp(left, right, meter, budget)
}

/// Maximum number of distinct equality classes the bit-parallel word-packing scheme
/// handles; sub-problems with larger alphabets fall back to the DP kernel.
pub const MAX_BITPARALLEL_CLASSES: usize = 64;

/// Bit-parallel LCS (Myers/Hyyrö-style) with the same prefix/suffix stripping, matching,
/// and compare accounting as [`lcs_dp`].
///
/// One DP row is packed into `⌈n/64⌉` words; per left element the whole row advances with
/// the carry recurrence `V' = (V + (V & M)) | (V & !M)`, where bit `j` of `V_i` records
/// whether `table[i][j+1] == table[i][j]` and `M` is the match mask of the element's
/// equality class over `right`. Every row's bit-vector is retained (32× smaller than the
/// u32 table), so the traceback can reconstruct any `table[i][j]` as the count of zero
/// bits in `V_i`'s first `j` positions and replay [`lcs_dp`]'s exact tie-break rule — the
/// returned pair list is byte-identical to the DP's, which is what lets the exact diff
/// modes adopt this kernel without perturbing the seed-equivalence oracle.
///
/// Match masks are built from true equality classes (full `PartialEq`, not hashes), so
/// interned-key hash collisions cannot corrupt the matching. Sub-problems whose `right`
/// side has more than [`MAX_BITPARALLEL_CLASSES`] distinct classes fall back to
/// the plain DP table automatically. Compare operations are metered at the DP-equivalent
/// count (`m·n` for the fill plus one per traceback step) so cost accounting — and every
/// invariant the equivalence suites pin on it — is unchanged; the win is wall-clock only.
///
/// # Errors
///
/// Returns [`DiffError::OutOfMemory`] when the retained row bit-vectors (or the DP table,
/// on fallback) exceed the memory budget.
pub fn lcs_bitparallel<T: PartialEq>(
    left: &[T],
    right: &[T],
    meter: &mut CostMeter,
    budget: MemoryBudget,
) -> Result<Vec<(usize, usize)>, DiffError> {
    let (prefix, suffix) = strip_common(left, right, meter);
    let mut pairs: Vec<(usize, usize)> = (0..prefix).map(|i| (i, i)).collect();
    let mid_left = &left[prefix..left.len() - suffix];
    let mid_right = &right[prefix..right.len() - suffix];
    let mid = match lcs_bitparallel_table(mid_left, mid_right, meter, budget)? {
        Some(mid) => mid,
        None => lcs_dp_table(mid_left, mid_right, meter, budget)?,
    };
    pairs.extend(mid.into_iter().map(|(i, j)| (i + prefix, j + prefix)));
    pairs.extend(
        (0..suffix)
            .rev()
            .map(|k| (left.len() - 1 - k, right.len() - 1 - k)),
    );
    Ok(pairs)
}

/// The word-packed core of [`lcs_bitparallel`]. Returns `Ok(None)` when the alphabet of
/// `right` exceeds [`MAX_BITPARALLEL_CLASSES`] equality classes (the caller falls back to
/// the DP core); crate-visible so the property tests can hit the packed path directly.
pub(crate) fn lcs_bitparallel_table<T: PartialEq>(
    left: &[T],
    right: &[T],
    meter: &mut CostMeter,
    budget: MemoryBudget,
) -> Result<Option<Vec<(usize, usize)>>, DiffError> {
    if left.is_empty() || right.is_empty() {
        return Ok(Some(Vec::new()));
    }
    let (m, n) = (left.len(), right.len());
    let words = n.div_ceil(64);

    // Partition `right` into equality classes by full element equality (linear scan over
    // representatives: the class count is capped at 64, so this is O(n·64) worst case and
    // allocation-light). Class discovery is deliberately not metered: on fallback the DP
    // core meters from zero, keeping the total identical to a pure-DP run.
    let mut reps: Vec<usize> = Vec::new();
    let mut masks: Vec<u64> = Vec::new(); // reps.len() stripes of `words` words each
    for (j, r) in right.iter().enumerate() {
        let class = match reps.iter().position(|&rep| right[rep] == *r) {
            Some(c) => c,
            None => {
                if reps.len() == MAX_BITPARALLEL_CLASSES {
                    return Ok(None);
                }
                reps.push(j);
                masks.resize(masks.len() + words, 0);
                reps.len() - 1
            }
        };
        masks[class * words + j / 64] |= 1u64 << (j % 64);
    }

    // Row i's bit-vector: bit j set ⇔ table[i][j+1] == table[i][j], so
    // table[i][j] = number of zero bits among V_i's first j positions. Row 0 is all-ones
    // (the zero row). Slack bits above n in the top word stay all-ones by construction
    // (the `v & !mask` term), so carries out of the valid region are absorbed harmlessly.
    let row_bytes = (m as u64 + 1) * words as u64 * 8;
    let mask_bytes = masks.len() as u64 * 8;
    budget.check(row_bytes + mask_bytes)?;
    meter.allocate(row_bytes + mask_bytes);
    let mut rows = vec![u64::MAX; (m + 1) * words];
    for i in 1..=m {
        let class = reps.iter().position(|&rep| right[rep] == left[i - 1]);
        let (prev_rows, cur_rows) = rows.split_at_mut(i * words);
        let prev = &prev_rows[(i - 1) * words..];
        let cur = &mut cur_rows[..words];
        match class {
            // No occurrence in `right`: M = 0 and the recurrence degenerates to V' = V.
            None => cur.copy_from_slice(prev),
            Some(c) => {
                let mask = &masks[c * words..(c + 1) * words];
                let mut carry = 0u64;
                for w in 0..words {
                    let v = prev[w];
                    let u = v & mask[w];
                    let (sum, c1) = v.overflowing_add(u);
                    let (sum, c2) = sum.overflowing_add(carry);
                    carry = u64::from(c1 | c2);
                    cur[w] = sum | (v & !mask[w]);
                }
            }
        }
    }
    // DP-equivalent fill accounting (see the entry point's docs).
    meter.count_compares(m as u64 * n as u64);

    // table[i][j], reconstructed as the zero-bit count of V_i's first j positions.
    let cell = |i: usize, j: usize| -> u32 {
        let row = &rows[i * words..(i + 1) * words];
        let mut zeros = 0u32;
        for word in row.iter().take(j / 64) {
            zeros += word.count_zeros();
        }
        let rem = j % 64;
        if rem > 0 {
            zeros += (!row[j / 64] & ((1u64 << rem) - 1)).count_ones();
        }
        zeros
    };

    // Traceback replaying lcs_dp_table's exact rule: diagonal on equality, else prefer
    // moving up on ties — identical decisions, identical pair list.
    let mut pairs = Vec::with_capacity(cell(m, n) as usize);
    let (mut i, mut j) = (m, n);
    while i > 0 && j > 0 {
        meter.count_compares(1);
        if left[i - 1] == right[j - 1] {
            pairs.push((i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if cell(i - 1, j) >= cell(i, j - 1) {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    pairs.reverse();
    meter.release(row_bytes + mask_bytes);
    Ok(Some(pairs))
}

/// Hirschberg's linear-space LCS.
///
/// Produces the same kind of matched pair list as [`lcs_dp`] while never materializing the
/// quadratic table, at the price of roughly doubling the number of compare operations.
pub fn lcs_hirschberg<T: PartialEq + Clone>(
    left: &[T],
    right: &[T],
    meter: &mut CostMeter,
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    hirschberg_rec(left, right, 0, 0, meter, &mut pairs);
    pairs.sort_unstable();
    pairs
}

fn hirschberg_rec<T: PartialEq + Clone>(
    left: &[T],
    right: &[T],
    left_off: usize,
    right_off: usize,
    meter: &mut CostMeter,
    pairs: &mut Vec<(usize, usize)>,
) {
    if left.is_empty() || right.is_empty() {
        return;
    }
    if left.len() == 1 {
        for (j, r) in right.iter().enumerate() {
            meter.count_compares(1);
            if left[0] == *r {
                pairs.push((left_off, right_off + j));
                return;
            }
        }
        return;
    }

    let mid = left.len() / 2;
    let score_l = lcs_length_row(&left[..mid], right, meter);
    let rev_left: Vec<T> = left[mid..].iter().rev().cloned().collect();
    let rev_right: Vec<T> = right.iter().rev().cloned().collect();
    let score_r = lcs_length_row(&rev_left, &rev_right, meter);

    // Find the split point of `right` maximizing the combined score.
    let mut best_j = 0usize;
    let mut best = 0usize;
    for j in 0..=right.len() {
        let total = score_l[j] + score_r[right.len() - j];
        if total > best {
            best = total;
            best_j = j;
        }
    }

    hirschberg_rec(&left[..mid], &right[..best_j], left_off, right_off, meter, pairs);
    hirschberg_rec(
        &left[mid..],
        &right[best_j..],
        left_off + mid,
        right_off + best_j,
        meter,
        pairs,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn pairs_to_string(pairs: &[(usize, usize)], left: &[char]) -> String {
        pairs.iter().map(|(i, _)| left[*i]).collect()
    }

    #[test]
    fn dp_finds_classic_lcs() {
        let left = chars("ABCBDAB");
        let right = chars("BDCABA");
        let mut meter = CostMeter::new();
        let pairs = lcs_dp(&left, &right, &mut meter, MemoryBudget::unlimited()).unwrap();
        assert_eq!(pairs.len(), 4);
        let s = pairs_to_string(&pairs, &left);
        assert!(["BDAB", "BCAB", "BCBA"].contains(&s.as_str()), "got {s}");
        assert!(meter.stats().compare_ops >= (left.len() * right.len()) as u64);
    }

    #[test]
    fn dp_pairs_are_strictly_increasing_on_both_sides() {
        let left = chars("XMJYAUZ");
        let right = chars("MZJAWXU");
        let mut meter = CostMeter::new();
        let pairs = lcs_dp(&left, &right, &mut meter, MemoryBudget::unlimited()).unwrap();
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        for (i, j) in &pairs {
            assert_eq!(left[*i], right[*j]);
        }
    }

    #[test]
    fn identical_sequences_match_completely() {
        let xs = chars("HELLO");
        let mut meter = CostMeter::new();
        let pairs = lcs_optimized(&xs, &xs, &mut meter, MemoryBudget::unlimited()).unwrap();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        // Prefix optimization should avoid the quadratic cost entirely.
        assert!(meter.stats().compare_ops <= 2 * xs.len() as u64);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let empty: Vec<char> = vec![];
        let mut meter = CostMeter::new();
        assert!(lcs_dp(&empty, &empty, &mut meter, MemoryBudget::unlimited())
            .unwrap()
            .is_empty());
        assert!(lcs_hirschberg(&empty, &chars("AB"), &mut meter).is_empty());
        assert_eq!(lcs_length(&chars("AB"), &empty, &mut meter), 0);
    }

    #[test]
    fn optimized_matches_dp_result_length() {
        let left = chars("THEQUICKBROWNFOX");
        let right = chars("THELAZYBROWNDOG");
        let mut m1 = CostMeter::new();
        let mut m2 = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m1, MemoryBudget::unlimited()).unwrap();
        let opt = lcs_optimized(&left, &right, &mut m2, MemoryBudget::unlimited()).unwrap();
        assert_eq!(dp.len(), opt.len());
        for (i, j) in &opt {
            assert_eq!(left[*i], right[*j]);
        }
        // The shared prefix "THE" lets the optimized variant do less work.
        assert!(m2.stats().compare_ops <= m1.stats().compare_ops);
    }

    #[test]
    fn hirschberg_matches_dp_length() {
        let left = chars("ABCBDABXYZPQRS");
        let right = chars("BDCABAXYZQRST");
        let mut m1 = CostMeter::new();
        let mut m2 = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m1, MemoryBudget::unlimited()).unwrap();
        let h = lcs_hirschberg(&left, &right, &mut m2);
        assert_eq!(dp.len(), h.len());
        for (i, j) in &h {
            assert_eq!(left[*i], right[*j]);
        }
        for w in h.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn hirschberg_never_allocates_quadratic_memory() {
        let left: Vec<u32> = (0..500).map(|i| i % 17).collect();
        let right: Vec<u32> = (0..480).map(|i| (i * 3) % 17).collect();
        let mut meter = CostMeter::new();
        let _ = lcs_hirschberg(&left, &right, &mut meter);
        // Peak is a handful of rows, nowhere near 500*480*4 bytes.
        assert!(meter.stats().peak_bytes < 200_000);
    }

    #[test]
    fn dp_respects_memory_budget() {
        // No common prefix or suffix, so the full quadratic table is required.
        let left: Vec<u32> = (0..2000).collect();
        let right: Vec<u32> = (0..2000).rev().collect();
        let mut meter = CostMeter::new();
        let result = lcs_dp(&left, &right, &mut meter, MemoryBudget::bytes(1024));
        assert!(matches!(result, Err(DiffError::OutOfMemory { .. })));
    }

    #[test]
    fn dp_strips_prefix_and_suffix_before_sizing_the_table() {
        // Identical sequences never touch the table, so even a tiny budget succeeds.
        let xs: Vec<u32> = (0..5000).collect();
        let mut meter = CostMeter::new();
        let pairs = lcs_dp(&xs, &xs, &mut meter, MemoryBudget::bytes(64)).unwrap();
        assert_eq!(pairs.len(), xs.len());
        assert!(meter.stats().peak_bytes < 64);

        // A single mid-sequence difference shrinks the table to the differing middle.
        let mut ys = xs.clone();
        ys[2500] = 999_999;
        let mut meter2 = CostMeter::new();
        let pairs2 = lcs_dp(&xs, &ys, &mut meter2, MemoryBudget::bytes(4096)).unwrap();
        assert_eq!(pairs2.len(), xs.len() - 1);
        assert!(meter2.stats().peak_bytes <= 4096);
    }

    #[test]
    fn bitparallel_matches_dp_pairs_exactly() {
        let cases = [
            ("ABCBDAB", "BDCABA"),
            ("XMJYAUZ", "MZJAWXU"),
            ("THEQUICKBROWNFOX", "THELAZYBROWNDOG"),
            ("AAAA", "AA"),
            ("ABAB", "BABA"),
            ("", "ABC"),
            ("ABC", ""),
            ("SAME", "SAME"),
        ];
        for (l, r) in cases {
            let (left, right) = (chars(l), chars(r));
            let mut m_dp = CostMeter::new();
            let mut m_bp = CostMeter::new();
            let dp = lcs_dp(&left, &right, &mut m_dp, MemoryBudget::unlimited()).unwrap();
            let bp = lcs_bitparallel(&left, &right, &mut m_bp, MemoryBudget::unlimited()).unwrap();
            assert_eq!(dp, bp, "pair lists diverged on ({l:?}, {r:?})");
            assert_eq!(
                m_dp.stats().compare_ops,
                m_bp.stats().compare_ops,
                "compare accounting diverged on ({l:?}, {r:?})"
            );
        }
    }

    #[test]
    fn bitparallel_handles_multi_word_rows() {
        // 150 columns spans three u64 words, exercising carry propagation across words.
        let left: Vec<u32> = (0..140).map(|i| i % 7).collect();
        let right: Vec<u32> = (0..150).map(|i| (i * 5 + 2) % 7).collect();
        let mut m_dp = CostMeter::new();
        let mut m_bp = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m_dp, MemoryBudget::unlimited()).unwrap();
        let bp = lcs_bitparallel(&left, &right, &mut m_bp, MemoryBudget::unlimited()).unwrap();
        assert_eq!(dp, bp);
        assert_eq!(m_dp.stats().compare_ops, m_bp.stats().compare_ops);
    }

    #[test]
    fn bitparallel_falls_back_beyond_64_classes() {
        // 80 distinct symbols on the right: the packed core refuses and the entry point
        // silently routes through the DP, still producing identical pairs.
        let left: Vec<u32> = (0..80).rev().collect();
        let right: Vec<u32> = (0..80).collect();
        let mut meter = CostMeter::new();
        let packed =
            lcs_bitparallel_table(&left, &right, &mut meter, MemoryBudget::unlimited()).unwrap();
        assert!(packed.is_none(), "packed core must refuse >64 classes");
        let mut m_dp = CostMeter::new();
        let mut m_bp = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m_dp, MemoryBudget::unlimited()).unwrap();
        let bp = lcs_bitparallel(&left, &right, &mut m_bp, MemoryBudget::unlimited()).unwrap();
        assert_eq!(dp, bp);
        assert_eq!(m_dp.stats().compare_ops, m_bp.stats().compare_ops);
    }

    #[test]
    fn bitparallel_respects_memory_budget() {
        let left: Vec<u32> = (0..2000).map(|i| i % 50).collect();
        let right: Vec<u32> = (0..2000).map(|i| (i * 7 + 1) % 50).collect();
        let mut meter = CostMeter::new();
        let result = lcs_bitparallel(&left, &right, &mut meter, MemoryBudget::bytes(1024));
        assert!(matches!(result, Err(DiffError::OutOfMemory { .. })));
    }

    #[test]
    fn kernel_selector_routes_to_both_kernels() {
        let left = chars("ABCBDAB");
        let right = chars("BDCABA");
        let mut m1 = CostMeter::new();
        let mut m2 = CostMeter::new();
        let dp = lcs_with_kernel(LcsKernel::Dp, &left, &right, &mut m1, MemoryBudget::unlimited())
            .unwrap();
        let bp = lcs_with_kernel(
            LcsKernel::BitParallel,
            &left,
            &right,
            &mut m2,
            MemoryBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(dp, bp);
    }

    // Degenerate-shape regressions for the stripped length arithmetic: each pins the
    // exact matching (not just its length) so any future change to the prefix/suffix
    // bookkeeping that shifts an index trips immediately.

    #[test]
    fn degenerate_all_equal_strips_to_empty_table() {
        // All-equal traces: everything is prefix, the middle is empty-after-strip.
        for kernel in [LcsKernel::Dp, LcsKernel::BitParallel] {
            let xs: Vec<u32> = vec![7; 100];
            let mut meter = CostMeter::new();
            let pairs =
                lcs_with_kernel(kernel, &xs, &xs, &mut meter, MemoryBudget::bytes(64)).unwrap();
            let expected: Vec<(usize, usize)> = (0..100).map(|i| (i, i)).collect();
            assert_eq!(pairs, expected, "{kernel:?}");
        }
    }

    #[test]
    fn degenerate_one_sided_empty_matches_nothing() {
        for kernel in [LcsKernel::Dp, LcsKernel::BitParallel] {
            let xs: Vec<u32> = (0..10).collect();
            let empty: Vec<u32> = Vec::new();
            let mut meter = CostMeter::new();
            assert!(
                lcs_with_kernel(kernel, &xs, &empty, &mut meter, MemoryBudget::unlimited())
                    .unwrap()
                    .is_empty(),
                "{kernel:?}: left-nonempty/right-empty"
            );
            assert!(
                lcs_with_kernel(kernel, &empty, &xs, &mut meter, MemoryBudget::unlimited())
                    .unwrap()
                    .is_empty(),
                "{kernel:?}: left-empty/right-nonempty"
            );
        }
    }

    #[test]
    fn degenerate_prefix_swallows_shorter_side() {
        // One side is a strict prefix of the other: after stripping, one side is empty
        // while the other still has entries — `len - suffix` must stay subtraction-safe
        // and the matching must cover exactly the shorter side.
        for kernel in [LcsKernel::Dp, LcsKernel::BitParallel] {
            let long: Vec<u32> = (0..50).collect();
            let short: Vec<u32> = (0..30).collect();
            let mut meter = CostMeter::new();
            let pairs =
                lcs_with_kernel(kernel, &long, &short, &mut meter, MemoryBudget::bytes(64))
                    .unwrap();
            let expected: Vec<(usize, usize)> = (0..30).map(|i| (i, i)).collect();
            assert_eq!(pairs, expected, "{kernel:?}");
        }
    }

    #[test]
    fn degenerate_shared_prefix_and_suffix_overlap_safely() {
        // left = right with one element removed: prefix+suffix stripping covers the
        // whole shorter side; the suffix loop must not re-claim prefix elements.
        for kernel in [LcsKernel::Dp, LcsKernel::BitParallel] {
            let long: Vec<u32> = (0..21).collect();
            let short: Vec<u32> = (0..21).filter(|&x| x != 10).collect();
            let mut meter = CostMeter::new();
            let pairs =
                lcs_with_kernel(kernel, &long, &short, &mut meter, MemoryBudget::unlimited())
                    .unwrap();
            assert_eq!(pairs.len(), 20, "{kernel:?}");
            for (i, j) in &pairs {
                assert_eq!(long[*i], short[*j], "{kernel:?}");
            }
        }
    }

    #[test]
    fn length_agrees_with_dp() {
        let left = chars("AGGTAB");
        let right = chars("GXTXAYB");
        let mut meter = CostMeter::new();
        let len = lcs_length(&left, &right, &mut meter);
        let pairs = lcs_dp(&left, &right, &mut meter, MemoryBudget::unlimited()).unwrap();
        assert_eq!(len, 4);
        assert_eq!(pairs.len(), 4);
    }
}
