//! # rprism-check
//!
//! Semantics-aware static analysis over execution traces: the trace model of
//! *Semantics-Aware Trace Analysis* (PLDI 2009) carries enough structure — call/return
//! nesting, thread forks with parentage snapshots, object identities with per-class
//! creation sequences (§2.2–§2.3, §3.1) — that a single streaming pass can answer "is
//! this trace internally consistent?" before (or instead of) a full differencing run.
//!
//! Two rule families (see [`rules`] for the registry):
//!
//! * **well-formedness** — per-thread call/return balance and context consistency,
//!   define-before-use and no-use-after-death of object identities, fork/end
//!   discipline, stack-snapshot consistency against the reconstructed call stack;
//! * **concurrency** — a vector-clock happens-before construction over program order
//!   plus fork edges, flagging conflicting same-field accesses that no edge orders
//!   (a lightweight race detector in the FastTrack tradition, scoped to the trace
//!   model).
//!
//! The engine ([`Checker`]) is a streaming fold: feed it entries one at a time and its
//! state stays O(threads + live objects) — it never materializes the trace. Reports
//! ([`CheckReport`]) are deterministic (diagnostics sorted by `(entry_index, rule_id)`,
//! renderers free of paths and timestamps), so checking the same bytes locally and on a
//! trace server produces byte-identical output.
//!
//! ```
//! use rprism_check::{check_trace, fixtures};
//!
//! // A well-formed trace checks clean …
//! assert!(check_trace(&fixtures::clean_trace()).is_clean());
//!
//! // … and a trace with a seeded race is flagged by the happens-before detector.
//! let report = check_trace(&fixtures::violating("data-race"));
//! assert_eq!(report.diagnostics.len(), 1);
//! assert_eq!(report.diagnostics[0].rule_id, "data-race");
//! ```

pub mod checker;
pub mod diag;
pub mod fixtures;
pub mod rules;

pub use checker::{check_trace, check_trace_with, CheckConfig, Checker};
pub use diag::{CheckReport, Diagnostic, ParseSeverityError, Severity};
pub use rules::{rule, RuleFamily, RuleInfo, RULES};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_deterministic_across_runs() {
        let trace = fixtures::violating("data-race");
        let a = check_trace(&trace);
        let b = check_trace(&trace);
        assert_eq!(a, b);
        assert_eq!(a.render_human(), b.render_human());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn severity_overrides_apply() {
        let config = CheckConfig::default()
            .with_severity("unclosed-call", Severity::Error)
            .unwrap();
        let report = check_trace_with(&fixtures::violating("unclosed-call"), config);
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        assert!(CheckConfig::default()
            .with_severity("no-such-rule", Severity::Info)
            .is_err());
    }

    #[test]
    fn the_diagnostic_cap_bounds_memory_and_counts_suppressions() {
        let mut config = CheckConfig::default();
        config.max_diagnostics = 1;
        // Two independent defects: an undefined object and a second undefined object.
        use rprism_lang::{FieldName, MethodName};
        use rprism_trace::{
            CreationSeq, EntryId, Event, Loc, ObjRep, ThreadId, Trace, TraceEntry,
        };
        let mut trace = Trace::named("cap");
        for seq in 0..3u64 {
            trace.push(TraceEntry::new(
                EntryId(0),
                ThreadId(0),
                MethodName::toplevel(),
                ObjRep::null(),
                Event::Get {
                    target: ObjRep::opaque_object(Loc(9 + seq), "Ghost", CreationSeq(seq)),
                    field: FieldName::new("f"),
                    value: ObjRep::prim("Int", "1"),
                },
            ));
        }
        let report = check_trace_with(&trace, config);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.suppressed >= 2, "suppressed: {}", report.suppressed);
        assert!(!report.is_clean());
    }

    #[test]
    fn worst_and_deny_counting() {
        let report = check_trace(&fixtures::violating("unclosed-call"));
        assert_eq!(report.worst(), Some(Severity::Info));
        assert_eq!(report.count_at_least(Severity::Warning), 0);
        assert_eq!(report.count_at_least(Severity::Info), 1);
    }
}
