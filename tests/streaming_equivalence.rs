//! End-to-end equivalence of the streaming prepare pipeline: on all four §5.2 case
//! studies, handles produced by `Engine::load_prepared` (one bounded-memory pass, no
//! materialized trace) are indistinguishable from load-then-prepare handles — same
//! matchings, same difference sequences, same `DiffSignature` sets, same deterministic
//! compare counts — for plain diffs and for the full regression-cause analysis, under
//! both on-disk encodings and with both the parallel and the sequential pipeline.

use rprism::{Encoding, Engine, PreparedTrace, RegressionInput};
use rprism_workloads::casestudies;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rprism-stream-eq-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn streamed_handles_match_load_then_prepare_on_all_case_studies() {
    for encoding in [Encoding::Binary, Encoding::Jsonl] {
        let dir = temp_dir(&encoding.to_string());
        for parallel in [true, false] {
            let engine = Engine::builder().parallel(parallel).build();
            for scenario in casestudies::all() {
                let traces = scenario.trace_all().unwrap();
                let paths = traces.export(&dir, &scenario.name, encoding).unwrap();

                let full: Vec<PreparedTrace> =
                    paths.iter().map(|p| engine.load_trace(p).unwrap()).collect();
                let streamed: Vec<PreparedTrace> = paths
                    .iter()
                    .map(|p| engine.load_prepared(p).unwrap())
                    .collect();
                for (f, s) in full.iter().zip(&streamed) {
                    assert!(s.is_streamed());
                    assert_eq!(f.len(), s.len());
                    assert_eq!(f.meta(), s.meta());
                }

                // Plain diff of the suspected pair.
                let full_diff = engine.diff(&full[0], &full[1]).unwrap();
                let streamed_diff = engine.diff(&streamed[0], &streamed[1]).unwrap();
                assert_eq!(
                    full_diff.matching.normalized_pairs(),
                    streamed_diff.matching.normalized_pairs(),
                    "{} ({encoding}, parallel={parallel}): matchings diverged",
                    scenario.name
                );
                assert_eq!(
                    full_diff.sequences, streamed_diff.sequences,
                    "{} ({encoding}, parallel={parallel}): sequences diverged",
                    scenario.name
                );
                assert_eq!(
                    full_diff.cost.compare_ops, streamed_diff.cost.compare_ops,
                    "{} ({encoding}, parallel={parallel}): compare counts diverged",
                    scenario.name
                );

                // Full regression-cause analysis over all four roles: identical
                // difference-signature sets (A, B, C, D), verdicts and costs.
                let as_input = |handles: &[PreparedTrace]| {
                    RegressionInput::new(
                        handles[0].clone(),
                        handles[1].clone(),
                        handles[2].clone(),
                        handles[3].clone(),
                    )
                    .with_mode(scenario.analysis_mode())
                };
                let full_report = engine.analyze(&as_input(&full)).unwrap();
                let streamed_report = engine.analyze(&as_input(&streamed)).unwrap();
                assert_eq!(
                    full_report.suspected, streamed_report.suspected,
                    "{} ({encoding}, parallel={parallel}): suspected sets diverged",
                    scenario.name
                );
                assert_eq!(full_report.expected, streamed_report.expected);
                assert_eq!(full_report.regression, streamed_report.regression);
                assert_eq!(
                    full_report.candidates, streamed_report.candidates,
                    "{} ({encoding}, parallel={parallel}): candidate causes diverged",
                    scenario.name
                );
                assert_eq!(full_report.compare_ops, streamed_report.compare_ops);
                assert_eq!(
                    full_report
                        .sequences
                        .iter()
                        .map(|s| s.regression_related)
                        .collect::<Vec<_>>(),
                    streamed_report
                        .sequences
                        .iter()
                        .map(|s| s.regression_related)
                        .collect::<Vec<_>>(),
                    "{} ({encoding}, parallel={parallel}): sequence verdicts diverged",
                    scenario.name
                );

                // Reports remain renderable without the full traces.
                let rendered = engine.render_report(&streamed_report, &as_input(&streamed));
                assert!(rendered.contains("|A| suspected"));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
