//! The streaming rule engine: a single fold over trace entries.
//!
//! [`Checker`] consumes entries one at a time ([`Checker::observe`]) and accumulates
//! state that is O(threads + live objects), never the entries themselves: per-thread
//! reconstructed call stacks, the object-identity table, per-(object, field) access
//! metadata and per-thread vector clocks. [`Checker::finish`] flushes the end-of-trace
//! rules (missing ends, still-open calls) and returns the sorted [`CheckReport`].
//!
//! The engine is deliberately *cascade-averse*: when a rule fires, the state is repaired
//! to the most plausible reading (a mismatched return still pops its frame, an undefined
//! identity is assumed defined from then on, a racy variable reports once) so that one
//! defect yields one diagnostic, not an avalanche. The negative fixtures in
//! [`crate::fixtures`] and the mutation tests in the workspace suite pin this down.

use std::collections::{HashMap, HashSet};

use rprism_trace::{
    intern, CreationSeq, Event, Loc, ObjRep, StackSnapshot, Symbol, ThreadId, Trace,
    TraceEntry,
};

use crate::diag::{CheckReport, Diagnostic, Severity};
use crate::rules;

/// Tuning knobs for a check run.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Per-rule severity overrides, applied over the registry defaults.
    overrides: Vec<(String, Severity)>,
    /// Diagnostics kept before further findings are counted but dropped
    /// (keeps memory bounded on adversarial input).
    pub max_diagnostics: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            overrides: Vec::new(),
            max_diagnostics: 10_000,
        }
    }
}

impl CheckConfig {
    /// Overrides the severity of `rule_id`. Returns an error for unknown rules.
    pub fn with_severity(mut self, rule_id: &str, severity: Severity) -> Result<Self, String> {
        if rules::rule(rule_id).is_none() {
            return Err(format!("unknown rule id {rule_id:?}"));
        }
        self.overrides.retain(|(id, _)| id != rule_id);
        self.overrides.push((rule_id.to_owned(), severity));
        Ok(self)
    }

    /// The severity overrides in effect, in insertion order (the shape remote callers
    /// ship over the wire to reconstruct an equivalent configuration).
    pub fn overrides(&self) -> &[(String, Severity)] {
        &self.overrides
    }

    /// The effective severity of a rule under this configuration.
    pub fn severity_of(&self, rule_id: &str) -> Severity {
        self.overrides
            .iter()
            .find(|(id, _)| id == rule_id)
            .map(|(_, sev)| *sev)
            .unwrap_or_else(|| rules::default_severity(rule_id))
    }
}

/// The identity of an object *within one trace*, for comparing "the same object" across
/// entries. Value fingerprints are deliberately excluded: they change as object state
/// mutates, while class, heap location and creation sequence stay fixed.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Ident {
    class: Symbol,
    loc: Option<Loc>,
    seq: Option<CreationSeq>,
}

impl Ident {
    fn of(rep: &ObjRep) -> Ident {
        Ident {
            class: intern(&rep.class),
            loc: rep.loc,
            seq: rep.creation_seq,
        }
    }

    /// The (class, seq) key for heap objects with a tracked identity.
    fn key(&self) -> Option<ObjKey> {
        self.seq.map(|seq| (self.class, seq.0))
    }

    fn describe(&self) -> String {
        match self.seq {
            Some(seq) => format!("{}#{}", self.class.as_str(), seq.0),
            None => self.class.as_str().to_owned(),
        }
    }
}

/// (class symbol, per-class creation sequence number): the cross-entry object identity.
type ObjKey = (Symbol, u64);

/// One reconstructed open call.
struct OpenCall {
    method: Symbol,
    active: Ident,
    entry_index: usize,
    /// A context mismatch inside this frame was already reported (one per frame).
    context_reported: bool,
}

/// Per-thread reconstruction state.
struct ThreadState {
    stack: Vec<OpenCall>,
    /// The thread's root receiver, learned from its first root-level entry.
    root_active: Option<Ident>,
    root_context_reported: bool,
    last_entry: usize,
    ended_at: Option<usize>,
    after_end_reported: bool,
    /// Length of the thread's fork-parentage chain (0 for main and orphans).
    ancestry_len: usize,
    /// Dense index into the vector-clock table.
    slot: usize,
}

/// What a fork recorded about a child thread, pending the child's first entry.
struct ForkInfo {
    entry_index: usize,
    ancestry_len: usize,
}

/// Tracked lifetime of one object identity.
struct ObjState {
    loc: Option<Loc>,
    def_index: usize,
    /// Entry index of the `init` that reused this object's location, if any.
    killed_at: Option<usize>,
    /// The binding was synthesized after a define-before-use report (not a real init).
    assumed: bool,
    reported_dead: bool,
    reported_confused: bool,
}

/// Last-access metadata for one (object, field) variable.
struct VarState {
    last_write: Option<Access>,
    /// Most recent read per thread slot since the last write.
    reads: Vec<Access>,
    raced: bool,
}

#[derive(Clone, Copy)]
struct Access {
    slot: usize,
    clock: u64,
    entry_index: usize,
}

/// The streaming rule engine. See the module docs for the design.
pub struct Checker {
    config: CheckConfig,
    index: usize,
    diagnostics: Vec<Diagnostic>,
    suppressed: usize,

    threads: HashMap<ThreadId, ThreadState>,
    thread_order: Vec<ThreadId>,
    forked: HashMap<ThreadId, ForkInfo>,

    objects: HashMap<ObjKey, ObjState>,
    by_loc: HashMap<Loc, ObjKey>,
    class_last_seq: HashMap<Symbol, u64>,
    undefined_reported: HashSet<ObjKey>,

    vars: HashMap<(ObjKey, Symbol), VarState>,
    clocks: Vec<Vec<u64>>,
    /// Clock slots handed out (at fork time) to threads with no entries yet.
    pending_slots: Vec<(ThreadId, usize)>,

    eid_disorder_reported: bool,
    empty_name_reported: bool,
    sym_main: Symbol,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

impl Checker {
    /// A checker with the default configuration.
    pub fn new() -> Self {
        Checker::with_config(CheckConfig::default())
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: CheckConfig) -> Self {
        Checker {
            config,
            index: 0,
            diagnostics: Vec::new(),
            suppressed: 0,
            threads: HashMap::new(),
            thread_order: Vec::new(),
            forked: HashMap::new(),
            objects: HashMap::new(),
            by_loc: HashMap::new(),
            class_last_seq: HashMap::new(),
            undefined_reported: HashSet::new(),
            vars: HashMap::new(),
            clocks: Vec::new(),
            pending_slots: Vec::new(),
            eid_disorder_reported: false,
            empty_name_reported: false,
            sym_main: intern("<main>"),
        }
    }

    /// Number of entries observed so far.
    pub fn entries_seen(&self) -> usize {
        self.index
    }

    /// Number of diagnostics raised **so far** at or above `floor` — the mid-stream
    /// view behind incremental deny gates (a live watch aborting on the first denied
    /// diagnostic instead of after the stream ends). [`Checker::finish`] can still add
    /// end-of-trace diagnostics on top, so a zero here is provisional, never final.
    pub fn raised_at_least(&self, floor: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= floor)
            .count()
    }

    fn report(&mut self, rule_id: &'static str, entry_index: usize, related: Vec<usize>, message: String) {
        if self.diagnostics.len() >= self.config.max_diagnostics {
            self.suppressed += 1;
            return;
        }
        let severity = self.config.severity_of(rule_id);
        self.diagnostics.push(Diagnostic {
            rule_id,
            severity,
            entry_index,
            message,
            related_entries: related,
        });
    }

    /// Feeds one entry to the engine. Entries must arrive in trace order.
    pub fn observe(&mut self, entry: &TraceEntry) {
        let idx = self.index;
        self.index += 1;

        // entry-id-order: eids name positions. Reported once per trace — after one slip
        // every subsequent entry would mismatch too.
        if !self.eid_disorder_reported && entry.eid.index() != idx {
            self.eid_disorder_reported = true;
            self.report(
                rules::ENTRY_ID_ORDER.id,
                idx,
                vec![],
                format!("entry at position {idx} carries eid {}", entry.eid.0),
            );
        }

        self.check_names(entry, idx);

        let tid = entry.tid;
        self.ensure_thread(tid, idx);
        {
            let state = self.threads.get_mut(&tid).expect("thread state just ensured");
            // thread-after-end: the thread is a zombie; report once, then ignore it.
            if let Some(end_idx) = state.ended_at {
                if !state.after_end_reported {
                    state.after_end_reported = true;
                    self.report(
                        rules::THREAD_AFTER_END.id,
                        idx,
                        vec![end_idx],
                        format!("thread {tid} emits entries after its end event"),
                    );
                }
                return;
            }
            state.last_entry = idx;
        }

        match &entry.event {
            Event::Call { target, method, args } => {
                self.check_context(entry, idx);
                self.check_use(target, idx);
                for arg in args {
                    self.check_use(arg, idx);
                }
                let call = OpenCall {
                    method: intern(method.as_str()),
                    active: Ident::of(target),
                    entry_index: idx,
                    context_reported: false,
                };
                self.threads.get_mut(&tid).expect("thread exists").stack.push(call);
            }
            Event::Return { target, method, value } => {
                let method = intern(method.as_str());
                let popped = {
                    let state = self.threads.get_mut(&tid).expect("thread exists");
                    state.stack.pop()
                };
                match popped {
                    None => {
                        // No context check: with no open call the caller context is
                        // unknowable, and a second diagnostic would restate the first.
                        self.report(
                            rules::RETURN_WITHOUT_CALL.id,
                            idx,
                            vec![],
                            format!(
                                "return from '{}' on thread {tid} with no open call",
                                method.as_str()
                            ),
                        );
                        self.check_use(target, idx);
                        self.check_use(value, idx);
                        return;
                    }
                    Some(open) => {
                        if open.method != method {
                            self.report(
                                rules::RETURN_METHOD_MISMATCH.id,
                                idx,
                                vec![open.entry_index],
                                format!(
                                    "return names '{}' but the innermost open call is '{}'",
                                    method.as_str(),
                                    open.method.as_str()
                                ),
                            );
                        }
                    }
                }
                // RETURN-E emits the return in the *caller's* context (after the pop),
                // so the context check runs against the post-pop stack.
                self.check_context(entry, idx);
                self.check_use(target, idx);
                self.check_use(value, idx);
            }
            Event::Get { target, field, value } => {
                self.check_context(entry, idx);
                self.check_use(target, idx);
                self.check_use(value, idx);
                self.check_access(target, field.as_str(), false, tid, idx);
            }
            Event::Set { target, field, value } => {
                self.check_context(entry, idx);
                self.check_use(target, idx);
                self.check_use(value, idx);
                self.check_access(target, field.as_str(), true, tid, idx);
            }
            Event::Init { args, result, .. } => {
                self.check_context(entry, idx);
                for arg in args {
                    self.check_use(arg, idx);
                }
                self.check_define(result, idx);
            }
            Event::Fork { child, parentage } => {
                self.check_context(entry, idx);
                self.check_fork(tid, *child, parentage, idx);
            }
            Event::End { stack } => {
                // END-E is exempt from context checks: on an aborted run the recorded
                // stack legitimately diverges from the reconstruction (the run unwound
                // without emitting returns).
                self.check_end(tid, stack, idx);
            }
        }
    }

    /// Consumes the engine, runs the end-of-trace rules and returns the sorted report.
    /// The caller owns trace identification ([`CheckReport::trace_name`]).
    pub fn finish(mut self) -> CheckReport {
        let thread_order = std::mem::take(&mut self.thread_order);
        for tid in &thread_order {
            let (ended, last_entry, open): (bool, usize, Vec<(usize, Symbol)>) = {
                let state = &self.threads[tid];
                (
                    state.ended_at.is_some(),
                    state.last_entry,
                    state
                        .stack
                        .iter()
                        .map(|c| (c.entry_index, c.method))
                        .collect(),
                )
            };
            if !ended {
                self.report(
                    rules::MISSING_END.id,
                    last_entry,
                    vec![],
                    format!("thread {tid} never emitted an end event"),
                );
                if !open.is_empty() {
                    self.report_unclosed(last_entry, &open, *tid);
                }
            }
        }
        let mut diagnostics = std::mem::take(&mut self.diagnostics);
        diagnostics.sort_by(|a, b| {
            (a.entry_index, a.rule_id).cmp(&(b.entry_index, b.rule_id))
        });
        CheckReport {
            trace_name: String::new(),
            entries: self.index,
            threads: thread_order.len(),
            suppressed: self.suppressed,
            diagnostics,
        }
    }

    fn ensure_thread(&mut self, tid: ThreadId, idx: usize) {
        if self.threads.contains_key(&tid) {
            return;
        }
        let mut ancestry_len = 0;
        let mut orphan: Option<String> = None;
        if tid != ThreadId::MAIN {
            match self.forked.get(&tid) {
                Some(info) => ancestry_len = info.ancestry_len,
                None => {
                    orphan = Some(format!(
                        "thread {tid} emits entries but no prior fork names it"
                    ));
                }
            }
        }
        let slot = self.slot_of(tid);
        self.threads.insert(
            tid,
            ThreadState {
                stack: Vec::new(),
                root_active: None,
                root_context_reported: false,
                last_entry: idx,
                ended_at: None,
                after_end_reported: false,
                ancestry_len,
                slot,
            },
        );
        self.thread_order.push(tid);
        if let Some(message) = orphan {
            self.report(rules::ORPHAN_THREAD.id, idx, vec![], message);
        }
    }

    /// name-wellformed: names are interned symbols and must be non-empty. Reported once
    /// per trace — a recorder that drops one name usually drops them all.
    fn check_names(&mut self, entry: &TraceEntry, idx: usize) {
        if self.empty_name_reported {
            return;
        }
        let offending = if entry.method.as_str().is_empty() {
            Some("context method")
        } else if entry.active.class.is_empty() {
            Some("active object class")
        } else if entry.event.method().is_some_and(|m| m.as_str().is_empty()) {
            Some("event method")
        } else if entry.event.field().is_some_and(|f| f.as_str().is_empty()) {
            Some("event field")
        } else if entry
            .event
            .operands()
            .iter()
            .any(|rep| rep.class.is_empty())
        {
            Some("operand class")
        } else {
            None
        };
        if let Some(kind) = offending {
            self.empty_name_reported = true;
            self.report(
                rules::NAME_WELLFORMED.id,
                idx,
                vec![],
                format!("empty {kind} name"),
            );
        }
    }

    /// method-context / active-context: the entry's recorded context must match the
    /// reconstructed innermost frame (`<main>` with the thread's root receiver when no
    /// call is open). One report per frame occurrence.
    fn check_context(&mut self, entry: &TraceEntry, idx: usize) {
        let method = intern(entry.method.as_str());
        let active = Ident::of(&entry.active);
        let sym_main = self.sym_main;
        let mut finding: Option<(&'static str, String, Vec<usize>)> = None;
        {
            let state = self.threads.get_mut(&entry.tid).expect("thread exists");
            if let Some(top) = state.stack.last_mut() {
                if top.context_reported {
                    return;
                }
                if method != top.method {
                    top.context_reported = true;
                    finding = Some((
                        rules::METHOD_CONTEXT.id,
                        format!(
                            "entry records context method '{}' but the open call is '{}'",
                            method.as_str(),
                            top.method.as_str()
                        ),
                        vec![top.entry_index],
                    ));
                } else if active != top.active {
                    top.context_reported = true;
                    finding = Some((
                        rules::ACTIVE_CONTEXT.id,
                        format!(
                            "entry records active object {} but the open call's receiver is {}",
                            active.describe(),
                            top.active.describe()
                        ),
                        vec![top.entry_index],
                    ));
                }
            } else {
                if state.root_context_reported {
                    return;
                }
                let root_active = *state.root_active.get_or_insert(active);
                if method != sym_main {
                    state.root_context_reported = true;
                    finding = Some((
                        rules::METHOD_CONTEXT.id,
                        format!(
                            "entry at stack root records context method '{}' (expected '<main>')",
                            method.as_str()
                        ),
                        vec![],
                    ));
                } else if active != root_active {
                    state.root_context_reported = true;
                    finding = Some((
                        rules::ACTIVE_CONTEXT.id,
                        format!(
                            "entry at stack root records active object {} but the thread's root receiver is {}",
                            active.describe(),
                            root_active.describe()
                        ),
                        vec![],
                    ));
                }
            }
        }
        if let Some((rule, message, related)) = finding {
            self.report(rule, idx, related, message);
        }
    }

    /// define-before-use / use-after-death / identity-confusion for one operand.
    fn check_use(&mut self, rep: &ObjRep, idx: usize) {
        let ident = Ident::of(rep);
        let Some(key) = ident.key() else { return };
        match self.objects.get_mut(&key) {
            None => {
                if self.undefined_reported.insert(key) {
                    self.report(
                        rules::DEFINE_BEFORE_USE.id,
                        idx,
                        vec![],
                        format!("object {} is used but never initialized", ident.describe()),
                    );
                }
                // Assume the identity defined from here on so one dangling object
                // yields one diagnostic, and a later real init is not misread as a
                // duplicate.
                self.objects.insert(
                    key,
                    ObjState {
                        loc: ident.loc,
                        def_index: idx,
                        killed_at: None,
                        assumed: true,
                        reported_dead: false,
                        reported_confused: false,
                    },
                );
            }
            Some(state) => {
                if let Some(killed) = state.killed_at {
                    if !state.reported_dead {
                        state.reported_dead = true;
                        let msg = format!(
                            "object {} is used after its location was reallocated",
                            ident.describe()
                        );
                        self.report(rules::USE_AFTER_DEATH.id, idx, vec![killed], msg);
                    }
                } else if let (Some(seen), Some(init)) = (ident.loc, state.loc) {
                    if seen != init && !state.reported_confused {
                        state.reported_confused = true;
                        let def = state.def_index;
                        let msg = format!(
                            "object {} appears at location {seen} but was initialized at {init}",
                            ident.describe()
                        );
                        self.report(rules::IDENTITY_CONFUSION.id, idx, vec![def], msg);
                    }
                }
            }
        }
    }

    /// init handling: duplicate-init, init-order, and location-reuse bookkeeping for
    /// use-after-death.
    fn check_define(&mut self, result: &ObjRep, idx: usize) {
        let ident = Ident::of(result);
        let Some(key) = ident.key() else {
            // Inits of primitive values (trace_prim_init recorders) carry no identity.
            return;
        };
        let seq = key.1;
        let prior = self.class_last_seq.get(&key.0).copied();
        self.class_last_seq
            .insert(key.0, prior.map_or(seq, |last| last.max(seq)));
        if let Some(last) = prior {
            if seq < last {
                self.report(
                    rules::INIT_ORDER.id,
                    idx,
                    vec![],
                    format!(
                        "init of {} after seq #{last} of the same class",
                        ident.describe()
                    ),
                );
            }
        }
        if let Some(existing) = self.objects.get_mut(&key) {
            if existing.assumed {
                // The identity was synthesized by a define-before-use report; this is
                // the real init — upgrade the binding silently.
                existing.assumed = false;
                existing.loc = ident.loc;
                existing.def_index = idx;
                existing.killed_at = None;
            } else {
                let first = existing.def_index;
                self.report(
                    rules::DUPLICATE_INIT.id,
                    idx,
                    vec![first],
                    format!("object {} is initialized a second time", ident.describe()),
                );
                return;
            }
        } else {
            self.objects.insert(
                key,
                ObjState {
                    loc: ident.loc,
                    def_index: idx,
                    killed_at: None,
                    assumed: false,
                    reported_dead: false,
                    reported_confused: false,
                },
            );
        }
        if let Some(loc) = ident.loc {
            if let Some(prev) = self.by_loc.insert(loc, key) {
                if prev != key {
                    if let Some(prev_state) = self.objects.get_mut(&prev) {
                        if prev_state.killed_at.is_none() {
                            prev_state.killed_at = Some(idx);
                        }
                    }
                }
            }
        }
    }

    /// fork-self / duplicate-fork / orphan registration / fork-parentage, plus the
    /// vector-clock fork edge.
    fn check_fork(&mut self, tid: ThreadId, child: ThreadId, parentage: &[StackSnapshot], idx: usize) {
        if child == tid {
            self.report(
                rules::FORK_SELF.id,
                idx,
                vec![],
                format!("thread {tid} forks itself"),
            );
            return;
        }
        if child == ThreadId::MAIN {
            self.report(
                rules::DUPLICATE_FORK.id,
                idx,
                vec![],
                "fork names the main thread, which exists from trace start".to_owned(),
            );
            return;
        }
        if let Some(prev) = self.forked.get(&child) {
            let prev_idx = prev.entry_index;
            self.report(
                rules::DUPLICATE_FORK.id,
                idx,
                vec![prev_idx],
                format!("thread {child} was already forked"),
            );
            return;
        }

        // fork-parentage: parentage[0] is the forker's stack at the fork; the rest is
        // the forker's own ancestry, so the chain grows by one per generation.
        let (expected_methods, forker_ancestry): (Vec<Symbol>, usize) = {
            let state = &self.threads[&tid];
            let mut methods = vec![self.sym_main];
            methods.extend(state.stack.iter().map(|c| c.method));
            (methods, state.ancestry_len)
        };
        match parentage.first() {
            None => {
                self.report(
                    rules::FORK_PARENTAGE.id,
                    idx,
                    vec![],
                    format!("fork of {child} records no parentage snapshots"),
                );
            }
            Some(snapshot) => {
                let recorded: Vec<Symbol> = snapshot
                    .method_names()
                    .iter()
                    .map(|m| intern(m.as_str()))
                    .collect();
                if recorded != expected_methods {
                    let msg = format!(
                        "fork parentage records stack [{}] but the reconstructed stack is [{}]",
                        join_symbols(&recorded),
                        join_symbols(&expected_methods)
                    );
                    self.report(rules::FORK_PARENTAGE.id, idx, vec![], msg);
                } else if parentage.len() != forker_ancestry + 1 {
                    let msg = format!(
                        "fork parentage chain has {} snapshot(s) but the forker's ancestry depth is {}",
                        parentage.len(),
                        forker_ancestry
                    );
                    self.report(rules::FORK_PARENTAGE.id, idx, vec![], msg);
                }
            }
        }

        self.forked.insert(
            child,
            ForkInfo {
                entry_index: idx,
                ancestry_len: parentage.len(),
            },
        );

        // Vector-clock fork edge: everything the forker did so far happens before
        // everything the child will do.
        let parent_slot = self.threads[&tid].slot;
        let child_slot = self.slot_of(child);
        let parent_clock = self.clocks[parent_slot].clone();
        join_clock(&mut self.clocks[child_slot], &parent_clock);
        tick(&mut self.clocks[child_slot], child_slot);
        tick(&mut self.clocks[parent_slot], parent_slot);
    }

    /// end handling: end-stack shape, unclosed calls, thread termination.
    fn check_end(&mut self, tid: ThreadId, stack: &StackSnapshot, idx: usize) {
        let root_ok = stack.depth() == 1
            && stack.frames[0].method.as_str() == self.sym_main.as_str();
        if !root_ok {
            let recorded: Vec<String> = stack
                .method_names()
                .iter()
                .map(|m| m.as_str().to_owned())
                .collect();
            self.report(
                rules::END_STACK.id,
                idx,
                vec![],
                format!(
                    "end snapshot records stack [{}] (expected the single root frame '<main>')",
                    recorded.join(", ")
                ),
            );
        }
        let open: Vec<(usize, Symbol)> = {
            let state = self.threads.get_mut(&tid).expect("thread exists");
            state.ended_at = Some(idx);
            let open = state
                .stack
                .iter()
                .map(|c| (c.entry_index, c.method))
                .collect();
            state.stack.clear();
            open
        };
        if !open.is_empty() {
            self.report_unclosed(idx, &open, tid);
        }
    }

    fn report_unclosed(&mut self, idx: usize, open: &[(usize, Symbol)], tid: ThreadId) {
        let related: Vec<usize> = open.iter().map(|(i, _)| *i).collect();
        let methods: Vec<&str> = open.iter().map(|(_, m)| m.as_str()).collect();
        self.report(
            rules::UNCLOSED_CALL.id,
            idx,
            related,
            format!(
                "{} call(s) on thread {tid} never returned (aborted run?): {}",
                open.len(),
                methods.join(", ")
            ),
        );
    }

    /// data-race: FastTrack-style per-variable metadata against per-thread vector
    /// clocks. One report per variable.
    fn check_access(&mut self, target: &ObjRep, field: &str, is_write: bool, tid: ThreadId, idx: usize) {
        let Some(key) = Ident::of(target).key() else {
            return;
        };
        let field = intern(field);
        let slot = self.threads[&tid].slot;
        let my_clock = clock_component(&self.clocks[slot], slot);
        let var = self
            .vars
            .entry((key, field))
            .or_insert_with(|| VarState {
                last_write: None,
                reads: Vec::new(),
                raced: false,
            });
        if var.raced {
            return;
        }
        let clocks = &self.clocks;
        let ordered = |a: &Access| a.slot == slot || a.clock <= clock_component(&clocks[slot], a.slot);
        let mut conflict: Option<Access> = None;
        if let Some(w) = var.last_write {
            if !ordered(&w) {
                conflict = Some(w);
            }
        }
        if is_write && conflict.is_none() {
            conflict = var.reads.iter().find(|r| !ordered(r)).copied();
        }
        if let Some(other) = conflict {
            var.raced = true;
            let kind = if is_write { "write" } else { "read" };
            let msg = format!(
                "{kind} of {}.{} on thread {tid} is unordered with the access at entry {} (no happens-before edge)",
                describe_key(key),
                field.as_str(),
                other.entry_index
            );
            self.report(rules::DATA_RACE.id, idx, vec![other.entry_index], msg);
            return;
        }
        let access = Access {
            slot,
            clock: my_clock,
            entry_index: idx,
        };
        if is_write {
            var.reads.clear();
            var.last_write = Some(access);
        } else {
            match var.reads.iter_mut().find(|r| r.slot == slot) {
                Some(r) => *r = access,
                None => var.reads.push(access),
            }
        }
        tick(&mut self.clocks[slot], slot);
    }

    /// The dense vector-clock slot of a thread, allocating on first sight.
    fn slot_of(&mut self, tid: ThreadId) -> usize {
        if let Some(state) = self.threads.get(&tid) {
            return state.slot;
        }
        // Forked-but-not-yet-seen children get a slot ahead of their first entry.
        if let Some(slot) = self.pending_slot(tid) {
            return slot;
        }
        let slot = self.clocks.len();
        self.clocks.push(vec![0; slot + 1]);
        self.pending_slots.push((tid, slot));
        slot
    }

    fn pending_slot(&self, tid: ThreadId) -> Option<usize> {
        self.pending_slots
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, s)| *s)
    }
}

fn describe_key(key: ObjKey) -> String {
    format!("{}#{}", key.0.as_str(), key.1)
}

fn join_symbols(symbols: &[Symbol]) -> String {
    symbols
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn clock_component(clock: &[u64], slot: usize) -> u64 {
    clock.get(slot).copied().unwrap_or(0)
}

fn tick(clock: &mut Vec<u64>, slot: usize) {
    if clock.len() <= slot {
        clock.resize(slot + 1, 0);
    }
    clock[slot] += 1;
}

fn join_clock(into: &mut Vec<u64>, other: &[u64]) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, v) in other.iter().enumerate() {
        if *v > into[i] {
            into[i] = *v;
        }
    }
}

/// Checks a fully materialized trace (tests, fixtures, small inputs). Streaming callers
/// should drive [`Checker`] directly from their decode loop instead.
pub fn check_trace(trace: &Trace) -> CheckReport {
    check_trace_with(trace, CheckConfig::default())
}

/// [`check_trace`] with an explicit configuration.
pub fn check_trace_with(trace: &Trace, config: CheckConfig) -> CheckReport {
    let mut checker = Checker::with_config(config);
    for entry in trace.iter() {
        checker.observe(entry);
    }
    let mut report = checker.finish();
    report.trace_name = trace.meta.name.clone();
    report
}
