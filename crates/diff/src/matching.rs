//! Matchings between two traces and their decomposition into difference sequences.
//!
//! Both differencing semantics (LCS-based and views-based) produce the same kind of
//! result: a set Π of entry pairs considered *similar* across the two traces. Everything
//! the regression analysis needs — the differences on each side, and the grouping of
//! contiguous differences into "difference sequences" (§5.1) — is derived from Π here.

use std::collections::HashSet;

/// A set of similar-entry pairs `(left index, right index)` between two traces, together
/// with the trace lengths it refers to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Matching {
    pairs: Vec<(usize, usize)>,
    left_len: usize,
    right_len: usize,
}

impl Matching {
    /// Creates a matching over traces of the given lengths.
    pub fn new(left_len: usize, right_len: usize) -> Self {
        Matching {
            pairs: Vec::new(),
            left_len,
            right_len,
        }
    }

    /// Creates a matching from an existing pair list.
    pub fn from_pairs(left_len: usize, right_len: usize, mut pairs: Vec<(usize, usize)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Matching {
            pairs,
            left_len,
            right_len,
        }
    }

    /// Adds a similar pair.
    pub fn push(&mut self, left: usize, right: usize) {
        self.pairs.push((left, right));
    }

    /// The recorded pairs in insertion order, duplicates included — the raw scan
    /// output ([`normalized_pairs`](Self::normalized_pairs) is the canonical form).
    pub fn raw_pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Merges another matching (over the same traces) into this one.
    pub fn extend(&mut self, other: &Matching) {
        self.pairs.extend_from_slice(&other.pairs);
    }

    /// The pairs, sorted by left index then right index, deduplicated.
    pub fn normalized_pairs(&self) -> Vec<(usize, usize)> {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        p.dedup();
        p
    }

    /// Number of (deduplicated) similar pairs.
    pub fn len(&self) -> usize {
        self.normalized_pairs().len()
    }

    /// Returns `true` when no pairs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The left-trace length this matching refers to.
    pub fn left_len(&self) -> usize {
        self.left_len
    }

    /// The right-trace length this matching refers to.
    pub fn right_len(&self) -> usize {
        self.right_len
    }

    /// The set of matched left indices.
    pub fn matched_left(&self) -> HashSet<usize> {
        self.pairs.iter().map(|(l, _)| *l).collect()
    }

    /// The set of matched right indices.
    pub fn matched_right(&self) -> HashSet<usize> {
        self.pairs.iter().map(|(_, r)| *r).collect()
    }

    /// Left-trace indices *not* matched by any pair — the left differences.
    pub fn unmatched_left(&self) -> Vec<usize> {
        let matched = self.matched_left();
        (0..self.left_len).filter(|i| !matched.contains(i)).collect()
    }

    /// Right-trace indices *not* matched by any pair — the right differences.
    pub fn unmatched_right(&self) -> Vec<usize> {
        let matched = self.matched_right();
        (0..self.right_len)
            .filter(|i| !matched.contains(i))
            .collect()
    }

    /// Total number of differences across both sides.
    pub fn num_differences(&self) -> usize {
        self.unmatched_left().len() + self.unmatched_right().len()
    }

    /// Groups the differences into contiguous *difference sequences*: maximal regions of
    /// unmatched entries delimited by matched anchor pairs, walked in left-trace order.
    /// Each sequence carries the unmatched indices from both sides that fall between the
    /// same pair of anchors — the unit the paper reports as "Diff. Seqs." and the unit on
    /// which the regression-cause analysis operates.
    pub fn difference_sequences(&self) -> Vec<DiffSequence> {
        let matched_left = self.matched_left();
        let matched_right = self.matched_right();

        // Crossing pairs would make interval boundaries ambiguous; keep a monotone subset
        // (pairs are normally monotone already for both algorithms).
        let mut anchors: Vec<(usize, usize)> = Vec::new();
        let mut last_r = None;
        for (l, r) in self.normalized_pairs() {
            if last_r.is_none_or(|prev| r > prev) {
                anchors.push((l, r));
                last_r = Some(r);
            }
        }

        let mut sequences = Vec::new();
        let mut prev_l = 0usize;
        let mut prev_r = 0usize;
        let mut boundaries = anchors.clone();
        boundaries.push((self.left_len, self.right_len));

        for (al, ar) in boundaries {
            let left: Vec<usize> = (prev_l..al.min(self.left_len))
                .filter(|i| !matched_left.contains(i))
                .collect();
            let right: Vec<usize> = (prev_r..ar.min(self.right_len))
                .filter(|i| !matched_right.contains(i))
                .collect();
            if !left.is_empty() || !right.is_empty() {
                sequences.push(DiffSequence { left, right });
            }
            prev_l = al.saturating_add(1).min(self.left_len);
            prev_r = ar.saturating_add(1).min(self.right_len);
        }
        sequences
    }
}

/// One contiguous difference sequence: the unmatched entries on each side between two
/// consecutive anchor (similar) pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiffSequence {
    /// Unmatched left-trace indices in this region, ascending.
    pub left: Vec<usize>,
    /// Unmatched right-trace indices in this region, ascending.
    pub right: Vec<usize>,
}

impl DiffSequence {
    /// Total number of differing entries in the sequence.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Returns `true` when the sequence contains no differences (not produced in
    /// practice; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// The classification of the sequence: entries only on the left (deletion), only on
    /// the right (insertion), or both (modification).
    pub fn kind(&self) -> DiffKind {
        match (self.left.is_empty(), self.right.is_empty()) {
            (false, true) => DiffKind::Deletion,
            (true, false) => DiffKind::Insertion,
            _ => DiffKind::Modification,
        }
    }
}

/// The classification of a difference sequence, mirroring how LCS-based diffs present
/// contiguous runs of differences (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiffKind {
    /// Entries present only in the left (old) trace.
    Deletion,
    /// Entries present only in the right (new) trace.
    Insertion,
    /// Entries present on both sides but different.
    Modification,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmatched_indices_are_complement_of_pairs() {
        let m = Matching::from_pairs(5, 4, vec![(0, 0), (2, 1), (4, 3)]);
        assert_eq!(m.unmatched_left(), vec![1, 3]);
        assert_eq!(m.unmatched_right(), vec![2]);
        assert_eq!(m.num_differences(), 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn duplicate_pairs_are_collapsed() {
        let mut m = Matching::new(3, 3);
        m.push(1, 1);
        m.push(1, 1);
        m.push(0, 0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.normalized_pairs(), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn difference_sequences_group_between_anchors() {
        // left:  A x x B y C      (indices 0..6: A=0, x=1, x=2, B=3, y=4, C=5)
        // right: A B z z C        (indices 0..5: A=0, B=1, z=2, z=3, C=4)
        let m = Matching::from_pairs(6, 5, vec![(0, 0), (3, 1), (5, 4)]);
        let seqs = m.difference_sequences();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].left, vec![1, 2]);
        assert!(seqs[0].right.is_empty());
        assert_eq!(seqs[0].kind(), DiffKind::Deletion);
        assert_eq!(seqs[1].left, vec![4]);
        assert_eq!(seqs[1].right, vec![2, 3]);
        assert_eq!(seqs[1].kind(), DiffKind::Modification);
    }

    #[test]
    fn leading_and_trailing_differences_form_sequences() {
        let m = Matching::from_pairs(4, 4, vec![(1, 1), (2, 2)]);
        let seqs = m.difference_sequences();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].left, vec![0]);
        assert_eq!(seqs[0].right, vec![0]);
        assert_eq!(seqs[1].left, vec![3]);
        assert_eq!(seqs[1].right, vec![3]);
    }

    #[test]
    fn identical_traces_have_no_sequences() {
        let m = Matching::from_pairs(3, 3, vec![(0, 0), (1, 1), (2, 2)]);
        assert!(m.difference_sequences().is_empty());
        assert_eq!(m.num_differences(), 0);
    }

    #[test]
    fn insertion_only_sequence() {
        let m = Matching::from_pairs(2, 4, vec![(0, 0), (1, 3)]);
        let seqs = m.difference_sequences();
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].kind(), DiffKind::Insertion);
        assert_eq!(seqs[0].right, vec![1, 2]);
    }

    #[test]
    fn crossing_pairs_do_not_break_sequencing() {
        // A non-monotone pair (3,0) is ignored for interval construction but still counts
        // as matched for difference computation.
        let m = Matching::from_pairs(4, 4, vec![(1, 2), (3, 0)]);
        let seqs = m.difference_sequences();
        assert!(!seqs.is_empty());
        let total: usize = seqs.iter().map(DiffSequence::len).sum();
        assert_eq!(total, m.num_differences());
    }

    #[test]
    fn extend_merges_matchings() {
        let mut a = Matching::from_pairs(4, 4, vec![(0, 0)]);
        let b = Matching::from_pairs(4, 4, vec![(1, 1), (0, 0)]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }
}
