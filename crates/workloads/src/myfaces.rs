//! The motivating example of the paper (§1, Fig. 1 / Fig. 13): a regression patterned
//! after MYFACES-1130.
//!
//! The framework converts non-7-bit-safe characters of an HTTP response into HTML numeric
//! entities, but only for `text/html` documents, and only for characters outside the range
//! `[32, 127]`. In the original version `ServletProcessor` instantiates the
//! `NumericEntityUtil` with the correct range directly; in the new version a
//! `BinaryCharFilter` abstraction was extracted and supplies the *incorrect* range
//! `[1, 127]`, so characters in `[1, 31]` stop being converted — but only for `text/html`
//! documents, and only long after the faulty initialization ran.

use rprism_lang::parser::parse_program;
use rprism_lang::Program;
use rprism_regress::GroundTruth;
use rprism_vm::VmConfig;

use crate::scenario::Scenario;

const COMMON_CLASSES: &str = r#"
    class Sys extends Object {
        Unit print(Str msg) { unit; }
        Unit fail(Str msg) { unit; }
    }
    class Logger extends Object {
        Int msgCount;
        Unit addMsg(Str msg) {
            this.msgCount = this.msgCount + 1;
        }
    }
    class NumericEntityUtil extends Object {
        Int _minCharRange;
        Int _maxCharRange;
        Int convert(Int c) {
            if ((c < this._minCharRange) || (c > this._maxCharRange)) {
                return 100000 + c;
            }
            return c;
        }
    }
"#;

const ORIGINAL_SP: &str = r#"
    class ServletProcessor extends Object {
        Logger log;
        NumericEntityUtil binConv;
        Int emitted;
        Unit setRequestType(Str ty) {
            this.log.addMsg("Handling request");
            if (ty == "text/html") {
                this.binConv = new NumericEntityUtil(32, 127);
            }
            this.log.addMsg("Set req type");
        }
        Unit processChar(Int c, Sys sys) {
            if (this.binConv == null) {
                sys.print("raw " + "char");
                this.emitted = this.emitted + c;
            } else {
                this.emitted = this.emitted + this.binConv.convert(c);
            }
        }
        Unit finish(Sys sys) {
            this.log.addMsg("Request complete");
            sys.print("emitted");
        }
    }
"#;

const NEW_SP: &str = r#"
    class BinaryCharFilter extends Object {
        NumericEntityUtil binConv;
        Int apply(Int c) {
            return this.binConv.convert(c);
        }
    }
    class ServletProcessor extends Object {
        Logger log;
        BinaryCharFilter filter;
        Int emitted;
        Unit setRequestType(Str ty) {
            this.log.addMsg("Handling request");
            if (ty == "text/html") {
                this.filter = new BinaryCharFilter(new NumericEntityUtil(1, 127));
                this.addFilter(this.filter);
            }
            this.log.addMsg("Set req type");
        }
        Unit addFilter(BinaryCharFilter f) {
            this.log.addMsg("Filter registered");
        }
        Unit processChar(Int c, Sys sys) {
            if (this.filter == null) {
                sys.print("raw " + "char");
                this.emitted = this.emitted + c;
            } else {
                this.emitted = this.emitted + this.filter.apply(c);
            }
        }
        Unit finish(Sys sys) {
            this.log.addMsg("Request complete");
            sys.print("emitted");
        }
    }
"#;

/// The main driver for a request of the given document type; the processed characters
/// include values in `[1, 31]`, which is exactly where the two versions disagree for
/// `text/html` documents.
fn driver(doc_type: &str) -> String {
    format!(
        r#"
        main {{
            let sys = new Sys();
            let log = new Logger(0);
            let sp = new ServletProcessor(log, null, 0);
            sp.setRequestType("{doc_type}");
            sp.processChar(5, sys);
            sp.processChar(20, sys);
            sp.processChar(64, sys);
            sp.processChar(90, sys);
            sp.processChar(200, sys);
            sp.finish(sys);
            sys.print(sp.emitted);
            if (sp.emitted > 0) {{ sys.print("sum " + "positive"); }}
            sys.print("done");
        }}
        "#
    )
}

fn parse_version(classes: &str, doc_type: &str) -> Program {
    let source = format!("{COMMON_CLASSES}{classes}{}", driver(doc_type));
    parse_program(&source).expect("the MyFaces scenario sources are well-formed")
}

/// Builds the MyFaces-1130-style motivating-example scenario.
pub fn scenario() -> Scenario {
    // The regressing test sends a text/html document (characters 5 and 20 must be
    // converted); the passing test sends text/plain (no conversion in either version).
    let old_regressing = parse_version(ORIGINAL_SP, "text/html");
    let new_regressing = parse_version(NEW_SP, "text/html");
    let old_passing = parse_version(ORIGINAL_SP, "text/plain");
    let new_passing = parse_version(NEW_SP, "text/plain");

    Scenario {
        name: "myfaces-1130".into(),
        description: "character-range regression introduced by the BinaryCharFilter extraction"
            .into(),
        old_version: Program {
            classes: old_regressing.classes.clone(),
            main: vec![],
        },
        new_version: Program {
            classes: new_regressing.classes.clone(),
            main: vec![],
        },
        regressing_main: old_regressing.main.clone(),
        passing_main: old_passing.main.clone(),
        // The drivers only reference classes present in both versions, so the same mains
        // are reused for the new version.
        new_regressing_main: Some(new_regressing.main),
        new_passing_main: Some(new_passing.main),
        ground_truth: GroundTruth::new(["_minCharRange", "BinaryCharFilter"]),
        vm_config: VmConfig::default(),
        code_removal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::suspected_trace_entries;
    use rprism_regress::DiffAlgorithm;

    #[test]
    fn the_motivating_example_regresses_only_for_html() {
        let s = scenario();
        let traces = s.trace_all().unwrap();
        assert!(
            traces.exhibits_regression(),
            "outputs: old={:?} new={:?} / pass old={:?} new={:?}",
            traces.old_regressing_output(),
            traces.new_regressing_output(),
            traces.old_passing_output(),
            traces.new_passing_output()
        );
        assert!(suspected_trace_entries(&traces) > 40);
    }

    #[test]
    fn analysis_identifies_the_range_initialization_as_the_cause() {
        let s = scenario();
        let outcome = s
            .analyze_and_evaluate(&DiffAlgorithm::Views(Default::default()))
            .unwrap();
        assert!(outcome.report.num_regression_sequences() >= 1);
        // The true cause (the bad range / the new filter class) is covered.
        assert_eq!(
            outcome.quality.false_negatives, 0,
            "quality: {:?}",
            outcome.quality
        );
        // The analysis discards at least some unrelated difference sequences relative to
        // the raw suspected diff.
        assert!(
            outcome.report.num_regression_sequences() <= outcome.report.sequences.len(),
        );
    }

    #[test]
    fn lcs_baseline_also_runs_on_the_motivating_example() {
        let s = scenario();
        let outcome = s
            .analyze_and_evaluate(&DiffAlgorithm::Lcs(Default::default()))
            .unwrap();
        assert!(!outcome.report.suspected.is_empty());
    }
}
