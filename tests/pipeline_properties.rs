//! Cross-crate property tests: invariants that must hold for arbitrary generated
//! workloads, connecting the generator, the VM, the view model and the differencers.

use proptest::prelude::*;

use rprism_diff::{views_diff, ViewsDiffOptions};
use rprism_trace::eq::EventKey;
use rprism_views::{ViewKind, ViewWeb};
use rprism_workloads::{generate_bug, RhinoConfig};

fn config(seed: u64, script_length: usize) -> RhinoConfig {
    RhinoConfig {
        seed,
        modules: 4,
        script_length,
        max_injection_attempts: 30,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tracing is deterministic: the same seed yields byte-identical event sequences.
    #[test]
    fn tracing_is_deterministic(seed in 0u64..40, len in 6usize..16) {
        let Some(bug) = generate_bug(&config(seed, len)) else { return Ok(()); };
        let t1 = bug.scenario.trace_all().unwrap();
        let t2 = bug.scenario.trace_all().unwrap();
        let k1: Vec<EventKey> = t1.traces.old_regressing.iter().map(EventKey::of).collect();
        let k2: Vec<EventKey> = t2.traces.old_regressing.iter().map(EventKey::of).collect();
        prop_assert_eq!(k1, k2);
    }

    /// Every trace entry belongs to exactly one thread view and one method view, and all
    /// view links are navigable back to the base trace.
    #[test]
    fn view_webs_partition_the_trace(seed in 0u64..40, len in 6usize..16) {
        let Some(bug) = generate_bug(&config(seed, len)) else { return Ok(()); };
        let trace = bug.scenario.trace_all().unwrap().traces.old_regressing;
        let web = ViewWeb::build(&trace);

        let thread_total: usize = web.views_of_kind(ViewKind::Thread).iter().map(|v| v.len()).sum();
        let method_total: usize = web.views_of_kind(ViewKind::Method).iter().map(|v| v.len()).sum();
        prop_assert_eq!(thread_total, trace.len());
        prop_assert_eq!(method_total, trace.len());

        for idx in 0..trace.len() {
            for name in web.views_of_entry(idx) {
                let pos = web.position_in_view(name, idx).expect("entry present in its view");
                prop_assert_eq!(web.view(name).unwrap().entries[pos], idx);
            }
        }
    }

    /// Differencing a trace against itself yields no differences, and differencing the
    /// original against the mutated version never reports more differences than entries.
    #[test]
    fn views_diff_bounds(seed in 0u64..40, len in 6usize..14) {
        let Some(bug) = generate_bug(&config(seed, len)) else { return Ok(()); };
        let traces = bug.scenario.trace_all().unwrap().traces;
        let options = ViewsDiffOptions::default();

        let self_diff = views_diff(&traces.old_regressing, &traces.old_regressing, &options);
        prop_assert_eq!(self_diff.num_differences(), 0);

        let cross = views_diff(&traces.old_regressing, &traces.new_regressing, &options);
        prop_assert!(cross.num_differences() <= traces.old_regressing.len() + traces.new_regressing.len());
        prop_assert!(cross.num_similar() <= traces.old_regressing.len().max(traces.new_regressing.len()));
        // Matched pairs reference valid indices.
        for (l, r) in cross.matching.normalized_pairs() {
            prop_assert!(l < traces.old_regressing.len());
            prop_assert!(r < traces.new_regressing.len());
        }
    }
}
