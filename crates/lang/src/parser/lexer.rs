//! Hand-written lexer for the concrete syntax of the core calculus.

use crate::error::Error;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// The kinds of tokens produced by the lexer.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (contents, unescaped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::LBrace => "`{`".to_owned(),
            TokenKind::RBrace => "`}`".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::Semi => "`;`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::Dot => "`.`".to_owned(),
            TokenKind::Assign => "`=`".to_owned(),
            TokenKind::EqEq => "`==`".to_owned(),
            TokenKind::NotEq => "`!=`".to_owned(),
            TokenKind::Lt => "`<`".to_owned(),
            TokenKind::Le => "`<=`".to_owned(),
            TokenKind::Gt => "`>`".to_owned(),
            TokenKind::Ge => "`>=`".to_owned(),
            TokenKind::Plus => "`+`".to_owned(),
            TokenKind::Minus => "`-`".to_owned(),
            TokenKind::Star => "`*`".to_owned(),
            TokenKind::Slash => "`/`".to_owned(),
            TokenKind::Percent => "`%`".to_owned(),
            TokenKind::AndAnd => "`&&`".to_owned(),
            TokenKind::OrOr => "`||`".to_owned(),
            TokenKind::Bang => "`!`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

/// Tokenizes `source` into a vector of tokens terminated by [`TokenKind::Eof`].
///
/// Line comments beginning with `//` are skipped.
///
/// # Errors
///
/// Returns [`Error::Lex`] on unterminated strings, malformed numbers or unexpected
/// characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>, Error> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $line:expr, $col:expr) => {
            tokens.push(Token {
                kind: $kind,
                line: $line,
                col: $col,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                push!(TokenKind::LBrace, tline, tcol);
                i += 1;
                col += 1;
            }
            '}' => {
                push!(TokenKind::RBrace, tline, tcol);
                i += 1;
                col += 1;
            }
            '(' => {
                push!(TokenKind::LParen, tline, tcol);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(TokenKind::RParen, tline, tcol);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(TokenKind::Semi, tline, tcol);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(TokenKind::Comma, tline, tcol);
                i += 1;
                col += 1;
            }
            '.' => {
                push!(TokenKind::Dot, tline, tcol);
                i += 1;
                col += 1;
            }
            '+' => {
                push!(TokenKind::Plus, tline, tcol);
                i += 1;
                col += 1;
            }
            '-' => {
                push!(TokenKind::Minus, tline, tcol);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(TokenKind::Star, tline, tcol);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(TokenKind::Slash, tline, tcol);
                i += 1;
                col += 1;
            }
            '%' => {
                push!(TokenKind::Percent, tline, tcol);
                i += 1;
                col += 1;
            }
            '=' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(TokenKind::EqEq, tline, tcol);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Assign, tline, tcol);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(TokenKind::NotEq, tline, tcol);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Bang, tline, tcol);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(TokenKind::Le, tline, tcol);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Lt, tline, tcol);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(TokenKind::Ge, tline, tcol);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Gt, tline, tcol);
                    i += 1;
                    col += 1;
                }
            }
            '&' => {
                if i + 1 < chars.len() && chars[i + 1] == '&' {
                    push!(TokenKind::AndAnd, tline, tcol);
                    i += 2;
                    col += 2;
                } else {
                    return Err(Error::Lex {
                        line,
                        col,
                        message: "expected `&&`".to_owned(),
                    });
                }
            }
            '|' => {
                if i + 1 < chars.len() && chars[i + 1] == '|' {
                    push!(TokenKind::OrOr, tline, tcol);
                    i += 2;
                    col += 2;
                } else {
                    return Err(Error::Lex {
                        line,
                        col,
                        message: "expected `||`".to_owned(),
                    });
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                col += 1;
                loop {
                    if i >= chars.len() {
                        return Err(Error::Lex {
                            line,
                            col,
                            message: "unterminated string literal".to_owned(),
                        });
                    }
                    match chars[i] {
                        '"' => {
                            i += 1;
                            col += 1;
                            break;
                        }
                        '\\' if i + 1 < chars.len() => {
                            let esc = chars[i + 1];
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '"' => '"',
                                '\\' => '\\',
                                other => other,
                            });
                            i += 2;
                            col += 2;
                        }
                        '\n' => {
                            return Err(Error::Lex {
                                line,
                                col,
                                message: "newline in string literal".to_owned(),
                            });
                        }
                        other => {
                            s.push(other);
                            i += 1;
                            col += 1;
                        }
                    }
                }
                push!(TokenKind::Str(s), tline, tcol);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let mut is_float = false;
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    col += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let v = text.parse::<f64>().map_err(|e| Error::Lex {
                        line: tline,
                        col: tcol,
                        message: format!("invalid float literal `{text}`: {e}"),
                    })?;
                    push!(TokenKind::Float(v), tline, tcol);
                } else {
                    let v = text.parse::<i64>().map_err(|e| Error::Lex {
                        line: tline,
                        col: tcol,
                        message: format!("invalid integer literal `{text}`: {e}"),
                    })?;
                    push!(TokenKind::Int(v), tline, tcol);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                    col += 1;
                }
                let text: String = chars[start..i].iter().collect();
                push!(TokenKind::Ident(text), tline, tcol);
            }
            other => {
                return Err(Error::Lex {
                    line,
                    col,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_symbols_and_identifiers() {
        let ks = kinds("class Foo extends Object { }");
        assert_eq!(ks[0], TokenKind::Ident("class".into()));
        assert_eq!(ks[1], TokenKind::Ident("Foo".into()));
        assert_eq!(ks[3], TokenKind::Ident("Object".into()));
        assert_eq!(ks[4], TokenKind::LBrace);
        assert_eq!(ks.last().unwrap(), &TokenKind::Eof);
    }

    #[test]
    fn lexes_numbers_and_strings() {
        let ks = kinds(r#"42 3.25 "hi\n" "#);
        assert_eq!(ks[0], TokenKind::Int(42));
        assert_eq!(ks[1], TokenKind::Float(3.25));
        assert_eq!(ks[2], TokenKind::Str("hi\n".into()));
    }

    #[test]
    fn lexes_compound_operators() {
        let ks = kinds("== != <= >= && || = < > !");
        assert_eq!(
            &ks[..10],
            &[
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Bang,
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = tokenize("a // comment\n  b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(tokenize("\"abc"), Err(Error::Lex { .. })));
    }

    #[test]
    fn rejects_stray_ampersand() {
        assert!(matches!(tokenize("a & b"), Err(Error::Lex { .. })));
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(matches!(tokenize("a # b"), Err(Error::Lex { .. })));
    }
}
