//! Regression test for the borrowed-handle analysis path, following the counting-harness
//! pattern of `crates/diff/tests/no_alloc_hot_path.rs`: instead of a counting allocator,
//! `Trace`'s `Clone` impl counts every deep copy process-wide, and this test asserts that
//! the entire analysis path — engine diffs, batch diffs and the full regression-cause
//! analysis over `PreparedTrace` handles — performs **zero** trace copies. (The
//! deprecated by-value API forced callers to clone traces to reuse them; the session API
//! exists to make that structurally unnecessary.)
//!
//! This file deliberately contains a single `#[test]`: the counter is process-global,
//! and a sibling test cloning traces concurrently would pollute the measured window.

use rprism::Engine;
use rprism_trace::Trace;
use rprism_workloads::casestudies;

#[test]
fn analysis_path_over_prepared_handles_never_clones_a_trace() {
    let scenario = casestudies::daikon::scenario();
    let traces = scenario.trace_all().unwrap();
    let engine = Engine::new();

    let before = Trace::clone_count();

    // Handle plumbing: RegressionInput and pair construction are Arc clones only.
    let input = traces.traces.clone();
    let pairs = vec![
        (
            traces.traces.old_regressing.clone(),
            traces.traces.new_regressing.clone(),
        ),
        (
            traces.traces.old_passing.clone(),
            traces.traces.new_passing.clone(),
        ),
    ];

    // The full analysis surface: single diff, batch diff, single analysis, batch
    // analysis — none of it may deep-copy a trace.
    let diff = engine
        .diff(&traces.traces.old_regressing, &traces.traces.new_regressing)
        .unwrap();
    let batch = engine.diff_many(&pairs).unwrap();
    let report = engine.analyze(&input).unwrap();
    let reports = engine.analyze_many(&[input.clone(), input.clone()]).unwrap();

    let after = Trace::clone_count();
    assert_eq!(
        after - before,
        0,
        "the prepared-handle analysis path must not deep-copy traces"
    );

    // Sanity: the analyses actually did their work.
    assert!(diff.num_differences() > 0);
    assert_eq!(batch.len(), 2);
    assert!(!report.suspected.is_empty());
    assert_eq!(reports.len(), 2);
}
