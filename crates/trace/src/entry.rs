//! Trace entries: `entry(eid, tid, m, θ, e)` (paper Fig. 4).
//!
//! Every entry carries, besides the event itself, a generic *context*: the identifier of
//! the active thread, the method under execution (the frame on top of the call stack when
//! the event occurred), and the representation of the object that method is executing on.


use rprism_lang::MethodName;

use crate::event::Event;
use crate::objrep::ObjRep;

/// The index of an entry within its originating trace. Entry ids are the "links" that tie
/// views back to the base trace and to each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId(pub u64);

impl EntryId {
    /// The entry id as a `usize` index into the trace's entry vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The identifier of a program thread within one execution. Thread 0 is the main thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

impl ThreadId {
    /// The main thread.
    pub const MAIN: ThreadId = ThreadId(0);
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A single trace entry `entry(eid, tid, m, θ, e)`.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// The entry identifier: the index of the entry in the trace.
    pub eid: EntryId,
    /// The thread that performed the action.
    pub tid: ThreadId,
    /// The method under execution when the event occurred (top of the call stack).
    pub method: MethodName,
    /// The object on which that method is executing (the *active object*).
    pub active: ObjRep,
    /// The event itself.
    pub event: Event,
}

impl TraceEntry {
    /// Creates an entry.
    pub fn new(
        eid: EntryId,
        tid: ThreadId,
        method: MethodName,
        active: ObjRep,
        event: Event,
    ) -> Self {
        TraceEntry {
            eid,
            tid,
            method,
            active,
            event,
        }
    }

    /// A one-line rendering of the entry (thread, context and event), used by reports and
    /// the examples.
    pub fn render(&self) -> String {
        format!(
            "[{} {} in {}.{}] {}",
            self.eid, self.tid, self.active, self.method, self.event
        )
    }
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objrep::{CreationSeq, Loc};
    use rprism_lang::FieldName;

    #[test]
    fn entry_renders_context_and_event() {
        let entry = TraceEntry::new(
            EntryId(7),
            ThreadId(0),
            MethodName::new("setRequestType"),
            ObjRep::opaque_object(Loc(1), "SP", CreationSeq(0)),
            Event::Set {
                target: ObjRep::opaque_object(Loc(2), "NUM", CreationSeq(0)),
                field: FieldName::new("_minCharRange"),
                value: ObjRep::prim("Int", "32"),
            },
        );
        let s = entry.render();
        assert!(s.contains("e7"));
        assert!(s.contains("t0"));
        assert!(s.contains("SP-1"));
        assert!(s.contains("setRequestType"));
        assert!(s.contains("_minCharRange"));
    }

    #[test]
    fn entry_id_round_trips_to_index() {
        assert_eq!(EntryId(12).index(), 12);
        assert_eq!(ThreadId::MAIN, ThreadId(0));
    }
}
