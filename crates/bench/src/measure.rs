//! Minimal measurement utilities shared by the `harness = false` bench binaries and the
//! `perf_smoke` binary: environment-driven sample counts/sizes, a summary statistic
//! over a set of timed runs, and a live/peak-bytes tracking allocator for peak-memory
//! comparisons.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// A global allocator wrapper that tracks live heap bytes and their peak, for
/// peak-memory measurements (the `streaming_ingest` block of `perf_smoke`). Install it
/// in a binary with `#[global_allocator]`; the tracking costs two relaxed atomics per
/// allocation.
pub struct TrackingAllocator;

impl TrackingAllocator {
    fn record_alloc(size: usize) {
        let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    fn record_dealloc(size: usize) {
        LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
    }

    /// Currently live heap bytes (as requested from the allocator).
    pub fn live_bytes() -> u64 {
        LIVE_BYTES.load(Ordering::SeqCst)
    }

    /// Resets the peak to the current live size and returns a token for
    /// [`TrackingAllocator::peak_since`].
    pub fn reset_peak() -> u64 {
        let live = Self::live_bytes();
        PEAK_BYTES.store(live, Ordering::SeqCst);
        live
    }

    /// Peak heap growth since the matching [`TrackingAllocator::reset_peak`]: the
    /// highest live size observed minus the live size at reset.
    pub fn peak_since(baseline: u64) -> u64 {
        PEAK_BYTES.load(Ordering::SeqCst).saturating_sub(baseline)
    }
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            Self::record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            Self::record_dealloc(layout.size());
            Self::record_alloc(new_size);
        }
        new_ptr
    }
}

/// Summary statistics of one benchmarked configuration.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Configuration label (e.g. `"views"`).
    pub name: String,
    /// Trace length (entries per side) the configuration ran over.
    pub trace_len: usize,
    /// Fastest observed run.
    pub min: Duration,
    /// Median observed run.
    pub median: Duration,
    /// Mean over all runs.
    pub mean: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>20} / {:>7} entries: min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}  ({} samples)",
            self.name, self.trace_len, self.min, self.median, self.mean, self.samples
        )
    }
}

/// Summarizes a list of timed runs.
///
/// # Panics
///
/// Panics when `times` is empty.
pub fn summarize(name: &str, trace_len: usize, mut times: Vec<Duration>) -> Sample {
    assert!(!times.is_empty(), "no samples recorded");
    times.sort();
    let total: Duration = times.iter().sum();
    Sample {
        name: name.to_owned(),
        trace_len,
        min: times[0],
        median: times[times.len() / 2],
        mean: total / times.len() as u32,
        samples: times.len(),
    }
}

/// Number of timed samples per configuration: `RPRISM_BENCH_SAMPLES` or the default.
pub fn sample_env(default: usize) -> usize {
    std::env::var("RPRISM_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Benchmark sizes: comma-separated `RPRISM_BENCH_SIZES` or the defaults.
pub fn sizes_env(default: &[usize]) -> Vec<usize> {
    match std::env::var("RPRISM_BENCH_SIZES") {
        Ok(s) => s
            .split(',')
            .filter_map(|part| part.trim().parse().ok())
            .collect(),
        Err(_) => default.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_orders_statistics() {
        let s = summarize(
            "x",
            10,
            vec![
                Duration::from_millis(3),
                Duration::from_millis(1),
                Duration::from_millis(2),
            ],
        );
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.median, Duration::from_millis(2));
        assert_eq!(s.mean, Duration::from_millis(2));
        assert!(s.to_string().contains("median"));
    }

    #[test]
    fn sizes_parse_comma_lists() {
        assert_eq!(sizes_env(&[5, 6]), vec![5, 6]);
    }
}
