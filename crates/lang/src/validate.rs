//! Static well-formedness checks for programs.
//!
//! The checks are deliberately lighter than a full type system (the paper's calculus is
//! untyped beyond class membership); they catch the structural mistakes that would
//! otherwise only surface as runtime errors in the VM:
//!
//! * the class hierarchy is well-formed (delegated to [`ClassTable::new`]),
//! * every `new C(...)` names a known class and passes one argument per field,
//! * every statically-resolvable method call (receiver is `this` or a fresh `new C(...)`)
//!   targets an existing method with the right arity,
//! * every field access on `this` names a field of the enclosing class (or a superclass),
//! * variable references are in scope.

use std::collections::HashSet;

use crate::ast::{Program, Term};
use crate::classtable::ClassTable;
use crate::error::Error;
use crate::names::{ClassName, VarName};

/// Validates `program`, returning the constructed [`ClassTable`] on success.
///
/// # Errors
///
/// Returns the first structural error found; see the module docs for the list of checks.
pub fn validate(program: &Program) -> Result<ClassTable, Error> {
    let table = ClassTable::new(program)?;
    let checker = Checker { table: &table };

    for class in &program.classes {
        for method in &class.methods {
            let mut scope: HashSet<VarName> =
                method.params.iter().map(|(v, _)| v.clone()).collect();
            for term in &method.body {
                checker.check_term(term, Some(&class.name), &mut scope)?;
            }
        }
    }
    let mut scope = HashSet::new();
    for term in &program.main {
        checker.check_term(term, None, &mut scope)?;
    }
    Ok(table)
}

struct Checker<'a> {
    table: &'a ClassTable,
}

impl Checker<'_> {
    fn check_term(
        &self,
        term: &Term,
        enclosing: Option<&ClassName>,
        scope: &mut HashSet<VarName>,
    ) -> Result<(), Error> {
        match term {
            Term::Var(v) => {
                if !scope.contains(v) {
                    return Err(Error::Invalid(format!(
                        "variable `{v}` is not in scope"
                    )));
                }
                Ok(())
            }
            Term::This => {
                if enclosing.is_none() {
                    return Err(Error::Invalid(
                        "`this` used outside of a method body".to_owned(),
                    ));
                }
                Ok(())
            }
            Term::Lit(_) => Ok(()),
            Term::FieldGet { target, field } => {
                self.check_term(target, enclosing, scope)?;
                if let (Term::This, Some(class)) = (&**target, enclosing) {
                    let known = self
                        .table
                        .fields(class)
                        .iter()
                        .any(|(f, _)| f == field);
                    if !known {
                        return Err(Error::Invalid(format!(
                            "class `{class}` has no field `{field}`"
                        )));
                    }
                }
                Ok(())
            }
            Term::FieldSet {
                target,
                field,
                value,
            } => {
                self.check_term(target, enclosing, scope)?;
                self.check_term(value, enclosing, scope)?;
                if let (Term::This, Some(class)) = (&**target, enclosing) {
                    let known = self
                        .table
                        .fields(class)
                        .iter()
                        .any(|(f, _)| f == field);
                    if !known {
                        return Err(Error::Invalid(format!(
                            "class `{class}` has no field `{field}` to assign"
                        )));
                    }
                }
                Ok(())
            }
            Term::Call {
                target,
                method,
                args,
            } => {
                self.check_term(target, enclosing, scope)?;
                for a in args {
                    self.check_term(a, enclosing, scope)?;
                }
                // Resolve the receiver class statically where cheaply possible.
                let receiver_class: Option<ClassName> = match &**target {
                    Term::This => enclosing.cloned(),
                    Term::New { class, .. } => Some(class.clone()),
                    _ => None,
                };
                if let Some(class) = receiver_class {
                    match self.table.mbody(method, &class) {
                        Some((_, def)) => {
                            if def.params.len() != args.len() {
                                return Err(Error::Invalid(format!(
                                    "method `{class}.{method}` expects {} arguments, found {}",
                                    def.params.len(),
                                    args.len()
                                )));
                            }
                        }
                        None => {
                            return Err(Error::Invalid(format!(
                                "class `{class}` has no method `{method}`"
                            )));
                        }
                    }
                }
                Ok(())
            }
            Term::New { class, args } => {
                for a in args {
                    self.check_term(a, enclosing, scope)?;
                }
                if !self.table.is_defined(class) {
                    return Err(Error::UnknownClass(class.as_str().to_owned()));
                }
                let expected = self.table.fields(class).len();
                if expected != args.len() {
                    return Err(Error::ConstructorArity {
                        class: class.as_str().to_owned(),
                        expected,
                        found: args.len(),
                    });
                }
                Ok(())
            }
            Term::Spawn { body } => {
                let mut spawn_scope = scope.clone();
                for t in body {
                    self.check_term(t, enclosing, &mut spawn_scope)?;
                }
                Ok(())
            }
            Term::Seq(terms) => {
                for t in terms {
                    self.check_term(t, enclosing, scope)?;
                }
                Ok(())
            }
            Term::Return(value) => self.check_term(value, enclosing, scope),
            Term::Let { var, value, body } => {
                self.check_term(value, enclosing, scope)?;
                let newly_bound = scope.insert(var.clone());
                let result = self.check_term(body, enclosing, scope);
                if newly_bound {
                    scope.remove(var);
                }
                result
            }
            Term::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_term(cond, enclosing, scope)?;
                self.check_term(then_branch, enclosing, scope)?;
                self.check_term(else_branch, enclosing, scope)
            }
            Term::While { cond, body } => {
                self.check_term(cond, enclosing, scope)?;
                self.check_term(body, enclosing, scope)
            }
            Term::Bin { lhs, rhs, .. } => {
                self.check_term(lhs, enclosing, scope)?;
                self.check_term(rhs, enclosing, scope)
            }
            Term::Un { operand, .. } => self.check_term(operand, enclosing, scope),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<ClassTable, Error> {
        validate(&parse_program(src).unwrap())
    }

    #[test]
    fn valid_program_passes() {
        let src = r#"
            class Counter extends Object {
                Int count;
                Int bump(Int by) { this.count = this.count + by; return this.count; }
            }
            main { let c = new Counter(0); c.bump(2); }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn constructor_arity_checked() {
        let src = r#"
            class Counter extends Object { Int count; }
            main { new Counter(1, 2); }
        "#;
        assert!(matches!(check(src), Err(Error::ConstructorArity { .. })));
    }

    #[test]
    fn unknown_class_in_new_rejected() {
        assert!(matches!(
            check("main { new Ghost(); }"),
            Err(Error::UnknownClass(_))
        ));
    }

    #[test]
    fn out_of_scope_variable_rejected() {
        assert!(matches!(check("main { x.go(); }"), Err(Error::Invalid(_))));
    }

    #[test]
    fn this_outside_method_rejected() {
        assert!(matches!(
            check("main { this.count; }"),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn unknown_field_on_this_rejected() {
        let src = r#"
            class A extends Object {
                Int x;
                Int get() { return this.y; }
            }
            main { }
        "#;
        assert!(matches!(check(src), Err(Error::Invalid(_))));
    }

    #[test]
    fn unknown_method_on_new_rejected() {
        let src = r#"
            class A extends Object { Int x; }
            main { new A(1).missing(); }
        "#;
        assert!(matches!(check(src), Err(Error::Invalid(_))));
    }

    #[test]
    fn method_arity_on_this_checked() {
        let src = r#"
            class A extends Object {
                Unit go(Int a) { unit; }
                Unit run() { this.go(1, 2); }
            }
            main { }
        "#;
        assert!(matches!(check(src), Err(Error::Invalid(_))));
    }

    #[test]
    fn inherited_fields_visible_through_this() {
        let src = r#"
            class Base extends Object { Int x; }
            class Derived extends Base {
                Int y;
                Int sum() { return this.x + this.y; }
            }
            main { new Derived(1, 2).sum(); }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn spawn_body_is_checked_with_outer_scope() {
        let src = r#"
            class W extends Object { Int n; Unit work() { unit; } }
            main {
                let w = new W(0);
                spawn { w.work(); }
            }
        "#;
        assert!(check(src).is_ok());
        assert!(matches!(
            check("main { spawn { ghost.work(); } }"),
            Err(Error::Invalid(_))
        ));
    }
}
