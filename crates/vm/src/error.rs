//! Runtime errors raised while evaluating programs.

use std::fmt;

use rprism_trace::ThreadId;

/// An error raised during evaluation.
///
/// Errors do not discard the trace collected so far: the [`RunOutcome`](crate::RunOutcome)
/// carries both, which is essential for the Derby-style case study where the regressing
/// version *throws* during query compilation and the analysis still has to difference the
/// partial trace against the passing run.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// A field or method was accessed on the null reference.
    NullDereference {
        /// What was being accessed (field or method name).
        member: String,
    },
    /// A method was not found on the receiver's class (or any superclass).
    UnknownMethod {
        /// The receiver's dynamic class.
        class: String,
        /// The missing method.
        method: String,
    },
    /// A field was not found on the target object.
    UnknownField {
        /// The target's dynamic class.
        class: String,
        /// The missing field.
        field: String,
    },
    /// Instantiation of an undefined class.
    UnknownClass(String),
    /// A constructor was called with the wrong number of arguments.
    ConstructorArity {
        /// The instantiated class.
        class: String,
        /// Expected argument count (number of fields).
        expected: usize,
        /// Found argument count.
        found: usize,
    },
    /// A method was called with the wrong number of arguments.
    CallArity {
        /// The receiver class.
        class: String,
        /// The method name.
        method: String,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
    },
    /// An unbound variable was referenced.
    UnboundVariable(String),
    /// A primitive operator was applied to operands of the wrong type.
    TypeError {
        /// Description of the operation and operands.
        message: String,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The per-run step budget was exhausted (runaway-program guard).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A single `while` loop exceeded the configured iteration bound.
    LoopLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// An explicit failure raised by the program via the `Sys.fail(msg)` builtin,
    /// modelling thrown exceptions.
    Raised {
        /// The failure message.
        message: String,
    },
    /// A spawned thread failed; recorded against the spawning program run.
    ThreadFailed {
        /// The failing thread.
        tid: ThreadId,
        /// The underlying error, boxed to keep this enum small.
        cause: Box<RuntimeError>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NullDereference { member } => {
                write!(f, "null dereference while accessing `{member}`")
            }
            RuntimeError::UnknownMethod { class, method } => {
                write!(f, "class `{class}` has no method `{method}`")
            }
            RuntimeError::UnknownField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            RuntimeError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            RuntimeError::ConstructorArity {
                class,
                expected,
                found,
            } => write!(
                f,
                "constructor of `{class}` expects {expected} arguments, found {found}"
            ),
            RuntimeError::CallArity {
                class,
                method,
                expected,
                found,
            } => write!(
                f,
                "method `{class}.{method}` expects {expected} arguments, found {found}"
            ),
            RuntimeError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            RuntimeError::TypeError { message } => write!(f, "type error: {message}"),
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::StepLimitExceeded { limit } => {
                write!(f, "evaluation exceeded the step limit of {limit}")
            }
            RuntimeError::LoopLimitExceeded { limit } => {
                write!(f, "a loop exceeded the iteration limit of {limit}")
            }
            RuntimeError::Raised { message } => write!(f, "program failure: {message}"),
            RuntimeError::ThreadFailed { tid, cause } => {
                write!(f, "thread {tid} failed: {cause}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        let e = RuntimeError::UnknownMethod {
            class: "Counter".into(),
            method: "bump".into(),
        };
        assert!(e.to_string().contains("Counter"));
        assert!(e.to_string().contains("bump"));

        let t = RuntimeError::ThreadFailed {
            tid: ThreadId(3),
            cause: Box::new(RuntimeError::DivisionByZero),
        };
        assert!(t.to_string().contains("t3"));
        assert!(t.to_string().contains("division"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<RuntimeError>();
    }
}
