//! The self-tracing loop closed end to end: a multithreaded burst of nested spans
//! recorded into an enabled `rprism-obs` domain becomes a trace on the ordinary
//! trace model, which must survive the same pipeline as any user trace — the
//! semantic lint rules, binary serialization, and the engine's streaming ingest.

use rprism::Engine;
use rprism_obs::Obs;

/// A workload shaped like the server's own execution: several worker threads,
/// each handling "requests" that nest repository and pipeline spans, racing with
/// a main thread doing the same.
fn record_workload(obs: &Obs) {
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let obs = obs.clone();
            scope.spawn(move || {
                for request in 0..8 {
                    let _request = obs.span("request.diff");
                    {
                        let _get = obs.span("repo.get");
                        std::hint::black_box(worker * request);
                    }
                    let _scan = obs.span("pipeline.scan");
                }
            });
        }
        for _ in 0..4 {
            let _load = obs.span("engine.load");
            let _inner = obs.span("pipeline.decode");
        }
    });
    obs.counter("server.requests_total").add(32);
}

#[test]
fn self_trace_round_trips_through_the_engine_and_checks_clean() {
    let obs = Obs::enabled();
    record_workload(&obs);

    let trace = obs.self_trace("rprism-selftest");
    assert_eq!(trace.meta.name, "rprism-selftest");
    assert!(!trace.is_empty(), "the workload must have recorded spans");

    // The self-trace is a first-class trace: every semantic well-formedness rule
    // (call nesting, thread interleavings, object lifecycle) must hold, at the
    // strictness `rprism check --deny error` enforces.
    let direct = rprism_check::check_trace(&trace);
    assert!(
        direct.is_clean(),
        "self-trace must lint clean, got:\n{direct:?}"
    );

    // Round trip: canonical binary bytes → the engine's one-pass streaming
    // ingest (the same path `rprism remote obs-trace` output goes through).
    let bytes = rprism_format::trace_to_bytes(&trace, rprism_format::Encoding::Binary)
        .expect("self-trace serializes");
    let engine = Engine::new();
    let handle = engine
        .load_prepared_reader(&bytes[..])
        .expect("self-trace streams through load_prepared");
    assert_eq!(handle.meta().name, "rprism-selftest");

    let streamed = engine
        .check_reader(&bytes[..])
        .expect("self-trace streams through check");
    assert!(streamed.is_clean(), "streamed check found: {streamed:?}");
    assert_eq!(streamed.entries, trace.len());

    // And it is diffable against itself — the degenerate sanity of "a server
    // execution can be compared run over run".
    let decoded = rprism_format::trace_from_bytes(&bytes).expect("decode");
    assert_eq!(decoded, trace, "binary round trip must be exact");
    let left = engine.prepare(decoded);
    let right = engine.prepare(trace);
    let diff = engine.diff(&left, &right).expect("views never fails");
    assert_eq!(diff.num_differences(), 0, "a trace must diff clean vs itself");
}
