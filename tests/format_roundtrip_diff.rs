//! Round-trip-then-diff equivalence: serializing traces to disk, loading them back and
//! diffing/analyzing them is indistinguishable from working on the in-memory originals
//! — same matchings, same difference signatures, same deterministic cost-meter compare
//! counts — on all four §5.2 case studies, under both encodings.

use rprism::Engine;
use rprism_format::Encoding;
use rprism_regress::DiffSet;
use rprism_workloads::casestudies;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rprism-rtd-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn loaded_traces_diff_identically_to_originals() {
    for encoding in [Encoding::Binary, Encoding::Jsonl] {
        let dir = temp_dir(&encoding.to_string());
        let engine = Engine::new();
        for scenario in casestudies::all() {
            let traces = scenario.trace_all().unwrap();
            let [old_path, new_path] = traces
                .export_suspected_pair(&dir, &scenario.name, encoding)
                .unwrap();
            let loaded_old = engine.load_trace(&old_path).unwrap();
            let loaded_new = engine.load_trace(&new_path).unwrap();

            let original = engine
                .diff(&traces.traces.old_regressing, &traces.traces.new_regressing)
                .unwrap();
            let loaded = engine.diff(&loaded_old, &loaded_new).unwrap();

            // Same regions: matchings and difference sequences.
            assert_eq!(
                original.matching.normalized_pairs(),
                loaded.matching.normalized_pairs(),
                "{} ({encoding}): matchings diverged",
                scenario.name
            );
            assert_eq!(
                original.sequences, loaded.sequences,
                "{} ({encoding}): difference sequences diverged",
                scenario.name
            );
            // Same signatures: the canonical trace-independent difference identities.
            let original_set = DiffSet::from_diff(
                &original,
                traces.traces.old_regressing.trace(),
                traces.traces.new_regressing.trace(),
            );
            let loaded_set = DiffSet::from_diff(&loaded, loaded_old.trace(), loaded_new.trace());
            assert_eq!(
                original_set, loaded_set,
                "{} ({encoding}): DiffSignatures diverged",
                scenario.name
            );
            // Same deterministic cost: the compare-operation count of the diff.
            assert_eq!(
                original.cost.compare_ops, loaded.cost.compare_ops,
                "{} ({encoding}): compare-op counts diverged",
                scenario.name
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn loaded_traces_analyze_identically_to_originals() {
    let dir = temp_dir("analyze");
    let engine = Engine::new();
    for scenario in casestudies::all() {
        let traces = scenario.trace_all().unwrap();
        let paths = traces
            .export(&dir, &scenario.name, Encoding::Binary)
            .unwrap();
        let loaded: Vec<_> = paths
            .iter()
            .map(|p| engine.load_trace(p).unwrap())
            .collect();
        let loaded_input = rprism::RegressionInput::new(
            loaded[0].clone(),
            loaded[1].clone(),
            loaded[2].clone(),
            loaded[3].clone(),
        )
        .with_mode(scenario.analysis_mode());

        let original = engine.analyze(&traces.traces).unwrap();
        let from_disk = engine.analyze(&loaded_input).unwrap();

        assert_eq!(original.suspected, from_disk.suspected, "{}", scenario.name);
        assert_eq!(original.expected, from_disk.expected, "{}", scenario.name);
        assert_eq!(original.regression, from_disk.regression, "{}", scenario.name);
        assert_eq!(original.candidates, from_disk.candidates, "{}", scenario.name);
        assert_eq!(
            original.compare_ops, from_disk.compare_ops,
            "{}: analysis compare-op counts diverged",
            scenario.name
        );
        assert_eq!(
            original
                .sequences
                .iter()
                .map(|s| (s.sequence.clone(), s.regression_related))
                .collect::<Vec<_>>(),
            from_disk
                .sequences
                .iter()
                .map(|s| (s.sequence.clone(), s.regression_related))
                .collect::<Vec<_>>(),
            "{}: sequence verdicts diverged",
            scenario.name
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
