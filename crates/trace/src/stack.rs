//! Call stacks and stack snapshots.
//!
//! The paper's semantics threads an ordered set of stacks `S̄` through evaluation, one per
//! thread, with frames `s(m, θ, θ')` meaning "method `m` of object `θ'` was invoked from
//! object `θ`". Thread events record stack *snapshots*: `fork(S̄)` captures the full
//! ancestry (spawn-point call stack, the spawner's spawn-point stack, and so on) so that
//! thread-view correlation can find the "closest match" between executions (§2.3, §3.1).


use rprism_lang::MethodName;

use crate::objrep::ObjRep;

/// A single stack frame `s(m, θ, θ')`: method `m` of callee `θ'` invoked from caller `θ`.
#[derive(Clone, Debug, PartialEq)]
pub struct StackFrame {
    /// The invoked method.
    pub method: MethodName,
    /// The representation of the caller object.
    pub caller: ObjRep,
    /// The representation of the callee (receiver) object.
    pub callee: ObjRep,
}

impl StackFrame {
    /// Creates a frame.
    pub fn new(method: MethodName, caller: ObjRep, callee: ObjRep) -> Self {
        StackFrame {
            method,
            caller,
            callee,
        }
    }
}

/// An immutable snapshot of one thread's call stack, outermost frame first.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StackSnapshot {
    /// The frames, outermost (oldest) first.
    pub frames: Vec<StackFrame>,
}

impl StackSnapshot {
    /// An empty stack.
    pub fn empty() -> Self {
        StackSnapshot { frames: Vec::new() }
    }

    /// Creates a snapshot from frames (outermost first).
    pub fn new(frames: Vec<StackFrame>) -> Self {
        StackSnapshot { frames }
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` when the stack has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The sequence of method names, outermost first; the feature used for comparing
    /// spawn-point stacks across executions.
    pub fn method_names(&self) -> Vec<&MethodName> {
        self.frames.iter().map(|f| &f.method).collect()
    }

    /// A similarity score in `[0, 1]` between two stack snapshots, based on the longest
    /// common prefix of their method-name sequences (the deeper the shared prefix, the
    /// closer the spawn contexts). Used by thread-view correlation to pick the closest
    /// matching thread (§3.1).
    pub fn similarity(&self, other: &StackSnapshot) -> f64 {
        if self.frames.is_empty() && other.frames.is_empty() {
            return 1.0;
        }
        let max_len = self.frames.len().max(other.frames.len());
        if max_len == 0 {
            return 1.0;
        }
        let mut common = 0usize;
        for (a, b) in self.frames.iter().zip(other.frames.iter()) {
            if a.method == b.method && a.callee.class == b.callee.class {
                common += 1;
            } else {
                break;
            }
        }
        common as f64 / max_len as f64
    }
}

/// Similarity between two full thread ancestries (sequences of stack snapshots, the
/// youngest thread's spawn stack first): the average of pairwise snapshot similarities
/// over the aligned prefix, penalized when the ancestries have different lengths.
pub fn ancestry_similarity(a: &[StackSnapshot], b: &[StackSnapshot]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    let paired: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| x.similarity(y))
        .sum();
    paired / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objrep::{CreationSeq, Loc};

    fn frame(method: &str, class: &str) -> StackFrame {
        StackFrame::new(
            MethodName::new(method),
            ObjRep::null(),
            ObjRep::opaque_object(Loc(1), class, CreationSeq(0)),
        )
    }

    #[test]
    fn identical_stacks_have_similarity_one() {
        let s = StackSnapshot::new(vec![frame("main", "Main"), frame("run", "Worker")]);
        assert!((s.similarity(&s) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_stacks_are_similar() {
        assert_eq!(StackSnapshot::empty().similarity(&StackSnapshot::empty()), 1.0);
        assert!(StackSnapshot::empty().is_empty());
    }

    #[test]
    fn divergence_reduces_similarity() {
        let a = StackSnapshot::new(vec![frame("main", "Main"), frame("run", "Worker")]);
        let b = StackSnapshot::new(vec![frame("main", "Main"), frame("other", "Worker")]);
        let sim = a.similarity(&b);
        assert!(sim > 0.0 && sim < 1.0, "similarity was {sim}");
    }

    #[test]
    fn prefix_mismatch_is_zero() {
        let a = StackSnapshot::new(vec![frame("alpha", "A")]);
        let b = StackSnapshot::new(vec![frame("beta", "B")]);
        assert_eq!(a.similarity(&b), 0.0);
    }

    #[test]
    fn depth_difference_penalized() {
        let a = StackSnapshot::new(vec![frame("main", "Main")]);
        let b = StackSnapshot::new(vec![frame("main", "Main"), frame("run", "Worker")]);
        assert_eq!(a.similarity(&b), 0.5);
    }

    #[test]
    fn ancestry_similarity_averages_snapshots() {
        let sa = StackSnapshot::new(vec![frame("main", "Main")]);
        let sb = StackSnapshot::new(vec![frame("main", "Main"), frame("spawnWorkers", "Pool")]);
        assert_eq!(ancestry_similarity(&[], &[]), 1.0);
        assert_eq!(
            ancestry_similarity(std::slice::from_ref(&sa), std::slice::from_ref(&sa)),
            1.0
        );
        let partial =
            ancestry_similarity(&[sa.clone(), sb.clone()], std::slice::from_ref(&sa));
        assert!(partial < 1.0 && partial > 0.0);
    }

    #[test]
    fn method_names_in_order() {
        let s = StackSnapshot::new(vec![frame("outer", "A"), frame("inner", "B")]);
        let names: Vec<String> = s.method_names().iter().map(|m| m.to_string()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        assert_eq!(s.depth(), 2);
    }
}
