//! Live-watch ≡ batch equivalence: on all four §5.2 case studies, a [`rprism::Watch`]
//! fed the new trace in chunks — at every boundary in {1, 7, 256, whole} — produces a
//! final verdict identical to the batch differ (matchings, difference sequences,
//! deterministic compare counts), and the same holds for
//! [`Engine::watch_prepared`](rprism::Engine::watch_prepared) tailing serialized files
//! under both on-disk encodings with byte-level chunk boundaries. The provisional
//! event stream is checked for the monotonic invalidation rule throughout: a retracted
//! pair is never re-reported as a match, not even by the final reconciliation.

use std::collections::HashSet;

use rprism::{Encoding, Engine, ProvisionalEvent, TraceDiffResult};
use rprism_format::TraceReader;
use rprism_workloads::casestudies;

/// Entry-chunk boundaries exercised by the push-driven test; `usize::MAX` stands for
/// "the whole trace in one push".
const CHUNKS: [usize; 4] = [1, 7, 256, usize::MAX];

fn assert_same_verdict(context: &str, watched: &TraceDiffResult, batch: &TraceDiffResult) {
    assert_eq!(
        watched.matching.normalized_pairs(),
        batch.matching.normalized_pairs(),
        "{context}: matchings diverged"
    );
    assert_eq!(
        watched.sequences, batch.sequences,
        "{context}: difference sequences diverged"
    );
    assert_eq!(
        watched.cost.compare_ops, batch.cost.compare_ops,
        "{context}: compare counts diverged"
    );
    assert_eq!(
        watched.num_differences(),
        batch.num_differences(),
        "{context}: verdicts diverged"
    );
}

/// Checks the monotonic invalidation rule over the full event stream (pushes and the
/// final reconciliation concatenated), and returns the surviving matched pairs.
fn assert_monotone(context: &str, events: &[ProvisionalEvent]) -> HashSet<(usize, usize)> {
    let mut retracted: HashSet<(usize, usize)> = HashSet::new();
    let mut surviving: HashSet<(usize, usize)> = HashSet::new();
    for event in events {
        match *event {
            ProvisionalEvent::Match { left, right } => {
                assert!(
                    !retracted.contains(&(left, right)),
                    "{context}: pair ({left}, {right}) re-matched after retraction"
                );
                surviving.insert((left, right));
            }
            ProvisionalEvent::Invalidate { left, right } => {
                retracted.insert((left, right));
                surviving.remove(&(left, right));
            }
            ProvisionalEvent::Difference { .. } => {}
        }
    }
    surviving
}

#[test]
fn push_driven_watch_chunked_at_every_boundary_matches_the_batch_differ() {
    let engine = Engine::new();
    for scenario in casestudies::all() {
        let traces = scenario.trace_all().unwrap();
        let [old, new, ..] = traces.handles();
        let batch = engine.diff(old, new).unwrap();
        let entries = &new.trace().entries;
        for chunk in CHUNKS {
            let context = format!("{} (chunk {chunk})", scenario.name);
            let mut watch = engine.watch(old, new.trace().meta.clone());
            let mut events = Vec::new();
            for slice in entries.chunks(chunk.min(entries.len().max(1))) {
                events.extend(watch.push_entries(slice).unwrap());
            }
            let outcome = watch.finish().unwrap();
            events.extend(outcome.events.iter().cloned());
            assert_same_verdict(&context, &outcome.result, &batch);

            // Monotone stream, and every surviving provisional match is confirmed by
            // the authoritative matching (retraction may drop pairs, never add them).
            let surviving = assert_monotone(&context, &events);
            let authoritative: HashSet<(usize, usize)> =
                batch.matching.normalized_pairs().into_iter().collect();
            assert!(
                surviving.is_subset(&authoritative),
                "{context}: a provisional match survived finish() without being \
                 confirmed by the batch matching"
            );
        }
    }
}

#[test]
fn watch_prepared_over_both_encodings_matches_the_batch_differ() {
    let dir = std::env::temp_dir().join(format!("rprism-watch-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Engine::new();
    for encoding in [Encoding::Binary, Encoding::Jsonl] {
        for scenario in casestudies::all() {
            let traces = scenario.trace_all().unwrap();
            let [old_path, new_path] = traces
                .export_suspected_pair(&dir, &scenario.name, encoding)
                .unwrap();
            let old = engine.load_prepared(&old_path).unwrap();
            let new = engine.load_prepared(&new_path).unwrap();
            let batch = engine.diff(&old, &new).unwrap();

            // Byte-level chunk boundaries: the reader's buffer capacity caps how many
            // bytes each fill sees, so records arrive split mid-varint and mid-line.
            for capacity in [1usize, 7, 64 * 1024] {
                let context = format!("{} ({encoding}, {capacity}-byte reads)", scenario.name);
                let file = std::fs::File::open(&new_path).unwrap();
                let reader =
                    TraceReader::new(std::io::BufReader::with_capacity(capacity, file)).unwrap();
                let mut events = Vec::new();
                let outcome = engine
                    .watch_prepared(&old, reader, |event| events.push(event.clone()), || false)
                    .unwrap();
                events.extend(outcome.events.iter().cloned());
                assert_same_verdict(&context, &outcome.result, &batch);
                assert_monotone(&context, &events);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
