//! Regression injection by AST mutation.
//!
//! The paper's quantitative evaluation (§5.1) injects regressions into the post-fix
//! versions of the iBUGS Rhino bugs following the root-cause distribution that an
//! empirical study found for semantic bugs in Mozilla: missing features (26.4 %), missing
//! cases (17.3 %), boundary conditions (10.3 %), control flow (16.0 %), wrong expressions
//! (5.8 %) and typos (24.2 %). This module implements one mutation operator per root-cause
//! category over the core-calculus AST.

use crate::rngcompat::StdRng;

use rprism_lang::ast::{BinOp, Lit, Program, Term};
use rprism_lang::FieldName;

/// The root-cause categories of §5.1 with their empirical weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RootCause {
    /// A statement (feature) present in the original is missing in the new version.
    MissingFeature,
    /// A case of a conditional is no longer handled.
    MissingCase,
    /// An off-by-one / inclusive-exclusive boundary error.
    BoundaryCondition,
    /// Control flow altered (branches swapped or condition negated).
    ControlFlow,
    /// An arithmetic expression computes the wrong value.
    WrongExpression,
    /// A "typo": the wrong (but type-compatible) field or constant is used.
    Typo,
}

impl RootCause {
    /// All categories with their weights from the paper (percentages).
    pub const WEIGHTED: [(RootCause, f64); 6] = [
        (RootCause::MissingFeature, 26.4),
        (RootCause::MissingCase, 17.3),
        (RootCause::BoundaryCondition, 10.3),
        (RootCause::ControlFlow, 16.0),
        (RootCause::WrongExpression, 5.8),
        (RootCause::Typo, 24.2),
    ];

    /// Samples a category according to the paper's distribution.
    pub fn sample(rng: &mut StdRng) -> RootCause {
        let total: f64 = Self::WEIGHTED.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for (cause, weight) in Self::WEIGHTED {
            if x < weight {
                return cause;
            }
            x -= weight;
        }
        RootCause::Typo
    }

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RootCause::MissingFeature => "missing-feature",
            RootCause::MissingCase => "missing-case",
            RootCause::BoundaryCondition => "boundary-condition",
            RootCause::ControlFlow => "control-flow",
            RootCause::WrongExpression => "wrong-expression",
            RootCause::Typo => "typo",
        }
    }
}

/// Describes a successfully injected mutation.
#[derive(Clone, Debug)]
pub struct MutationOutcome {
    /// The root-cause category of the mutation.
    pub cause: RootCause,
    /// The class whose method was mutated.
    pub class: String,
    /// The method that was mutated.
    pub method: String,
    /// A human-readable description of what changed.
    pub description: String,
}

/// Applies one mutation of the given category to the program (in place).
///
/// Returns `None` when the program offers no applicable mutation site for the category.
pub fn inject(program: &mut Program, cause: RootCause, rng: &mut StdRng) -> Option<MutationOutcome> {
    if cause == RootCause::MissingFeature {
        return inject_missing_feature(program, rng);
    }
    // Enumerate candidate sites: (class index, method index, site ordinal within method).
    let mut sites: Vec<(usize, usize, usize)> = Vec::new();
    for (ci, class) in program.classes.iter().enumerate() {
        if class.name.as_str() == "Sys" {
            continue;
        }
        for (mi, method) in class.methods.iter().enumerate() {
            let mut count = 0usize;
            for term in &method.body {
                count_sites(term, cause, &mut count);
            }
            for s in 0..count {
                sites.push((ci, mi, s));
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (ci, mi, site) = sites[rng.gen_range(0..sites.len())];
    let class_name = program.classes[ci].name.as_str().to_owned();
    let method_name = program.classes[ci].methods[mi].name.as_str().to_owned();
    let class_fields: Vec<FieldName> = program.classes[ci]
        .fields
        .iter()
        .map(|(f, _)| f.clone())
        .collect();

    let mut remaining = site;
    let mut description = None;
    let body = &mut program.classes[ci].methods[mi].body;
    for term in body.iter_mut() {
        if description.is_some() {
            break;
        }
        apply_at_site(term, cause, &mut remaining, &mut description, &class_fields, rng);
    }

    description.map(|description| MutationOutcome {
        cause,
        class: class_name,
        method: method_name,
        description,
    })
}

/// Removes a statement-position method call from some method body ("missing feature").
fn inject_missing_feature(program: &mut Program, rng: &mut StdRng) -> Option<MutationOutcome> {
    // Candidate sites: top-level call statements in method bodies that are not the final
    // (return-value) term, so removal cannot change a method's result type.
    let mut sites: Vec<(usize, usize, usize)> = Vec::new();
    for (ci, class) in program.classes.iter().enumerate() {
        if class.name.as_str() == "Sys" {
            continue;
        }
        for (mi, method) in class.methods.iter().enumerate() {
            if method.body.len() < 2 {
                continue;
            }
            for (ti, term) in method.body[..method.body.len() - 1].iter().enumerate() {
                if matches!(term, Term::Call { .. }) {
                    sites.push((ci, mi, ti));
                }
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (ci, mi, ti) = sites[rng.gen_range(0..sites.len())];
    let class_name = program.classes[ci].name.as_str().to_owned();
    let method_name = program.classes[ci].methods[mi].name.as_str().to_owned();
    let removed = program.classes[ci].methods[mi].body.remove(ti);
    let description = match removed {
        Term::Call { method, .. } => format!("removed call to `{method}`"),
        _ => "removed a statement".to_owned(),
    };
    Some(MutationOutcome {
        cause: RootCause::MissingFeature,
        class: class_name,
        method: method_name,
        description,
    })
}

/// Counts the mutation sites of the given category inside a term (pre-order).
fn count_sites(term: &Term, cause: RootCause, count: &mut usize) {
    if site_matches(term, cause) {
        *count += 1;
    }
    term.for_each_child(|c| count_sites(c, cause, count));
}

fn site_matches(term: &Term, cause: RootCause) -> bool {
    match cause {
        RootCause::MissingFeature => {
            matches!(term, Term::Seq(terms) if terms.iter().any(|t| matches!(t, Term::Call { .. })))
        }
        RootCause::MissingCase | RootCause::ControlFlow => matches!(term, Term::If { .. }),
        RootCause::BoundaryCondition => matches!(
            term,
            Term::Bin {
                op: BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge,
                ..
            }
        ),
        RootCause::WrongExpression => matches!(
            term,
            Term::Bin {
                op: BinOp::Add | BinOp::Sub | BinOp::Mul,
                ..
            }
        ),
        RootCause::Typo => matches!(
            term,
            Term::FieldGet { .. } | Term::Lit(Lit::Int(_)) | Term::Lit(Lit::Str(_))
        ),
    }
}

/// Walks the term pre-order; when the `remaining`-th matching site is reached, applies the
/// mutation and records a description.
fn apply_at_site(
    term: &mut Term,
    cause: RootCause,
    remaining: &mut usize,
    description: &mut Option<String>,
    class_fields: &[FieldName],
    rng: &mut StdRng,
) {
    if description.is_some() {
        return;
    }
    if site_matches(term, cause) {
        if *remaining == 0 {
            *description = Some(mutate_term(term, cause, class_fields, rng));
            return;
        }
        *remaining -= 1;
    }
    // Recurse into children mutably.
    match term {
        Term::Var(_) | Term::This | Term::Lit(_) => {}
        Term::FieldGet { target, .. } => {
            apply_at_site(target, cause, remaining, description, class_fields, rng)
        }
        Term::FieldSet { target, value, .. } => {
            apply_at_site(target, cause, remaining, description, class_fields, rng);
            apply_at_site(value, cause, remaining, description, class_fields, rng);
        }
        Term::Call { target, args, .. } => {
            apply_at_site(target, cause, remaining, description, class_fields, rng);
            for a in args {
                apply_at_site(a, cause, remaining, description, class_fields, rng);
            }
        }
        Term::New { args, .. } => {
            for a in args {
                apply_at_site(a, cause, remaining, description, class_fields, rng);
            }
        }
        Term::Spawn { body } => {
            for t in body {
                apply_at_site(t, cause, remaining, description, class_fields, rng);
            }
        }
        Term::Seq(terms) => {
            for t in terms {
                apply_at_site(t, cause, remaining, description, class_fields, rng);
            }
        }
        Term::Return(value) => {
            apply_at_site(value, cause, remaining, description, class_fields, rng);
        }
        Term::Let { value, body, .. } => {
            apply_at_site(value, cause, remaining, description, class_fields, rng);
            apply_at_site(body, cause, remaining, description, class_fields, rng);
        }
        Term::If {
            cond,
            then_branch,
            else_branch,
        } => {
            apply_at_site(cond, cause, remaining, description, class_fields, rng);
            apply_at_site(then_branch, cause, remaining, description, class_fields, rng);
            apply_at_site(else_branch, cause, remaining, description, class_fields, rng);
        }
        Term::While { cond, body } => {
            apply_at_site(cond, cause, remaining, description, class_fields, rng);
            apply_at_site(body, cause, remaining, description, class_fields, rng);
        }
        Term::Bin { lhs, rhs, .. } => {
            apply_at_site(lhs, cause, remaining, description, class_fields, rng);
            apply_at_site(rhs, cause, remaining, description, class_fields, rng);
        }
        Term::Un { operand, .. } => {
            apply_at_site(operand, cause, remaining, description, class_fields, rng)
        }
    }
}

fn mutate_term(
    term: &mut Term,
    cause: RootCause,
    class_fields: &[FieldName],
    rng: &mut StdRng,
) -> String {
    match cause {
        RootCause::MissingFeature => {
            if let Term::Seq(terms) = term {
                let call_positions: Vec<usize> = terms
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t, Term::Call { .. }))
                    .map(|(i, _)| i)
                    .collect();
                let pos = call_positions[rng.gen_range(0..call_positions.len())];
                let removed = terms.remove(pos);
                if terms.is_empty() {
                    terms.push(Term::unit());
                }
                if let Term::Call { method, .. } = removed {
                    return format!("removed call to `{method}`");
                }
                return "removed a call statement".to_owned();
            }
            unreachable!("site_matches guarantees a Seq with a call")
        }
        RootCause::MissingCase => {
            if let Term::If { cond, .. } = term {
                // The then-case is no longer handled for any input.
                **cond = Term::Bin {
                    op: BinOp::And,
                    lhs: Box::new((**cond).clone()),
                    rhs: Box::new(Term::Lit(Lit::Bool(false))),
                };
                return "narrowed a conditional so one case is no longer handled".to_owned();
            }
            unreachable!("site_matches guarantees an If")
        }
        RootCause::ControlFlow => {
            if let Term::If {
                then_branch,
                else_branch,
                ..
            } = term
            {
                std::mem::swap(then_branch, else_branch);
                return "swapped the branches of a conditional".to_owned();
            }
            unreachable!("site_matches guarantees an If")
        }
        RootCause::BoundaryCondition => {
            if let Term::Bin { op, .. } = term {
                let new_op = match *op {
                    BinOp::Lt => BinOp::Le,
                    BinOp::Le => BinOp::Lt,
                    BinOp::Gt => BinOp::Ge,
                    BinOp::Ge => BinOp::Gt,
                    other => other,
                };
                let desc = format!("changed comparison `{}` to `{}`", op.symbol(), new_op.symbol());
                *op = new_op;
                return desc;
            }
            unreachable!("site_matches guarantees a comparison")
        }
        RootCause::WrongExpression => {
            if let Term::Bin { op, .. } = term {
                let new_op = match *op {
                    BinOp::Add => BinOp::Sub,
                    BinOp::Sub => BinOp::Add,
                    BinOp::Mul => BinOp::Add,
                    other => other,
                };
                let desc = format!("changed operator `{}` to `{}`", op.symbol(), new_op.symbol());
                *op = new_op;
                return desc;
            }
            unreachable!("site_matches guarantees an arithmetic operator")
        }
        RootCause::Typo => match term {
            Term::FieldGet { field, .. } if class_fields.len() > 1 => {
                let alternatives: Vec<&FieldName> =
                    class_fields.iter().filter(|f| *f != field).collect();
                let replacement = alternatives[rng.gen_range(0..alternatives.len())].clone();
                let desc = format!("replaced read of field `{field}` with `{replacement}`");
                *field = replacement;
                desc
            }
            Term::Lit(Lit::Int(v)) => {
                let delta = if rng.gen_bool(0.5) { 1 } else { -1 };
                let desc = format!("changed constant {v} to {}", *v + delta);
                *v += delta;
                desc
            }
            Term::Lit(Lit::Str(s)) => {
                let desc = format!("changed string literal {s:?}");
                s.push('_');
                desc
            }
            other => {
                // Field reads on single-field classes fall back to a constant tweak when
                // possible; otherwise report an identity "typo" (caller will retry).
                let _ = other;
                "no applicable typo at this site".to_owned()
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rprism_lang::parser::parse_program;
    use rprism_lang::pretty::program_to_string;
    use rprism_lang::validate::validate;

    const SRC: &str = r#"
        class Acc extends Object {
            Int total;
            Int bonus;
            Unit add(Int v) {
                if (v > 10) {
                    this.total = this.total + v;
                } else {
                    this.total = this.total + 1;
                }
            }
            Unit twice(Int v) {
                this.add(v);
                this.add(v * 2);
            }
        }
        main {
            let a = new Acc(0, 5);
            a.twice(20);
        }
    "#;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sampling_follows_the_weighted_distribution_roughly() {
        let mut r = rng(1);
        let mut missing_feature = 0usize;
        let mut wrong_expression = 0usize;
        for _ in 0..2000 {
            match RootCause::sample(&mut r) {
                RootCause::MissingFeature => missing_feature += 1,
                RootCause::WrongExpression => wrong_expression += 1,
                _ => {}
            }
        }
        // 26.4% vs 5.8% — the most common category must clearly dominate the rarest.
        assert!(missing_feature > wrong_expression * 2);
    }

    #[test]
    fn every_category_mutates_the_sample_program() {
        for (cause, _) in RootCause::WEIGHTED {
            let mut program = parse_program(SRC).unwrap();
            let before = program_to_string(&program);
            let outcome = inject(&mut program, cause, &mut rng(7));
            let outcome = match outcome {
                Some(o) => o,
                None => panic!("no mutation site for {cause:?}"),
            };
            let after = program_to_string(&program);
            assert_ne!(before, after, "{cause:?} did not change the program");
            assert!(!outcome.description.is_empty());
            assert_eq!(outcome.class, "Acc");
            // Mutated programs remain well-formed.
            validate(&program).expect("mutated program still validates");
        }
    }

    #[test]
    fn mutation_is_deterministic_for_a_fixed_seed() {
        let mutate = |seed| {
            let mut p = parse_program(SRC).unwrap();
            inject(&mut p, RootCause::BoundaryCondition, &mut rng(seed)).unwrap();
            program_to_string(&p)
        };
        assert_eq!(mutate(42), mutate(42));
    }

    #[test]
    fn missing_feature_removes_a_call() {
        let mut program = parse_program(SRC).unwrap();
        let outcome = inject(&mut program, RootCause::MissingFeature, &mut rng(3)).unwrap();
        assert!(outcome.description.contains("removed call"));
        // One of the two add calls in `twice` is gone.
        let twice = program.class("Acc").unwrap().method("twice").unwrap();
        let calls = twice
            .body
            .iter()
            .map(Term::size)
            .sum::<usize>();
        let original = parse_program(SRC).unwrap();
        let orig_calls = original
            .class("Acc")
            .unwrap()
            .method("twice")
            .unwrap()
            .body
            .iter()
            .map(Term::size)
            .sum::<usize>();
        assert!(calls < orig_calls);
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = RootCause::WEIGHTED.iter().map(|(c, _)| c.label()).collect();
        assert_eq!(labels.len(), RootCause::WEIGHTED.len());
    }

    #[test]
    fn programs_without_sites_return_none() {
        let mut program = parse_program("main { 1 + 1; }").unwrap();
        assert!(inject(&mut program, RootCause::ControlFlow, &mut rng(0)).is_none());
    }
}
