//! The `rprism` command-line tool: record, inspect, difference and analyze on-disk
//! execution traces.
//!
//! ```text
//! rprism record <source.rp> --out <file> [--label L] [--encoding binary|jsonl]
//! rprism record --scenario <name|all> --dir <dir> [--encoding binary|jsonl]
//! rprism gen --out <file> [--entries N] [--seed S] [--encoding binary|jsonl]
//! rprism diff <a> <b> [<c> <d> …] [--lcs] [--max-seqs N] [--quiet] [--full]
//! rprism analyze <or> <nr> <op> <np> [… groups of four] [--mode intersect|subtract] [--full]
//! rprism convert <in> <out> [--encoding binary|jsonl]
//! rprism corpus --dir <dir> [--check]
//! ```
//!
//! Trace files are read with content sniffing (binary `.rtr` or JSONL text, regardless
//! of extension). `diff` and `analyze` ingest their inputs with the **streaming prepare
//! pipeline** (`Engine::load_prepared`): keys and view webs are built in one
//! bounded-memory pass and the full traces are never materialized, so trace files far
//! larger than memory can be differenced. `--full` switches back to whole-trace loading,
//! whose reports render complete entry text (streamed reports render compact context
//! lines). Batch invocations — several `diff` pairs, several `analyze` quadruples — fan
//! out through the session engine's `diff_many`/`analyze_many`, so a directory of
//! recorded traces is one command away from a full batch analysis.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rprism::{
    AnalysisMode, Encoding, Engine, LcsDiffOptions, PreparedTrace, RegressionInput, RenderOptions,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("rprism: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  rprism record <source.rp> --out <file> [--label <name>] [--encoding binary|jsonl]
      Parse and trace a program source file, storing its trace.
  rprism record --scenario <name|all> --dir <dir> [--encoding binary|jsonl]
      Export the four traces of a built-in case study (daikon, xalan-1725,
      xalan-1802, derby-1633) or of all of them.
  rprism gen --out <file> [--entries <n>] [--seed <s>] [--encoding binary|jsonl]
      Generate a deterministic synthetic trace (load testing, format smoke tests).
  rprism diff <a> <b> [<c> <d> ...] [--lcs] [--max-seqs <n>] [--quiet] [--full]
      Semantically difference stored trace pairs (batched via diff_many).
      Inputs are streamed through the bounded-memory prepare pipeline; --full
      loads whole traces instead (complete entry text in the rendered diff).
  rprism analyze <or> <nr> <op> <np> [...] [--mode intersect|subtract] [--max-seqs <n>] [--full]
      Run the regression-cause analysis over stored trace quadruples
      (old-regressing, new-regressing, old-passing, new-passing; batched,
      streamed like diff unless --full).
  rprism convert <in> <out> [--encoding binary|jsonl]
      Re-encode a stored trace (default: encoding implied by <out>'s extension).
  rprism corpus --dir <dir> [--check]
      Regenerate the golden case-study corpus (or verify it, failing on drift).";

/// One parsed flag set: positionals plus `--key value` / bare `--switch` options.
struct Args {
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

/// Flags that take a value; everything else starting with `--` is a switch.
const VALUE_FLAGS: &[&str] = &[
    "--out", "--label", "--encoding", "--scenario", "--dir", "--max-seqs", "--mode",
    "--entries", "--seed",
];

impl Args {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let key = format!("--{flag}");
                if VALUE_FLAGS.contains(&key.as_str()) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("flag {key} expects a value"))?;
                    options.push((key, Some(value.clone())));
                } else {
                    options.push((key, None));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args {
            positional,
            options,
        })
    }

    fn value(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn switch(&self, key: &str) -> bool {
        self.options.iter().any(|(k, _)| k == key)
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (key, _) in &self.options {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown flag {key} (see `rprism help`)"));
            }
        }
        Ok(())
    }

    fn encoding(&self) -> Result<Option<Encoding>, String> {
        self.value("--encoding").map(str::parse).transpose()
    }

    fn max_seqs(&self) -> Result<usize, String> {
        match self.value("--max-seqs") {
            None => Ok(5),
            Some(text) => text
                .parse()
                .map_err(|_| format!("--max-seqs expects a number, got {text:?}")),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return Err("missing subcommand".into());
    };
    let parsed = Args::parse(rest)?;
    match command.as_str() {
        "record" => record(&parsed),
        "gen" => gen(&parsed),
        "diff" => diff(&parsed),
        "analyze" => analyze(&parsed),
        "convert" => convert(&parsed),
        "corpus" => corpus(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("{USAGE}");
            Err(format!("unknown subcommand {other:?}"))
        }
    }
}

/// Loads one trace input: streamed through the bounded-memory prepare pipeline by
/// default, as a whole in-memory trace with `full`.
fn load(engine: &Engine, path: &str, full: bool) -> Result<PreparedTrace, String> {
    if full {
        engine.load_trace(path)
    } else {
        engine.load_prepared(path)
    }
    .map_err(|e| format!("cannot load {path}: {e}"))
}

/// Renders a semantic diff, sourcing entry lines from the handles so streamed inputs
/// (which hold no full entries) render compact context lines instead of failing.
fn render_diff(
    result: &rprism::TraceDiffResult,
    left: &PreparedTrace,
    right: &PreparedTrace,
    max_sequences: usize,
) -> String {
    result.render_with(
        max_sequences,
        |idx| left.describe_entry(idx),
        |idx| right.describe_entry(idx),
    )
}

fn gen(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--out", "--entries", "--seed", "--encoding"])?;
    if !args.positional.is_empty() {
        return Err("gen takes no positional arguments (use --out <file>)".into());
    }
    let out = PathBuf::from(args.value("--out").ok_or("gen expects --out <file>")?);
    let parse_num = |key: &str, default: u64| -> Result<u64, String> {
        match args.value(key) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("{key} expects a number, got {text:?}")),
        }
    };
    let entries = parse_num("--entries", 10_000)?;
    let seed = parse_num("--seed", 0x5eed)?;
    let mut rng = rprism::trace::testgen::Rng::new(seed);
    let trace = rprism::trace::testgen::arbitrary_trace(&mut rng, entries as usize);
    let encoding = args
        .encoding()?
        .unwrap_or_else(|| Encoding::for_path(&out));
    rprism_format::write_trace_path(&trace, &out, encoding)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} entries, seed {seed}, {} encoding)",
        out.display(),
        trace.len(),
        encoding
    );
    Ok(())
}

fn record(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--out", "--label", "--encoding", "--scenario", "--dir"])?;
    let encoding = args.encoding()?;
    if let Some(scenario) = args.value("--scenario") {
        if !args.positional.is_empty() || args.value("--out").is_some() || args.value("--label").is_some()
        {
            return Err(
                "record --scenario exports a built-in case study and cannot be combined \
                 with a source file, --out or --label"
                    .into(),
            );
        }
        let dir = args
            .value("--dir")
            .ok_or("record --scenario expects --dir <dir>")?;
        let written =
            rprism_workloads::corpus::export_scenario(scenario, dir, encoding.unwrap_or_default())
                .map_err(|e| e.to_string())?;
        for path in &written {
            println!("wrote {}", path.display());
        }
        return Ok(());
    }
    if args.value("--dir").is_some() {
        return Err("record --dir only applies to --scenario exports (use --out <file>)".into());
    }
    let [source] = args.positional.as_slice() else {
        return Err("record expects one source file (or --scenario)".into());
    };
    let out = args.value("--out").ok_or("record expects --out <file>")?;
    let out = PathBuf::from(out);
    let label = args
        .value("--label")
        .map(str::to_owned)
        .unwrap_or_else(|| {
            Path::new(source)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "trace".to_owned())
        });
    let src =
        std::fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?;
    let engine = Engine::new();
    let prepared = engine
        .trace_source(&src, &label)
        .map_err(|e| format!("cannot trace {source}: {e}"))?;
    if let Some(err) = prepared.run_error() {
        eprintln!("note: traced run ended with a runtime error: {err}");
    }
    let encoding = encoding.unwrap_or_else(|| Encoding::for_path(&out));
    engine
        .store_trace_as(&prepared, &out, encoding)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} entries, {} encoding)",
        out.display(),
        prepared.len(),
        encoding
    );
    Ok(())
}

fn diff(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--lcs", "--max-seqs", "--quiet", "--full"])?;
    let paths = &args.positional;
    if paths.len() < 2 || !paths.len().is_multiple_of(2) {
        return Err(format!(
            "diff expects an even number of trace files (pairs), got {}",
            paths.len()
        ));
    }
    let max_seqs = args.max_seqs()?;
    let full = args.switch("--full");
    let mut builder = Engine::builder();
    if args.switch("--lcs") {
        builder = builder.lcs_baseline(LcsDiffOptions::default());
    }
    let engine = builder.build();
    let mut pairs = Vec::new();
    for chunk in paths.chunks(2) {
        pairs.push((load(&engine, &chunk[0], full)?, load(&engine, &chunk[1], full)?));
    }
    let results = engine
        .diff_many(&pairs)
        .map_err(|e| format!("differencing failed: {e}"))?;
    for (result, (pair, (left, right))) in results.iter().zip(paths.chunks(2).zip(&pairs)) {
        println!(
            "{} vs {}: {} differences in {} sequences ({} similar entries, {} compare ops, {})",
            pair[0],
            pair[1],
            result.num_differences(),
            result.num_sequences(),
            result.num_similar(),
            result.cost.compare_ops,
            result.algorithm,
        );
        if !args.switch("--quiet") {
            print!("{}", render_diff(result, left, right, max_seqs));
        }
    }
    Ok(())
}

fn analyze(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--mode", "--max-seqs", "--full"])?;
    let paths = &args.positional;
    if paths.is_empty() || !paths.len().is_multiple_of(4) {
        return Err(format!(
            "analyze expects groups of four trace files \
             (old-regressing new-regressing old-passing new-passing), got {}",
            paths.len()
        ));
    }
    let mode = match args.value("--mode") {
        None => None,
        Some("intersect") => Some(AnalysisMode::Intersect),
        Some("subtract") => Some(AnalysisMode::SubtractRegressionSet),
        Some(other) => {
            return Err(format!(
                "unknown analysis mode {other:?} (expected `intersect` or `subtract`)"
            ))
        }
    };
    let engine = Engine::builder()
        .render_options(RenderOptions {
            max_regression_sequences: args.max_seqs()?,
            ..RenderOptions::default()
        })
        .build();
    let full = args.switch("--full");
    let mut inputs = Vec::new();
    for group in paths.chunks(4) {
        let mut input = RegressionInput::new(
            load(&engine, &group[0], full)?,
            load(&engine, &group[1], full)?,
            load(&engine, &group[2], full)?,
            load(&engine, &group[3], full)?,
        );
        if let Some(mode) = mode {
            input = input.with_mode(mode);
        }
        inputs.push(input);
    }
    let reports = engine
        .analyze_many(&inputs)
        .map_err(|e| format!("analysis failed: {e}"))?;
    for (report, (group, input)) in reports.iter().zip(paths.chunks(4).zip(&inputs)) {
        println!(
            "analysis of {} vs {} (expected {} / {}):",
            group[0], group[1], group[2], group[3]
        );
        println!(
            "  suspected {} / expected {} / regression {} -> {} candidate causes, \
             {} regression sequences ({:?} mode, {} compare ops)",
            report.suspected.len(),
            report.expected.len(),
            report.regression.len(),
            report.candidates.len(),
            report.num_regression_sequences(),
            report.mode,
            report.compare_ops,
        );
        print!("{}", engine.render_report(report, input));
    }
    Ok(())
}

fn convert(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--encoding"])?;
    let [input, output] = args.positional.as_slice() else {
        return Err("convert expects <in> <out>".into());
    };
    let output = PathBuf::from(output);
    let encoding = args
        .encoding()?
        .unwrap_or_else(|| Encoding::for_path(&output));
    let trace = rprism_format::read_trace_path(input)
        .map_err(|e| format!("cannot load {input}: {e}"))?;
    rprism_format::write_trace_path(&trace, &output, encoding)
        .map_err(|e| format!("cannot write {}: {e}", output.display()))?;
    println!(
        "converted {} -> {} ({} entries, {} encoding)",
        input,
        output.display(),
        trace.len(),
        encoding
    );
    Ok(())
}

fn corpus(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--dir", "--check"])?;
    let dir = args.value("--dir").ok_or("corpus expects --dir <dir>")?;
    if args.switch("--check") {
        let drifted = rprism_workloads::check_corpus(dir).map_err(|e| e.to_string())?;
        if drifted.is_empty() {
            println!("corpus in {dir} matches the workloads (no drift)");
            Ok(())
        } else {
            Err(format!(
                "corpus drift in {dir}: {} file(s) differ from the regenerated \
                 workload traces: {}",
                drifted.len(),
                drifted.join(", ")
            ))
        }
    } else {
        let names = rprism_workloads::write_corpus(dir).map_err(|e| e.to_string())?;
        println!("wrote {} corpus files to {dir}", names.len());
        Ok(())
    }
}
