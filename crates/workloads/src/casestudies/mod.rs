//! The four real-life regression case studies of the paper's §5.2, re-modelled as
//! programs of the core calculus.
//!
//! The originals are large Java systems (Daikon, Apache Xalan ×2, Apache Derby). What the
//! evaluation measures, however, is not Java semantics but the *shape* of each regression:
//! how far apart cause and effect are, how much unrelated churn surrounds the change,
//! whether multiple threads are involved, and whether the regressing version fails with an
//! error. Each sub-module reproduces one of those shapes (see `DESIGN.md` for the
//! substitution table):
//!
//! * [`daikon`] — two changed predicate methods (`shouldAddInv1`/`shouldAddInv2`) in an
//!   invariant-filtering visitor; small traces; only one of the two changes affects the
//!   regressing test.
//! * [`xalan1725`] — a regression *in a compiler*: the cause is an incorrectly generated
//!   instruction, the effect only manifests when the generated program is executed later
//!   (extreme cause/effect separation).
//! * [`xalan1802`] — a completely re-architected namespace-handling module with lots of
//!   incidental churn plus one corner-case bug.
//! * [`derby`] — a multithreaded query engine where the new version's optimizer throws
//!   during query compilation for a particular predicate shape.

pub mod daikon;
pub mod derby;
pub mod xalan1725;
pub mod xalan1802;

use crate::scenario::Scenario;

/// All four case-study scenarios, in the order of the paper's Table 1.
pub fn all() -> Vec<Scenario> {
    vec![
        daikon::scenario(),
        xalan1725::scenario(),
        xalan1802::scenario(),
        derby::scenario(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_case_studies_regress() {
        for scenario in all() {
            let traces = scenario
                .trace_all()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert!(
                traces.exhibits_regression(),
                "{} does not exhibit a regression (outputs: reg {:?} vs {:?}, pass {:?} vs {:?}, errored={})",
                scenario.name,
                traces.old_regressing_output(),
                traces.new_regressing_output(),
                traces.old_passing_output(),
                traces.new_passing_output(),
                traces.new_regressing_errored,
            );
        }
    }

    #[test]
    fn case_study_names_match_the_paper() {
        let names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["daikon", "xalan-1725", "xalan-1802", "derby-1633"]
        );
    }
}
