//! Equivalence of the session-oriented `Engine` API with the deprecated free-function
//! entry points on the four §5.2 case studies: same matchings, same difference
//! sequences, same analysis sets, same deterministic cost accounting (everything except
//! wall-clock timestamps is identical). Also proves the caching contract: a
//! `PreparedTrace`'s artifacts are built exactly once no matter how many queries touch
//! them, and the batch entry points reproduce the single-call results in input order.

// The deprecated one-shot functions are the comparison baseline here, used on purpose.
#![allow(deprecated)]

use rprism::{Engine, PreparedTrace, RegressionInput};
use rprism_diff::{views_diff, TraceDiffResult, ViewsDiffOptions};
use rprism_regress::{analyze, DiffAlgorithm, RegressionReport, RegressionTraces};
use rprism_workloads::casestudies;

fn assert_same_diff(name: &str, a: &TraceDiffResult, b: &TraceDiffResult) {
    assert_eq!(
        a.matching.normalized_pairs(),
        b.matching.normalized_pairs(),
        "{name}: similarity sets diverged"
    );
    assert_eq!(a.sequences, b.sequences, "{name}: sequences diverged");
    assert_eq!(
        a.cost.compare_ops, b.cost.compare_ops,
        "{name}: compare-op accounting diverged"
    );
    assert_eq!(
        a.cost.peak_bytes, b.cost.peak_bytes,
        "{name}: working-set accounting diverged"
    );
    assert_eq!(a.algorithm, b.algorithm);
}

fn assert_same_report(name: &str, a: &RegressionReport, b: &RegressionReport) {
    assert_eq!(a.suspected, b.suspected, "{name}: A diverged");
    assert_eq!(a.expected, b.expected, "{name}: B diverged");
    assert_eq!(a.regression, b.regression, "{name}: C diverged");
    assert_eq!(a.candidates, b.candidates, "{name}: D diverged");
    assert_eq!(a.mode, b.mode, "{name}: mode diverged");
    assert_eq!(a.compare_ops, b.compare_ops, "{name}: compare ops diverged");
    assert_eq!(a.peak_bytes, b.peak_bytes, "{name}: peak bytes diverged");
    assert_same_diff(name, &a.suspected_diff, &b.suspected_diff);
    let verdicts = |r: &RegressionReport| -> Vec<bool> {
        r.sequences.iter().map(|s| s.regression_related).collect()
    };
    assert_eq!(verdicts(a), verdicts(b), "{name}: verdicts diverged");
}

#[test]
fn engine_diff_matches_deprecated_views_diff_on_all_case_studies() {
    let engine = Engine::new();
    for scenario in casestudies::all() {
        let traces = scenario
            .trace_all()
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let old = &traces.traces.old_regressing;
        let new = &traces.traces.new_regressing;

        let free = views_diff(old, new, &ViewsDiffOptions::default());
        let session = engine.diff(old, new).expect("views never fails");
        assert_same_diff(&scenario.name, &free, &session);
    }
}

#[test]
fn engine_analysis_matches_deprecated_analyze_on_all_case_studies() {
    let engine = Engine::new();
    for scenario in casestudies::all() {
        let traces = scenario.trace_all().unwrap();
        // The deprecated path owns its four traces; clone them out of the handles
        // (test-only — the engine path below copies nothing).
        let owned = RegressionTraces {
            old_regressing: traces.traces.old_regressing.trace().clone(),
            new_regressing: traces.traces.new_regressing.trace().clone(),
            old_passing: traces.traces.old_passing.trace().clone(),
            new_passing: traces.traces.new_passing.trace().clone(),
        };
        let algorithm = DiffAlgorithm::Views(ViewsDiffOptions::default());
        let free = analyze(&owned, &algorithm, scenario.analysis_mode()).unwrap();
        // The scenario's prepared input carries its analysis mode.
        let session = engine.analyze(&traces.traces).unwrap();
        assert_same_report(&scenario.name, &free, &session);
    }
}

#[test]
fn batch_apis_match_single_calls_across_case_studies() {
    let engine = Engine::new();
    let all_traces: Vec<_> = casestudies::all()
        .iter()
        .map(|s| s.trace_all().unwrap())
        .collect();

    // diff_many over every suspected comparison vs one-by-one diffs.
    let pairs: Vec<(PreparedTrace, PreparedTrace)> = all_traces
        .iter()
        .map(|t| {
            (
                t.traces.old_regressing.clone(),
                t.traces.new_regressing.clone(),
            )
        })
        .collect();
    let batch = engine.diff_many(&pairs).unwrap();
    assert_eq!(batch.len(), pairs.len());
    for ((left, right), many) in pairs.iter().zip(&batch) {
        let single = engine.diff(left, right).unwrap();
        assert_same_diff(&left.trace().meta.name, &single, many);
    }

    // analyze_many over all four scenarios vs one-by-one analyses (each input carries
    // its scenario's analysis mode).
    let inputs: Vec<RegressionInput> = all_traces.iter().map(|t| t.traces.clone()).collect();
    let reports = engine.analyze_many(&inputs).unwrap();
    assert_eq!(reports.len(), inputs.len());
    for (input, many) in inputs.iter().zip(&reports) {
        let single = engine.analyze(input).unwrap();
        assert_same_report(&input.old_regressing.trace().meta.name, &single, many);
    }
}

#[test]
fn prepared_web_is_built_exactly_once_across_three_diffs() {
    let engine = Engine::new();
    let traces = casestudies::daikon::scenario().trace_all().unwrap();
    let anchor = &traces.traces.old_regressing;

    // Three different diffs share the anchor handle; its web and keys must be derived
    // exactly once (the other sides are built once each too).
    for other in [
        &traces.traces.new_regressing,
        &traces.traces.old_passing,
        &traces.traces.new_passing,
    ] {
        engine.diff(anchor, other).expect("views never fails");
    }
    assert_eq!(anchor.web_build_count(), 1, "web rebuilt despite caching");
    assert_eq!(anchor.keyed_build_count(), 1, "keys rebuilt despite caching");

    // Further queries — including a full analysis over the same handles — still reuse
    // the same artifacts.
    engine.analyze(&traces.traces).unwrap();
    assert_eq!(anchor.web_build_count(), 1);
    assert_eq!(anchor.keyed_build_count(), 1);
}
