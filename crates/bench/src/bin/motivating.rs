//! Reproduces the worked example of §3.4 / Fig. 13: runs the MyFaces-1130-style motivating
//! scenario, prints how the views-based differencing localizes the regression, and shows
//! the final regression-cause report with dynamic state.
//!
//! Run with `cargo run -p rprism-bench --bin motivating --release`.

use rprism_diff::{views_diff, ViewsDiffOptions};
use rprism_regress::{render_report, DiffAlgorithm, RenderOptions};
use rprism_views::{ViewKind, ViewWeb};
use rprism_workloads::myfaces;

fn main() {
    let scenario = myfaces::scenario();
    println!("Motivating example: {}\n{}\n", scenario.name, scenario.description);

    let traces = scenario.trace_all().expect("scenario traces");
    println!(
        "trace sizes: old/regressing = {}, new/regressing = {} entries",
        traces.traces.old_regressing.len(),
        traces.traces.new_regressing.len()
    );
    println!(
        "outputs under the regressing test: old = {:?}, new = {:?}\n",
        traces.old_regressing_output, traces.new_regressing_output
    );

    // The views web of the original version (Fig. 2: thread view, method views, target
    // object views).
    let web = ViewWeb::build(&traces.traces.old_regressing);
    let counts = web.count_by_kind();
    println!(
        "views of the original trace: {} total ({} thread, {} method, {} target-object, {} active-object)",
        counts.total(),
        counts.thread,
        counts.method,
        counts.target_object,
        counts.active_object
    );
    for view in web.views_of_kind(ViewKind::TargetObject) {
        if let Some(rep) = &view.representative {
            if rep.class == "NumericEntityUtil" {
                println!("  target object view for {rep}: {} entries", view.len());
            }
        }
    }
    println!();

    // The semantic diff of Fig. 13 (old vs new under the regressing test).
    let diff = views_diff(
        &traces.traces.old_regressing,
        &traces.traces.new_regressing,
        &ViewsDiffOptions::default(),
    );
    println!(
        "{}",
        diff.render(
            &traces.traces.old_regressing,
            &traces.traces.new_regressing,
            6
        )
    );

    // The full regression-cause analysis (§4.2).
    let (traces, report) = scenario
        .analyze(&DiffAlgorithm::Views(ViewsDiffOptions::default()))
        .expect("analysis succeeds");
    println!(
        "{}",
        render_report(
            &report,
            &traces.traces.old_regressing,
            &traces.traces.new_regressing,
            &RenderOptions {
                list_unrelated_sequences: true,
                ..RenderOptions::default()
            }
        )
    );
}
