//! The paper's motivating example end to end: the MyFaces-1130-style character-range
//! regression, analyzed with the full regression-cause algorithm (suspected / expected /
//! regression / candidate difference sets).
//!
//! Run with `cargo run --example myfaces_regression`.

use rprism_regress::{render_report, DiffAlgorithm, RenderOptions};
use rprism_workloads::myfaces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = myfaces::scenario();
    println!("{}: {}\n", scenario.name, scenario.description);

    let (traces, report) = scenario.analyze(&DiffAlgorithm::Views(Default::default()))?;
    println!(
        "outputs under the regressing request: original {:?}, new {:?}\n",
        traces.old_regressing_output, traces.new_regressing_output
    );
    println!(
        "{}",
        render_report(
            &report,
            &traces.traces.old_regressing,
            &traces.traces.new_regressing,
            &RenderOptions::default()
        )
    );
    Ok(())
}
