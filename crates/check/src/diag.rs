//! The diagnostic model: severities, diagnostics, reports and their renderers.
//!
//! Everything here is deliberately deterministic: a [`CheckReport`] carries no paths,
//! timestamps or machine state, and both renderers produce byte-identical output for the
//! same trace regardless of where the check ran. The server's `Check` request relies on
//! this — `rprism remote check <hash>` must print exactly what a local `rprism check` of
//! the same blob prints.

use std::fmt;
use std::str::FromStr;

/// How serious a diagnostic is. Ordered: `Info < Warning < Error`, so severity
/// thresholds (`--deny <sev>`) are plain comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A benign observation (e.g. an aborted run leaving calls unreturned).
    Info,
    /// A suspicious shape that a well-formed recorder should not produce.
    Warning,
    /// A violation of a trace-model invariant.
    Error,
}

impl Severity {
    /// All severities, weakest first.
    pub const ALL: [Severity; 3] = [Severity::Info, Severity::Warning, Severity::Error];

    /// The lowercase name used by renderers and the CLI (`info`, `warning`, `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The error returned when parsing an unknown severity name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSeverityError(pub String);

impl fmt::Display for ParseSeverityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown severity {:?} (expected info, warning or error)",
            self.0
        )
    }
}

impl std::error::Error for ParseSeverityError {}

impl FromStr for Severity {
    type Err = ParseSeverityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" | "warn" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(ParseSeverityError(other.to_owned())),
        }
    }
}

/// One finding of the rule engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The identifier of the rule that fired (see [`crate::rules`]).
    pub rule_id: &'static str,
    /// The effective severity (rule default, possibly overridden by configuration).
    pub severity: Severity,
    /// The index of the entry the diagnostic anchors to.
    pub entry_index: usize,
    /// A human-readable, deterministic description of the violation.
    pub message: String,
    /// Indexes of other entries involved (the matching call, the killing init, the
    /// conflicting access, …), ascending.
    pub related_entries: Vec<usize>,
}

/// The result of checking one trace: identification, scale, and the sorted diagnostics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// The trace name from the stream header ([`TraceMeta::name`]).
    ///
    /// [`TraceMeta::name`]: rprism_trace::TraceMeta
    pub trace_name: String,
    /// Number of entries checked.
    pub entries: usize,
    /// Number of distinct threads that emitted entries.
    pub threads: usize,
    /// Diagnostics dropped because the configured `max_diagnostics` cap was reached.
    pub suppressed: usize,
    /// The findings, sorted by `(entry_index, rule_id)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// `true` when no rule fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.suppressed == 0
    }

    /// The most severe diagnostic present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Number of diagnostics at or above `floor`.
    pub fn count_at_least(&self, floor: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= floor)
            .count()
    }

    /// `(errors, warnings, infos)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// The diagnostics produced by one specific rule.
    pub fn by_rule<'a>(&'a self, rule_id: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule_id == rule_id)
    }

    /// Renders the report for humans: a header line, one line per diagnostic, and a
    /// summary line. Deterministic; contains no file paths.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "check: {} — {} entries, {} thread(s)\n",
            self.trace_name, self.entries, self.threads
        ));
        for d in &self.diagnostics {
            out.push_str(&format!(
                "  [{}] entry {} {}: {}",
                d.severity, d.entry_index, d.rule_id, d.message
            ));
            if !d.related_entries.is_empty() {
                let rel: Vec<String> =
                    d.related_entries.iter().map(|i| i.to_string()).collect();
                out.push_str(&format!(" (related: {})", rel.join(", ")));
            }
            out.push('\n');
        }
        if self.suppressed > 0 {
            out.push_str(&format!(
                "  … {} further diagnostic(s) suppressed\n",
                self.suppressed
            ));
        }
        if self.is_clean() {
            out.push_str("summary: clean\n");
        } else {
            let (e, w, i) = self.counts();
            out.push_str(&format!(
                "summary: {e} error(s), {w} warning(s), {i} info(s)\n"
            ));
        }
        out
    }

    /// Renders the report as one JSON object (hand-rolled; the workspace carries no
    /// serialization dependency). Deterministic field order; contains no file paths.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let (e, w, i) = self.counts();
        out.push_str(&format!(
            "{{\"trace\":{},\"entries\":{},\"threads\":{},\"errors\":{e},\"warnings\":{w},\"infos\":{i},\"suppressed\":{},\"diagnostics\":[",
            json_string(&self.trace_name),
            self.entries,
            self.threads,
            self.suppressed,
        ));
        for (n, d) in self.diagnostics.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let rel: Vec<String> = d.related_entries.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!(
                "{{\"rule\":{},\"severity\":\"{}\",\"entry\":{},\"message\":{},\"related\":[{}]}}",
                json_string(d.rule_id),
                d.severity,
                d.entry_index,
                json_string(&d.message),
                rel.join(",")
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_names_round_trip() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        for sev in Severity::ALL {
            assert_eq!(sev.as_str().parse::<Severity>().unwrap(), sev);
        }
        assert!("fatal".parse::<Severity>().is_err());
    }

    fn sample_report() -> CheckReport {
        CheckReport {
            trace_name: "demo \"quoted\"".into(),
            entries: 3,
            threads: 1,
            suppressed: 0,
            diagnostics: vec![Diagnostic {
                rule_id: "return-without-call",
                severity: Severity::Error,
                entry_index: 2,
                message: "return from 'work' with no open call".into(),
                related_entries: vec![0, 1],
            }],
        }
    }

    #[test]
    fn human_rendering_is_stable() {
        let text = sample_report().render_human();
        assert!(text.starts_with("check: demo \"quoted\" — 3 entries, 1 thread(s)\n"));
        assert!(text.contains("[error] entry 2 return-without-call:"));
        assert!(text.contains("(related: 0, 1)"));
        assert!(text.ends_with("summary: 1 error(s), 0 warning(s), 0 info(s)\n"));
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let json = sample_report().render_json();
        assert!(json.contains("\"trace\":\"demo \\\"quoted\\\"\""));
        assert!(json.contains("\"errors\":1,\"warnings\":0,\"infos\":0"));
        assert!(json.contains("\"related\":[0,1]"));
    }

    #[test]
    fn clean_report_renders_clean_summary() {
        let report = CheckReport {
            trace_name: "t".into(),
            entries: 0,
            threads: 0,
            suppressed: 0,
            diagnostics: vec![],
        };
        assert!(report.is_clean());
        assert!(report.render_human().ends_with("summary: clean\n"));
    }
}
