//! The common result type shared by the LCS-based and views-based trace differencers.

use std::time::Duration;

use rprism_trace::Trace;

use crate::cost::CostStats;
use crate::matching::{DiffSequence, Matching};

/// The outcome of differencing a pair of traces (left = original/old, right = new).
#[derive(Clone, Debug)]
pub struct TraceDiffResult {
    /// The similarity set Π: pairs of entries considered semantically equivalent.
    pub matching: Matching,
    /// Contiguous difference sequences derived from the matching.
    pub sequences: Vec<DiffSequence>,
    /// Resource usage of the differencing run.
    pub cost: CostStats,
    /// Wall-clock time of the differencing run.
    pub elapsed: Duration,
    /// A label identifying which algorithm produced the result (`"lcs"`, `"views"`, …).
    pub algorithm: &'static str,
}

impl TraceDiffResult {
    /// Number of distinct differing entries across both traces (the paper's
    /// "Num Diffs." column).
    pub fn num_differences(&self) -> usize {
        self.matching.num_differences()
    }

    /// Number of difference sequences (the paper's "Diff. Seqs." column).
    pub fn num_sequences(&self) -> usize {
        self.sequences.len()
    }

    /// Number of entries judged similar across the two traces.
    pub fn num_similar(&self) -> usize {
        self.matching.len()
    }

    /// The paper's *accuracy* metric for this result relative to a baseline result over
    /// the same trace pair (§5.1):
    ///
    /// ```text
    /// accuracy = ((totalEntries − thisNumDiffs) / totalEntries)
    ///          / ((totalEntries − baselineNumDiffs) / totalEntries)
    /// ```
    ///
    /// Values above 1.0 mean this algorithm found more semantic correlations (fewer
    /// differences) than the baseline.
    pub fn accuracy_vs(&self, baseline: &TraceDiffResult) -> f64 {
        let total =
            (self.matching.left_len() + self.matching.right_len()) as f64;
        if total == 0.0 {
            return 1.0;
        }
        let ours = (total - self.num_differences() as f64) / total;
        let theirs = (total - baseline.num_differences() as f64) / total;
        if theirs == 0.0 {
            return if ours == 0.0 { 1.0 } else { f64::INFINITY };
        }
        ours / theirs
    }

    /// Renders the difference sequences against the two traces as a human-readable
    /// semantic diff, in the spirit of the listing in the paper's Fig. 13.
    pub fn render(&self, left: &Trace, right: &Trace, max_sequences: usize) -> String {
        self.render_with(
            max_sequences,
            |idx| left.entries.get(idx).map(|e| e.render()),
            |idx| right.entries.get(idx).map(|e| e.render()),
        )
    }

    /// [`TraceDiffResult::render`] with pluggable entry renderers, for callers whose
    /// traces are not fully materialized (streamed handles render a compact context
    /// line per entry instead). The closures return `None` for out-of-range indices,
    /// which are skipped.
    pub fn render_with(
        &self,
        max_sequences: usize,
        mut left_entry: impl FnMut(usize) -> Option<String>,
        mut right_entry: impl FnMut(usize) -> Option<String>,
    ) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "semantic diff ({}) — {} differences in {} sequences\n",
            self.algorithm,
            self.num_differences(),
            self.num_sequences()
        ));
        for (i, seq) in self.sequences.iter().take(max_sequences).enumerate() {
            out.push_str(&format!(
                "-- sequence {} ({:?}, {} entries)\n",
                i + 1,
                seq.kind(),
                seq.len()
            ));
            for idx in &seq.left {
                if let Some(rendered) = left_entry(*idx) {
                    out.push_str(&format!("  - {rendered}\n"));
                }
            }
            for idx in &seq.right {
                if let Some(rendered) = right_entry(*idx) {
                    out.push_str(&format!("  + {rendered}\n"));
                }
            }
        }
        if self.sequences.len() > max_sequences {
            out.push_str(&format!(
                "... {} more sequences\n",
                self.sequences.len() - max_sequences
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(left_len: usize, right_len: usize, pairs: Vec<(usize, usize)>) -> TraceDiffResult {
        let matching = Matching::from_pairs(left_len, right_len, pairs);
        let sequences = matching.difference_sequences();
        TraceDiffResult {
            matching,
            sequences,
            cost: CostStats::default(),
            elapsed: Duration::ZERO,
            algorithm: "test",
        }
    }

    #[test]
    fn accuracy_above_one_when_fewer_differences() {
        let better = result(10, 10, (0..9).map(|i| (i, i)).collect());
        let worse = result(10, 10, (0..6).map(|i| (i, i)).collect());
        assert!(better.accuracy_vs(&worse) > 1.0);
        assert!((better.accuracy_vs(&better) - 1.0).abs() < 1e-9);
        assert!(worse.accuracy_vs(&better) < 1.0);
    }

    #[test]
    fn accuracy_of_empty_traces_is_one() {
        let a = result(0, 0, vec![]);
        let b = result(0, 0, vec![]);
        assert_eq!(a.accuracy_vs(&b), 1.0);
    }

    #[test]
    fn render_reports_counts_and_truncates() {
        let r = result(4, 4, vec![(0, 0), (2, 2)]);
        let left = Trace::named("L");
        let right = Trace::named("R");
        let text = r.render(&left, &right, 1);
        assert!(text.contains("differences"));
        assert!(text.contains("more sequences"));
    }
}
