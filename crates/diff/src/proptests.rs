//! Property-based tests relating the three LCS implementations on randomly generated
//! inputs, plus the keyed-equality equivalence properties of the interned event-key
//! layer. The generators are the deterministic SplitMix64-based ones from
//! [`rprism_trace::testgen`] (the workspace is dependency-free, so no `proptest`).

#![cfg(test)]

use rprism_trace::testgen::{arbitrary_entry, Rng};
use rprism_trace::{event_eq, intern, resolve, EventKey, KeyRef, KeyedTrace, Trace};

use crate::anchored::{anchored_diff_prepared, AnchoredDiffOptions};
use crate::cost::{CostMeter, MemoryBudget};
use crate::lcs::{
    lcs_bitparallel, lcs_bitparallel_table, lcs_dp, lcs_dp_table, lcs_hirschberg, lcs_length,
    lcs_optimized,
};

const CASES: usize = 64;

fn sequences(rng: &mut Rng, max_len: usize) -> (Vec<u8>, Vec<u8>) {
    // Small alphabets create many repeated symbols — the hard case for correlation.
    let left = (0..rng.usize(0, max_len)).map(|_| rng.range(0, 6) as u8).collect();
    let right = (0..rng.usize(0, max_len)).map(|_| rng.range(0, 6) as u8).collect();
    (left, right)
}

/// All three LCS implementations agree on the subsequence length.
#[test]
fn lcs_variants_agree_on_length() {
    let mut rng = Rng::new(101);
    for _ in 0..CASES {
        let (left, right) = sequences(&mut rng, 60);
        let mut m = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m, MemoryBudget::unlimited()).unwrap();
        let opt = lcs_optimized(&left, &right, &mut m, MemoryBudget::unlimited()).unwrap();
        let hir = lcs_hirschberg(&left, &right, &mut m);
        let len = lcs_length(&left, &right, &mut m);
        assert_eq!(dp.len(), len, "dp vs length on {left:?} / {right:?}");
        assert_eq!(opt.len(), len, "optimized vs length on {left:?} / {right:?}");
        assert_eq!(hir.len(), len, "hirschberg vs length on {left:?} / {right:?}");
    }
}

/// Every matching produced is a valid common subsequence: strictly increasing on both
/// sides and element-wise equal.
#[test]
fn lcs_matchings_are_valid_common_subsequences() {
    let mut rng = Rng::new(202);
    for _ in 0..CASES {
        let (left, right) = sequences(&mut rng, 60);
        let mut m = CostMeter::new();
        for pairs in [
            lcs_dp(&left, &right, &mut m, MemoryBudget::unlimited()).unwrap(),
            lcs_optimized(&left, &right, &mut m, MemoryBudget::unlimited()).unwrap(),
            lcs_hirschberg(&left, &right, &mut m),
        ] {
            for w in pairs.windows(2) {
                assert!(w[0].0 < w[1].0);
                assert!(w[0].1 < w[1].1);
            }
            for (i, j) in pairs {
                assert_eq!(left[i], right[j]);
            }
        }
    }
}

/// LCS length bounds: no longer than either input, and equal to the input length when
/// diffing a sequence against itself.
#[test]
fn lcs_length_bounds() {
    let mut rng = Rng::new(303);
    for _ in 0..CASES {
        let (left, right) = sequences(&mut rng, 60);
        let mut m = CostMeter::new();
        let len = lcs_length(&left, &right, &mut m);
        assert!(len <= left.len() && len <= right.len());
        assert_eq!(lcs_length(&left, &left, &mut m), left.len());
    }
}

/// The prefix/suffix strip inside [`lcs_dp`] never changes the result length relative to
/// the raw (unstripped) quadratic table, and never performs more comparisons than the
/// unstripped run plus the linear strip scans.
#[test]
fn optimization_is_sound_and_never_slower() {
    let mut rng = Rng::new(404);
    for _ in 0..CASES {
        let shared: Vec<u8> = (0..rng.usize(0, 20)).map(|_| rng.range(0, 6) as u8).collect();
        let mid_l: Vec<u8> = (0..rng.usize(0, 20)).map(|_| rng.range(0, 6) as u8).collect();
        let mid_r: Vec<u8> = (0..rng.usize(0, 20)).map(|_| rng.range(0, 6) as u8).collect();
        // Construct inputs with a guaranteed common prefix and suffix.
        let left: Vec<u8> = shared
            .iter()
            .copied()
            .chain(mid_l)
            .chain(shared.iter().copied())
            .collect();
        let right: Vec<u8> = shared
            .iter()
            .copied()
            .chain(mid_r)
            .chain(shared.iter().copied())
            .collect();
        let mut m_raw = CostMeter::new();
        let mut m_stripped = CostMeter::new();
        // The raw table core vs the stripped public entry point.
        let raw = lcs_dp_table(&left, &right, &mut m_raw, MemoryBudget::unlimited()).unwrap();
        let stripped = lcs_dp(&left, &right, &mut m_stripped, MemoryBudget::unlimited()).unwrap();
        assert_eq!(raw.len(), stripped.len());
        assert!(
            m_stripped.stats().compare_ops
                <= m_raw.stats().compare_ops + 2 * (left.len() as u64 + right.len() as u64)
        );
        // Stripped pairs are still a valid common subsequence.
        for (i, j) in &stripped {
            assert_eq!(left[*i], right[*j]);
        }
        // And `lcs_optimized` remains an exact alias of the stripped entry point.
        let mut m_alias = CostMeter::new();
        let alias = lcs_optimized(&left, &right, &mut m_alias, MemoryBudget::unlimited()).unwrap();
        assert_eq!(alias, stripped);
    }
}

/// The bit-parallel kernel is byte-identical to the DP on random sequences — not just
/// the LCS length but the exact matched pair list and the compare accounting, over both
/// small alphabets (many repeats: the carry-heavy case) and wide ones.
#[test]
fn bitparallel_equals_dp_on_random_sequences() {
    let mut rng = Rng::new(808);
    for _ in 0..CASES {
        let (left, right) = sequences(&mut rng, 80);
        let mut m_dp = CostMeter::new();
        let mut m_bp = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m_dp, MemoryBudget::unlimited()).unwrap();
        let bp = lcs_bitparallel(&left, &right, &mut m_bp, MemoryBudget::unlimited()).unwrap();
        assert_eq!(dp, bp, "pairs diverged on {left:?} / {right:?}");
        assert_eq!(dp.len(), lcs_length(&left, &right, &mut CostMeter::new()));
        assert_eq!(
            m_dp.stats().compare_ops,
            m_bp.stats().compare_ops,
            "compare accounting diverged on {left:?} / {right:?}"
        );
    }
}

/// Same equivalence over >64-distinct-symbol inputs, which force the packed core to
/// refuse and the entry point to fall back to the DP — the fallback must be seamless.
#[test]
fn bitparallel_equals_dp_beyond_the_packing_limit() {
    let mut rng = Rng::new(909);
    for _ in 0..CASES {
        // The right side starts with 100 guaranteed-distinct symbols (then random
        // draws), so its alphabet always exceeds the 64-class packing limit and every
        // case exercises the refusal.
        let left: Vec<u16> = (0..rng.usize(80, 160)).map(|_| rng.range(0, 200) as u16).collect();
        let mut right: Vec<u16> = (0..100u16).collect();
        right.extend((0..rng.usize(0, 60)).map(|_| rng.range(0, 200) as u16));
        let refused =
            lcs_bitparallel_table(&left, &right, &mut CostMeter::new(), MemoryBudget::unlimited())
                .unwrap()
                .is_none();
        assert!(refused, "100 distinct symbols must exceed 64 classes");
        let mut m_dp = CostMeter::new();
        let mut m_bp = CostMeter::new();
        let dp = lcs_dp(&left, &right, &mut m_dp, MemoryBudget::unlimited()).unwrap();
        let bp = lcs_bitparallel(&left, &right, &mut m_bp, MemoryBudget::unlimited()).unwrap();
        assert_eq!(dp, bp);
        assert_eq!(m_dp.stats().compare_ops, m_bp.stats().compare_ops);
    }
}

/// Bit-parallel ≡ DP on random *interned* key sequences (the production element type:
/// `KeyRef` equality is hash-check-then-operands, exercising the equality-class mask
/// construction rather than plain scalar equality).
#[test]
fn bitparallel_equals_dp_on_interned_keys() {
    let mut rng = Rng::new(1010);
    for _ in 0..8 {
        let mut left = Trace::named("prop-bp-left");
        let mut right = Trace::named("prop-bp-right");
        for _ in 0..rng.usize(0, 90) {
            left.push(arbitrary_entry(&mut rng));
        }
        for _ in 0..rng.usize(0, 90) {
            right.push(arbitrary_entry(&mut rng));
        }
        let lk = KeyedTrace::build(&left);
        let rk = KeyedTrace::build(&right);
        let lkeys: Vec<KeyRef<'_>> = (0..lk.len()).map(|i| lk.key(i)).collect();
        let rkeys: Vec<KeyRef<'_>> = (0..rk.len()).map(|i| rk.key(i)).collect();
        let mut m_dp = CostMeter::new();
        let mut m_bp = CostMeter::new();
        let dp = lcs_dp(&lkeys, &rkeys, &mut m_dp, MemoryBudget::unlimited()).unwrap();
        let bp = lcs_bitparallel(&lkeys, &rkeys, &mut m_bp, MemoryBudget::unlimited()).unwrap();
        assert_eq!(dp, bp);
        assert_eq!(m_dp.stats().compare_ops, m_bp.stats().compare_ops);
    }
}

/// Anchored matchings are always *valid* (monotone, `=e`-equal pairs) and never larger
/// than the exact LCS; on identical inputs they are complete.
#[test]
fn anchored_matchings_are_valid_and_bounded_by_exact_lcs() {
    let mut rng = Rng::new(1111);
    for _ in 0..8 {
        let mut left = Trace::named("prop-anch-left");
        let mut right = Trace::named("prop-anch-right");
        for _ in 0..rng.usize(0, 80) {
            left.push(arbitrary_entry(&mut rng));
        }
        for _ in 0..rng.usize(0, 80) {
            right.push(arbitrary_entry(&mut rng));
        }
        let lk = KeyedTrace::build(&left);
        let rk = KeyedTrace::build(&right);
        // max_segment 1 forces real anchoring even at these sizes.
        let options = AnchoredDiffOptions::builder().max_segment(1).build();
        let anchored = anchored_diff_prepared(&lk, &rk, &options);
        let pairs = anchored.matching.normalized_pairs();
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        for (i, j) in &pairs {
            assert!(lk.key_eq(*i, &rk, *j));
        }
        let lkeys: Vec<KeyRef<'_>> = (0..lk.len()).map(|i| lk.key(i)).collect();
        let rkeys: Vec<KeyRef<'_>> = (0..rk.len()).map(|i| rk.key(i)).collect();
        let exact = lcs_dp(&lkeys, &rkeys, &mut CostMeter::new(), MemoryBudget::unlimited())
            .unwrap();
        assert!(pairs.len() <= exact.len(), "anchored matched more than the LCS");
        let identical = anchored_diff_prepared(&lk, &lk, &options);
        assert_eq!(identical.num_similar(), lk.len());
    }
}

/// The tentpole equivalence: `CompactEventKey` equality ≡ `EventKey` equality ≡
/// `event_eq`, over arbitrary generated events (the keyed hot path may never disagree
/// with the structural fallback or the owned canonical key).
#[test]
fn compact_key_equality_equals_eventkey_equality_equals_event_eq() {
    let mut rng = Rng::new(505);
    let mut left = Trace::named("prop-left");
    let mut right = Trace::named("prop-right");
    for _ in 0..120 {
        left.push(arbitrary_entry(&mut rng));
        right.push(arbitrary_entry(&mut rng));
    }
    let lk = KeyedTrace::build(&left);
    let rk = KeyedTrace::build(&right);

    for i in 0..left.len() {
        for j in 0..right.len() {
            let by_compact = lk.key_eq(i, &rk, j);
            let by_keyref = lk.key(i) == rk.key(j);
            let by_eventkey = EventKey::of(&left[i]) == EventKey::of(&right[j]);
            let by_structural = event_eq(&left[i], &right[j]);
            assert_eq!(by_compact, by_eventkey, "compact vs EventKey at ({i},{j})");
            assert_eq!(by_keyref, by_eventkey, "KeyRef vs EventKey at ({i},{j})");
            assert_eq!(by_structural, by_eventkey, "event_eq vs EventKey at ({i},{j})");
        }
    }
}

/// Equal keys hash equally (hash-consistency of the precomputed 64-bit content hash).
#[test]
fn equal_compact_keys_share_their_precomputed_hash() {
    let mut rng = Rng::new(606);
    let mut trace = Trace::named("prop-hash");
    for _ in 0..200 {
        trace.push(arbitrary_entry(&mut rng));
    }
    let keyed = KeyedTrace::build(&trace);
    for i in 0..trace.len() {
        for j in 0..trace.len() {
            if keyed.key_eq(i, &keyed, j) {
                assert_eq!(keyed.compact(i).hash, keyed.compact(j).hash);
            }
        }
    }
}

/// Interning round-trips arbitrary generated names, and equal strings always produce
/// equal symbols.
#[test]
fn interning_round_trips_names() {
    let mut rng = Rng::new(707);
    for _ in 0..CASES {
        let name = format!("name_{}_{}", rng.range(0, 12), rng.range(0, 12));
        let sym = intern(&name);
        assert_eq!(resolve(sym), name);
        assert_eq!(intern(&name), sym);
    }
}
