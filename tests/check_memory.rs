//! Pins the memory claim of the streaming check path: `Engine::check_reader` folds a
//! trace through the rule engine in O(threads + live objects) — its peak heap use
//! must not scale with the entry count, while materializing the same trace does.
//!
//! The whole file is one test on purpose: the counting allocator is process-global,
//! and concurrent tests would pollute each other's peak readings.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rprism::Engine;
use rprism_format::{trace_from_bytes, trace_to_bytes, Encoding};
use rprism_trace::testgen::{GenProfile, Rng};

/// The system allocator with live/peak byte counters.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                let grown = new_size - layout.size();
                let live = LIVE.fetch_add(grown, Ordering::Relaxed) + grown;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its result plus the peak heap growth (bytes above the level
/// live when it started) it caused.
fn peak_growth<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let value = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (value, peak.saturating_sub(baseline))
}

#[test]
fn streaming_check_memory_is_flat_in_the_entry_count() {
    // The interner and other process-global state allocate lazily on first touch;
    // run one small check up front so the measured runs see a warm process.
    let warmup = trace_to_bytes(
        &GenProfile::WellFormed.generate(&mut Rng::new(1), 64),
        Encoding::Binary,
    )
    .unwrap();
    let engine = Engine::new();
    engine.check_reader(&warmup[..]).unwrap();

    // The largest `gen` trace this suite exercises, and a 10× smaller one to show
    // the peak does not follow the entry count.
    let small_bytes = trace_to_bytes(
        &GenProfile::WellFormed.generate(&mut Rng::new(2), 20_000),
        Encoding::Binary,
    )
    .unwrap();
    let large_bytes = trace_to_bytes(
        &GenProfile::WellFormed.generate(&mut Rng::new(2), 200_000),
        Encoding::Binary,
    )
    .unwrap();

    let (small_report, small_peak) = peak_growth(|| engine.check_reader(&small_bytes[..]).unwrap());
    let (large_report, large_peak) = peak_growth(|| engine.check_reader(&large_bytes[..]).unwrap());
    assert!(small_report.is_clean() && large_report.is_clean());
    assert_eq!(large_report.entries, 200_000);
    assert_eq!(large_report.threads, 4);

    // O(threads + live objects): 10× the entries must not mean 10× the peak. Allow
    // 2× slack for incidental buffers; the real signal is the order of magnitude.
    assert!(
        large_peak <= small_peak.max(64 * 1024) * 2,
        "streaming peak grew with the trace: {small_peak} B at 20k entries, \
         {large_peak} B at 200k entries"
    );

    // And materializing the same trace costs what streaming avoids: the full entry
    // vector. The gap is the point of the streaming fold.
    let (trace, materialized_peak) = peak_growth(|| trace_from_bytes(&large_bytes).unwrap());
    assert_eq!(trace.entries.len(), 200_000);
    assert!(
        materialized_peak >= large_peak.max(1) * 8,
        "materializing ({materialized_peak} B) should dwarf the streaming check \
         ({large_peak} B)"
    );
}
