//! A `cargo bench`-free perf smoke check with two measurements on the `diff_scaling`
//! largest size:
//!
//! 1. **seed vs keyed** — one large scenario differenced by the frozen seed-style
//!    baseline (owned `EventKey`s, sequential) and by the keyed pipeline (interned
//!    `CompactEventKey`s, parallel view correlation), printing wall time and `CostMeter`
//!    compare/byte counts for both plus the wall-time speedup (the format recorded in
//!    `BENCH_1.json`);
//! 2. **prepared reuse** — the same trace pair diffed 3 times cold (each one-shot
//!    `views_diff` call re-deriving keys and webs) vs 3 times through an
//!    `rprism::Engine` whose `PreparedTrace` handles build both artifacts once and
//!    reuse them, printing the `prepared_reuse_speedup` (the headline number recorded
//!    in `BENCH_2.json`);
//! 3. **trace i/o** — the same large trace serialized and re-parsed through
//!    `rprism-format` in both encodings (in memory), printing bytes per entry and
//!    write/read throughput in entries per second — the ingestion budget of the
//!    on-disk pipeline;
//! 4. **streaming ingest** — the pair stored as `.rtr` files and brought back two
//!    ways: `load_trace` + artifact warm-up (the load-then-prepare path) vs
//!    `load_prepared` (the one-pass bounded-memory pipeline), printing wall time and
//!    peak heap growth for both plus the peak-memory reduction, and asserting the two
//!    kinds of handles diff identically (the numbers recorded in `BENCH_4.json`).
//!    Peaks come from a live/peak tracking global allocator.
//!
//! The `--json` flag emits all numbers as one JSON object.
//!
//! Run with `cargo run -p rprism-bench --bin perf_smoke --release [-- --json] [iterations]`.

use std::time::Duration;

use rprism::Engine;
use rprism_bench::measure::{sample_env, TrackingAllocator};
use rprism_bench::seed_baseline::seed_views_diff;
use rprism_diff::{TraceDiffResult, ViewsDiffOptions};
use rprism_lang::parser::parse_program;
use rprism_trace::{Trace, TraceMeta};
use rprism_vm::{run_traced, VmConfig};

#[global_allocator]
static GLOBAL: TrackingAllocator = TrackingAllocator;

/// The `diff_scaling` bench program shape at its largest configured size, parameterized
/// by the range lower bound and the iteration count of each side. `(32, n)` vs `(1, n)`
/// is the heavily-divergent regression of the seed-vs-keyed comparison; the
/// prepared-reuse measurement uses `(32, n)` vs `(32, n + 4)` — ordinary evolution that
/// appends a few calls, the §4.1 expected-differences shape where almost all of a cold
/// call's cost *is* the preparation.
fn trace_pair(sides: [(i64, usize); 2]) -> (Trace, Trace) {
    let src = |(min, iterations): (i64, usize)| {
        format!(
            r#"
            class Ctr extends Object {{ Int i; }}
            class Range extends Object {{ Int min; Int max; }}
            class App extends Object {{
                Range r;
                Int hits;
                Unit setup() {{ this.r = new Range({min}, 127); }}
                Unit check(Int c) {{
                    if ((c >= this.r.min) && (c <= this.r.max)) {{ this.hits = this.hits + 1; }}
                }}
            }}
            main {{
                let a = new App(null, 0);
                a.setup();
                let c = new Ctr(0);
                while (c.i < {iterations}) {{
                    a.check(c.i % 200);
                    c.i = c.i + 1;
                }}
            }}
            "#
        )
    };
    let run = |source: &str, label: &str| {
        run_traced(
            &parse_program(source).unwrap(),
            TraceMeta::new(label, "", ""),
            VmConfig::default(),
        )
        .unwrap()
        .trace
    };
    (run(&src(sides[0]), "old"), run(&src(sides[1]), "new"))
}

struct Measured {
    wall: Duration,
    result: TraceDiffResult,
}

fn measure(samples: usize, mut f: impl FnMut() -> TraceDiffResult) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..samples {
        let result = f();
        let wall = result.elapsed;
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(Measured { wall, result });
        }
    }
    best.expect("at least one sample")
}

/// One-shot differencing including artifact preparation, exactly what a pre-session
/// caller pays on every call. This *is* the deprecated path — measured on purpose as the
/// cold baseline of the reuse comparison.
#[allow(deprecated)]
fn cold_views_diff(left: &Trace, right: &Trace, options: &ViewsDiffOptions) -> TraceDiffResult {
    rprism_diff::views_diff(left, right, options)
}

struct ReuseMeasured {
    cold_wall: Duration,
    prepared_wall: Duration,
    repeats: usize,
}

/// Times `repeats` diffs of the same pair, cold (per-call preparation) vs through
/// engine-prepared handles (preparation paid once, on the first diff). Fresh handles are
/// created per sample so every sample's first diff pays the one-time preparation; best
/// sample wins on both sides, and the results are asserted identical.
fn measure_reuse(
    samples: usize,
    repeats: usize,
    old: &Trace,
    new: &Trace,
    options: &ViewsDiffOptions,
) -> ReuseMeasured {
    let engine = Engine::builder().views_options(options.clone()).build();
    let mut cold_wall = Duration::MAX;
    let mut prepared_wall = Duration::MAX;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        let mut cold_last = None;
        for _ in 0..repeats {
            cold_last = Some(cold_views_diff(old, new, options));
        }
        cold_wall = cold_wall.min(start.elapsed());

        let (pold, pnew) = (
            engine.prepare(old.clone()),
            engine.prepare(new.clone()),
        );
        let start = std::time::Instant::now();
        let mut prepared_last = None;
        for _ in 0..repeats {
            prepared_last = Some(engine.diff(&pold, &pnew).expect("views never fails"));
        }
        prepared_wall = prepared_wall.min(start.elapsed());

        assert_eq!(pold.web_build_count(), 1, "web must be built exactly once");
        assert_eq!(
            cold_last.unwrap().matching.normalized_pairs(),
            prepared_last.unwrap().matching.normalized_pairs(),
            "prepared-handle diff diverged from the cold path"
        );
    }
    ReuseMeasured {
        cold_wall,
        prepared_wall,
        repeats,
    }
}

struct IoMeasured {
    encoding: rprism_format::Encoding,
    bytes: usize,
    write_wall: Duration,
    read_wall: Duration,
}

/// Times in-memory serialization and deserialization of `trace` in both encodings,
/// asserting exact round trips (best of `samples` on each side).
fn measure_trace_io(samples: usize, trace: &Trace) -> Vec<IoMeasured> {
    use rprism_format::{trace_from_bytes, trace_to_bytes, Encoding};
    [Encoding::Binary, Encoding::Jsonl]
        .into_iter()
        .map(|encoding| {
            let mut bytes = Vec::new();
            let mut write_wall = Duration::MAX;
            for _ in 0..samples {
                let start = std::time::Instant::now();
                bytes = trace_to_bytes(trace, encoding).expect("in-memory write");
                write_wall = write_wall.min(start.elapsed());
            }
            let mut read_wall = Duration::MAX;
            for _ in 0..samples {
                let start = std::time::Instant::now();
                let decoded = trace_from_bytes(&bytes).expect("round trip");
                read_wall = read_wall.min(start.elapsed());
                assert_eq!(&decoded, trace, "{encoding} round trip diverged");
            }
            IoMeasured {
                encoding,
                bytes: bytes.len(),
                write_wall,
                read_wall,
            }
        })
        .collect()
}

struct IngestMeasured {
    entries: usize,
    full_wall: Duration,
    full_peak: u64,
    streaming_wall: Duration,
    streaming_peak: u64,
}

impl IngestMeasured {
    fn peak_reduction(&self) -> f64 {
        self.full_peak as f64 / self.streaming_peak.max(1) as f64
    }
}

/// Stores the pair as binary `.rtr` files and measures load-then-prepare (whole trace +
/// `keyed()`/`web()` warm-up) against the streaming prepare pipeline: wall time and
/// peak heap growth per path (best wall / max peak over `samples`), with the resulting
/// handles asserted to diff identically.
fn measure_streaming_ingest(samples: usize, old: &Trace, new: &Trace) -> IngestMeasured {
    let dir = std::env::temp_dir().join(format!("rprism-perf-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let engine = Engine::new();
    let pa = dir.join("old.rtr");
    let pb = dir.join("new.rtr");
    engine.store_trace(&engine.prepare(old.clone()), &pa).unwrap();
    engine.store_trace(&engine.prepare(new.clone()), &pb).unwrap();

    let mut measured = IngestMeasured {
        entries: old.len() + new.len(),
        full_wall: Duration::MAX,
        full_peak: 0,
        streaming_wall: Duration::MAX,
        streaming_peak: 0,
    };
    for _ in 0..samples {
        let baseline = TrackingAllocator::reset_peak();
        let start = std::time::Instant::now();
        let fa = engine.load_trace(&pa).unwrap();
        let fb = engine.load_trace(&pb).unwrap();
        fa.keyed();
        fa.web();
        fb.keyed();
        fb.web();
        measured.full_wall = measured.full_wall.min(start.elapsed());
        measured.full_peak = measured
            .full_peak
            .max(TrackingAllocator::peak_since(baseline));

        let baseline = TrackingAllocator::reset_peak();
        let start = std::time::Instant::now();
        let sa = engine.load_prepared(&pa).unwrap();
        let sb = engine.load_prepared(&pb).unwrap();
        measured.streaming_wall = measured.streaming_wall.min(start.elapsed());
        measured.streaming_peak = measured
            .streaming_peak
            .max(TrackingAllocator::peak_since(baseline));

        // Equivalence: streamed handles must produce the exact diff of full handles.
        let full = engine.diff(&fa, &fb).expect("views never fails");
        let streamed = engine.diff(&sa, &sb).expect("views never fails");
        assert_eq!(
            full.matching.normalized_pairs(),
            streamed.matching.normalized_pairs(),
            "streaming-prepared diff diverged from load-then-prepare"
        );
        assert_eq!(full.cost.compare_ops, streamed.cost.compare_ops);
    }
    std::fs::remove_dir_all(&dir).ok();
    measured
}

fn main() {
    let mut json = false;
    let mut iterations = 400usize;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if let Ok(n) = arg.parse() {
            iterations = n;
        }
    }
    let samples = sample_env(5);

    let (old, new) = trace_pair([(32, iterations), (1, iterations)]);
    let options = ViewsDiffOptions::default();

    let seed = measure(samples, || seed_views_diff(&old, &new, &options));
    let keyed = measure(samples, || cold_views_diff(&old, &new, &options));

    assert_eq!(
        seed.result.matching.normalized_pairs(),
        keyed.result.matching.normalized_pairs(),
        "refactored pipeline diverged from the seed algorithm"
    );

    let (reuse_old, reuse_new) = trace_pair([(32, iterations), (32, iterations + 4)]);
    let reuse = measure_reuse(samples, 3, &reuse_old, &reuse_new, &options);
    let io = measure_trace_io(samples, &old);
    let ingest = measure_streaming_ingest(samples, &old, &new);

    let speedup = seed.wall.as_secs_f64() / keyed.wall.as_secs_f64().max(1e-12);
    let reuse_speedup =
        reuse.cold_wall.as_secs_f64() / reuse.prepared_wall.as_secs_f64().max(1e-12);
    if json {
        println!("{{");
        println!("  \"scenario\": \"diff_scaling largest size (iterations={iterations})\",");
        println!("  \"trace_entries\": [{}, {}],", old.len(), new.len());
        println!("  \"samples\": {samples},");
        println!(
            "  \"seed_baseline\": {{ \"wall_seconds\": {:.6}, \"compare_ops\": {}, \"peak_bytes\": {} }},",
            seed.wall.as_secs_f64(),
            seed.result.cost.compare_ops,
            seed.result.cost.peak_bytes
        );
        println!(
            "  \"keyed_parallel\": {{ \"wall_seconds\": {:.6}, \"compare_ops\": {}, \"peak_bytes\": {} }},",
            keyed.wall.as_secs_f64(),
            keyed.result.cost.compare_ops,
            keyed.result.cost.peak_bytes
        );
        println!("  \"wall_time_speedup\": {speedup:.2},");
        println!(
            "  \"prepared_reuse\": {{ \"trace_entries\": [{}, {}], \"repeats\": {}, \"cold_wall_seconds\": {:.6}, \"prepared_wall_seconds\": {:.6}, \"prepared_reuse_speedup\": {:.2} }},",
            reuse_old.len(),
            reuse_new.len(),
            reuse.repeats,
            reuse.cold_wall.as_secs_f64(),
            reuse.prepared_wall.as_secs_f64(),
            reuse_speedup
        );
        let io_json: Vec<String> = io
            .iter()
            .map(|m| {
                format!(
                    "{{ \"encoding\": \"{}\", \"bytes\": {}, \"bytes_per_entry\": {:.1}, \"write_wall_seconds\": {:.6}, \"read_wall_seconds\": {:.6} }}",
                    m.encoding,
                    m.bytes,
                    m.bytes as f64 / old.len().max(1) as f64,
                    m.write_wall.as_secs_f64(),
                    m.read_wall.as_secs_f64()
                )
            })
            .collect();
        println!("  \"trace_io\": [{}],", io_json.join(", "));
        println!(
            "  \"streaming_ingest\": {{ \"trace_entries\": {}, \"full\": {{ \"wall_seconds\": {:.6}, \"peak_bytes\": {} }}, \"streaming\": {{ \"wall_seconds\": {:.6}, \"peak_bytes\": {} }}, \"peak_memory_reduction\": {:.2} }}",
            ingest.entries,
            ingest.full_wall.as_secs_f64(),
            ingest.full_peak,
            ingest.streaming_wall.as_secs_f64(),
            ingest.streaming_peak,
            ingest.peak_reduction()
        );
        println!("}}");
    } else {
        println!(
            "perf_smoke — diff_scaling largest size ({iterations} iterations, {} / {} trace entries, best of {samples})\n",
            old.len(),
            new.len()
        );
        println!(
            "  seed baseline (owned EventKeys):   wall {:>10.3?}  compare_ops {:>12}  peak_bytes {:>10}",
            seed.wall, seed.result.cost.compare_ops, seed.result.cost.peak_bytes
        );
        println!(
            "  keyed pipeline (interned, parallel): wall {:>10.3?}  compare_ops {:>12}  peak_bytes {:>10}",
            keyed.wall, keyed.result.cost.compare_ops, keyed.result.cost.peak_bytes
        );
        println!("\n  wall-time speedup: {speedup:.2}x");
        println!(
            "  results identical: {} similar pairs, {} differences",
            keyed.result.num_similar(),
            keyed.result.num_differences()
        );
        println!(
            "\n  prepared reuse ({}x same pair): cold {:>10.3?}  engine-prepared {:>10.3?}  speedup {reuse_speedup:.2}x",
            reuse.repeats, reuse.cold_wall, reuse.prepared_wall
        );
        println!(
            "\n  streaming ingest ({} entries across both sides):",
            ingest.entries
        );
        println!(
            "    load-then-prepare: wall {:>10.3?}  peak heap growth {:>12} bytes",
            ingest.full_wall, ingest.full_peak
        );
        println!(
            "    streaming prepare: wall {:>10.3?}  peak heap growth {:>12} bytes",
            ingest.streaming_wall, ingest.streaming_peak
        );
        println!(
            "    peak-memory reduction: {:.2}x (identical diffs asserted)",
            ingest.peak_reduction()
        );
        println!("\n  trace i/o ({} entries):", old.len());
        for m in &io {
            let entries_per_sec =
                |wall: Duration| old.len() as f64 / wall.as_secs_f64().max(1e-12);
            println!(
                "    {:>6}: {:>9} bytes ({:>5.1} B/entry)  write {:>10.0} entries/s  read {:>10.0} entries/s",
                m.encoding.to_string(),
                m.bytes,
                m.bytes as f64 / old.len().max(1) as f64,
                entries_per_sec(m.write_wall),
                entries_per_sec(m.read_wall)
            );
        }
    }
}
