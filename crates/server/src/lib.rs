//! # rprism-server
//!
//! The long-lived service layer of the RPrism reproduction: a **trace repository
//! daemon** that holds prepared traces across requests and answers semantic
//! diff/analyze queries over a TCP wire protocol — the step from "a CLI that dies with
//! its process" to the ROADMAP's production-scale system serving many clients.
//!
//! Three pieces, one crate (std-only, like the rest of the workspace):
//!
//! * [`TraceRepo`] — content-addressed on-disk storage. Blobs are keyed by
//!   [`rprism_format::content_hash`], the encoding-independent FNV-64 of the trace's
//!   canonical binary form, so re-uploading the same trace (in *either* encoding)
//!   stores nothing new. Hot [`PreparedTrace`](rprism::PreparedTrace) handles live in
//!   an LRU cache with a configurable byte budget; eviction drops handles only — the
//!   blobs stay on disk and reload on demand through
//!   [`Engine::load_prepared`](rprism::Engine::load_prepared)'s bounded-memory
//!   streaming pipeline.
//! * [`Server`] — a TCP daemon speaking the framed wire protocol of [`proto`]
//!   (length-prefixed, FNV-64-checksummed frames reusing `rprism_format`'s varint and
//!   checksum machinery). Connections are served by a bounded thread pool sharing
//!   **one** [`Engine`](rprism::Engine), so the session-level prepared and correlation
//!   caches finally amortize across requests and clients rather than within a single
//!   process run. Malformed input is answered with a structured error frame, never a
//!   panic or a hung connection; [`Request::Shutdown`](proto::Request::Shutdown)
//!   drains in-flight requests before the listener exits.
//! * [`Client`] — a blocking client with connect/read/write timeouts, used by the
//!   `rprism remote …` subcommands and the server-throughput bench.
//!
//! ## Quickstart
//!
//! ```no_run
//! use rprism_server::{Client, Server, ServerConfig};
//! use std::time::Duration;
//!
//! let config = ServerConfig::new("127.0.0.1:0", "/var/lib/rprism-repo");
//! let server = Server::bind(config)?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(&addr.to_string(), Duration::from_secs(5))?;
//! let old = client.put_path("old.rtr")?;
//! let new = client.put_path("new.rtr")?;
//! let diff = client.diff(old.hash, new.hash, 5)?;
//! println!("{} differences", diff.num_differences);
//! client.shutdown()?;
//! # Ok::<(), rprism_server::ServerError>(())
//! ```

mod client;
pub mod fs;
pub mod proto;
mod repo;
mod server;

pub use client::{Client, PutOutcome, RetryPolicy};
pub use proto::{WireAlgorithm, WireWatchEvent};
pub use fs::{FaultyFs, RepoFs, StdFs};
pub use repo::{RepoOptions, RepoStats, TraceRepo, DEFAULT_CACHE_BUDGET};
pub use server::{Conn, Server, ServerConfig};

/// Errors of the server stack: transport, protocol, storage and analysis failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Socket-level failure (connect, bind, read, write, timeout).
    Io(std::io::Error),
    /// A frame or message failed to decode (length bound, checksum, unknown tag,
    /// malformed field).
    Proto(rprism_format::FormatError),
    /// A trace blob failed to decode or store.
    Format(rprism_format::FormatError),
    /// The engine failed to diff/analyze (only possible with the LCS baseline).
    Engine(rprism::Error),
    /// The peer reported an error (the message of its error frame).
    Remote(String),
    /// A request named a content hash the repository does not hold.
    UnknownTrace {
        /// The hash that was requested.
        hash: u64,
    },
    /// The repository directory is missing, not a directory, or not writable.
    Repo(String),
    /// A stored blob failed verification when read back and was quarantined; the
    /// repository stays up, and the blob's bytes are preserved under `quarantine/`
    /// for forensics. Re-uploading the trace heals the entry.
    CorruptTrace {
        /// The content hash whose blob was quarantined.
        hash: u64,
    },
    /// The server is saturated (accept backlog full) and shed this connection
    /// before reading a request. Retry after the hinted delay.
    Busy {
        /// Server-suggested minimum backoff before retrying.
        retry_after_ms: u32,
    },
    /// The server's ingest check denied the watched trace; the watch was torn down.
    /// The full structured report is here for rendering — the same diagnostics a
    /// local denied check would print.
    CheckDenied(Box<rprism::CheckReport>),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::Proto(e) => write!(f, "wire protocol error: {e}"),
            ServerError::Format(e) => write!(f, "trace format error: {e}"),
            ServerError::Engine(e) => write!(f, "analysis error: {e}"),
            ServerError::Remote(message) => write!(f, "server error: {message}"),
            ServerError::UnknownTrace { hash } => {
                write!(f, "unknown trace {hash:016x} (not in the repository)")
            }
            ServerError::Repo(message) => write!(f, "repository error: {message}"),
            ServerError::CorruptTrace { hash } => write!(
                f,
                "trace {hash:016x} failed verification and was quarantined \
                 (re-upload it to heal the entry)"
            ),
            ServerError::Busy { retry_after_ms } => {
                write!(f, "server busy; retry after {retry_after_ms} ms")
            }
            ServerError::CheckDenied(report) => write!(
                f,
                "watch denied by the server's ingest check: {} diagnostic(s) on {:?}",
                report.diagnostics.len(),
                report.trace_name
            ),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Proto(e) | ServerError::Format(e) => Some(e),
            ServerError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<rprism::Error> for ServerError {
    fn from(e: rprism::Error) -> Self {
        ServerError::Engine(e)
    }
}

/// The crate-wide result alias.
pub type Result<T, E = ServerError> = std::result::Result<T, E>;
