//! Precomputed, interned event keys: the data-oriented backbone of the diff hot path.
//!
//! [`EventKey`](crate::eq::EventKey) canonicalizes what `=e` compares, but it is an owned,
//! heap-allocating value (two `String`s plus an operand `Vec`), so algorithms that compare
//! millions of entries pay allocator and string-compare traffic instead of the O(1)
//! comparisons the paper's cost model assumes. [`KeyedTrace`] fixes that: it is built
//! *once* per trace and stores, per entry, a [`CompactEventKey`] — interned
//! [`Symbol`]s for every name, the operand list flattened into one shared arena, and a
//! precomputed 64-bit content hash. After the build, comparing two entries is a hash
//! check followed (on the rare hash hit) by integer slice comparison: no allocation, no
//! string traversal, `Copy`-cheap keys that can cross thread — and eventually shard —
//! boundaries.

use crate::entry::TraceEntry;
use crate::event::{Event, EventKind};
use crate::intern::{intern, Symbol};
use crate::objrep::ValueFingerprint;
use crate::trace::Trace;

/// A compact, `Copy` canonical key for one trace entry.
///
/// Operand data lives in the owning [`KeyedTrace`]'s arena (`ops_start`/`ops_len` index
/// into it), so a key is 24 bytes regardless of operand count. A bare key is *not*
/// directly comparable (it deliberately implements neither `PartialEq` nor `Hash`: its
/// arena offsets are position-, not content-, dependent) — semantic `=e` comparison goes
/// through [`KeyRef`] or [`KeyedTrace::key_eq`], which resolve the arenas on both sides.
#[derive(Clone, Copy, Debug)]
pub struct CompactEventKey {
    /// Precomputed 64-bit FNV-1a hash over the event kind, name symbol and operand
    /// identities. Used as a fast inequality filter and as the hash of the key.
    pub hash: u64,
    /// The event form.
    pub kind: EventKind,
    /// The interned field/method/class name the event mentions, if any.
    pub name: Option<Symbol>,
    ops_start: u32,
    ops_len: u32,
}

impl CompactEventKey {
    /// The number of operands this key covers.
    pub fn num_operands(&self) -> usize {
        self.ops_len as usize
    }
}

/// One operand identity: interned class name plus value fingerprint — exactly the
/// information `=e` compares per operand, reduced to 12 bytes of plain data.
pub type OperandId = (Symbol, ValueFingerprint);

/// All entries of one trace reduced to compact keys, plus the shared operand arena.
#[derive(Clone, Debug, Default)]
pub struct KeyedTrace {
    keys: Vec<CompactEventKey>,
    operands: Vec<OperandId>,
}

impl KeyedTrace {
    /// Builds the keyed form of a trace in one pass. This is the only place where names
    /// are interned and hashes computed; everything downstream reuses the result.
    pub fn build(trace: &Trace) -> Self {
        let mut keyed = KeyedTrace {
            keys: Vec::with_capacity(trace.len()),
            operands: Vec::with_capacity(trace.len() * 2),
        };
        for entry in trace.iter() {
            keyed.push_entry(entry);
        }
        keyed
    }

    /// Appends the key of one entry (exposed for incremental/streaming construction).
    pub fn push_entry(&mut self, entry: &TraceEntry) {
        let event = &entry.event;
        let (kind, name) = match event {
            Event::Get { field, .. } => (EventKind::Get, Some(intern(field.as_str()))),
            Event::Set { field, .. } => (EventKind::Set, Some(intern(field.as_str()))),
            Event::Call { method, .. } => (EventKind::Call, Some(intern(method.as_str()))),
            Event::Return { method, .. } => (EventKind::Return, Some(intern(method.as_str()))),
            Event::Init { class, .. } => (EventKind::Init, Some(intern(class))),
            Event::Fork { .. } => (EventKind::Fork, None),
            Event::End { .. } => (EventKind::End, None),
        };
        let ops_start = u32::try_from(self.operands.len()).expect("operand arena overflow");
        for op in event.operands() {
            self.operands.push((intern(&op.class), op.fingerprint));
        }
        let ops_len = u32::try_from(self.operands.len()).expect("operand arena overflow")
            - ops_start;

        let mut h = KeyHasher::new();
        h.write_u64(kind as u64 + 1);
        h.write_u64(name.map_or(u64::MAX, |s| s.index() as u64));
        for (class, fp) in &self.operands[ops_start as usize..(ops_start + ops_len) as usize] {
            h.write_u64(class.index() as u64);
            h.write_u64(fp.0);
        }
        self.keys.push(CompactEventKey {
            hash: h.finish(),
            kind,
            name,
            ops_start,
            ops_len,
        });
    }

    /// Number of keyed entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// The in-memory footprint of the keyed representation (keys plus operand arena),
    /// used by the differencers' working-set cost model.
    pub fn estimated_bytes(&self) -> u64 {
        (self.keys.len() * std::mem::size_of::<CompactEventKey>()
            + self.operands.len() * std::mem::size_of::<OperandId>()) as u64
    }

    /// Returns `true` when no entries are keyed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The compact key of the entry at `index`.
    pub fn compact(&self, index: usize) -> CompactEventKey {
        self.keys[index]
    }

    /// The operand identities of a key.
    pub fn operands_of(&self, key: &CompactEventKey) -> &[OperandId] {
        &self.operands[key.ops_start as usize..(key.ops_start + key.ops_len) as usize]
    }

    /// A borrowed, arena-resolving handle to the key of one entry; comparable across
    /// different `KeyedTrace`s.
    pub fn key(&self, index: usize) -> KeyRef<'_> {
        KeyRef {
            trace: self,
            index: index as u32,
        }
    }

    /// `=e` between entry `i` of this keyed trace and entry `j` of `other`, by
    /// precomputed key: one hash compare in the common case, integer slice compare on
    /// hash equality. Never allocates.
    #[inline]
    pub fn key_eq(&self, i: usize, other: &KeyedTrace, j: usize) -> bool {
        let a = &self.keys[i];
        let b = &other.keys[j];
        a.hash == b.hash
            && a.kind == b.kind
            && a.name == b.name
            && self.operands_of(a) == other.operands_of(b)
    }
}

/// A cheap (`Copy`) handle to one entry's key that resolves the operand arena for exact,
/// allocation-free cross-trace comparison. This is the element type the LCS algorithms
/// run over in the keyed pipeline.
#[derive(Clone, Copy, Debug)]
pub struct KeyRef<'a> {
    trace: &'a KeyedTrace,
    index: u32,
}

impl KeyRef<'_> {
    /// The compact key this handle points at.
    pub fn compact(&self) -> CompactEventKey {
        self.trace.keys[self.index as usize]
    }
}

impl PartialEq for KeyRef<'_> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.trace
            .key_eq(self.index as usize, other.trace, other.index as usize)
    }
}

impl Eq for KeyRef<'_> {}

impl std::hash::Hash for KeyRef<'_> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.trace.keys[self.index as usize].hash);
    }
}

/// FNV-1a over 64-bit words (deterministic across processes, like
/// [`ValueRepr::fingerprint`](crate::objrep::ValueRepr::fingerprint)).
struct KeyHasher(u64);

impl KeyHasher {
    fn new() -> Self {
        KeyHasher(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{EntryId, ThreadId};
    use crate::eq::{event_eq, EventKey};
    use crate::objrep::{CreationSeq, Loc, ObjRep};
    use crate::testgen::{arbitrary_entry, Rng};
    use rprism_lang::{FieldName, MethodName};

    fn trace_of(entries: Vec<TraceEntry>) -> Trace {
        let mut t = Trace::named("keyed-test");
        for e in entries {
            t.push(e);
        }
        t
    }

    fn set_entry(field: &str, value: i64) -> TraceEntry {
        TraceEntry::new(
            EntryId(0),
            ThreadId(0),
            MethodName::new("m"),
            ObjRep::opaque_object(Loc(1), "Ctx", CreationSeq(0)),
            Event::Set {
                target: ObjRep::opaque_object(Loc(2), "NUM", CreationSeq(0)),
                field: FieldName::new(field),
                value: ObjRep::prim("Int", value.to_string()),
            },
        )
    }

    #[test]
    fn keyed_equality_matches_event_eq_on_handcrafted_entries() {
        let t = trace_of(vec![
            set_entry("min", 32),
            set_entry("min", 32),
            set_entry("min", 1),
            set_entry("max", 32),
        ]);
        let k = KeyedTrace::build(&t);
        assert!(k.key_eq(0, &k, 1));
        assert!(!k.key_eq(0, &k, 2));
        assert!(!k.key_eq(0, &k, 3));
        assert_eq!(k.key(0), k.key(1));
        assert_ne!(k.key(1), k.key(2));
    }

    #[test]
    fn keyed_equality_is_equivalent_to_eventkey_equality_on_arbitrary_events() {
        // The tentpole invariant: CompactEventKey equality ≡ EventKey equality ≡ event_eq,
        // exercised over deterministic pseudo-random events with heavy collisions.
        let mut rng = Rng::new(0xfeed);
        let entries: Vec<TraceEntry> = (0..160).map(|_| arbitrary_entry(&mut rng)).collect();
        let left = trace_of(entries.iter().take(80).cloned().collect());
        let right = trace_of(entries.iter().skip(80).cloned().collect());
        let lk = KeyedTrace::build(&left);
        let rk = KeyedTrace::build(&right);

        for i in 0..left.len() {
            for j in 0..right.len() {
                let by_key = lk.key_eq(i, &rk, j);
                let by_eventkey = EventKey::of(&left[i]) == EventKey::of(&right[j]);
                let by_eq = event_eq(&left[i], &right[j]);
                assert_eq!(by_key, by_eventkey, "key vs EventKey at ({i},{j})");
                assert_eq!(by_key, by_eq, "key vs event_eq at ({i},{j})");
            }
        }
    }

    #[test]
    fn cross_trace_keyrefs_compare_and_hash_consistently() {
        use std::collections::HashSet;
        let a = trace_of(vec![set_entry("min", 32)]);
        let b = trace_of(vec![set_entry("min", 32), set_entry("min", 7)]);
        let (ka, kb) = (KeyedTrace::build(&a), KeyedTrace::build(&b));
        assert_eq!(ka.key(0), kb.key(0));
        let mut set = HashSet::new();
        set.insert(ka.key(0));
        set.insert(kb.key(0));
        set.insert(kb.key(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn operands_are_arena_backed() {
        let t = trace_of(vec![set_entry("min", 32)]);
        let k = KeyedTrace::build(&t);
        let key = k.compact(0);
        // set(target, value) → two operands.
        assert_eq!(key.num_operands(), 2);
        let ops = k.operands_of(&key);
        assert_eq!(ops[0].0.as_str(), "NUM");
        assert_eq!(ops[1].0.as_str(), "Int");
    }
}
