//! Equivalence of the keyed, parallel diff pipeline with the frozen seed-style baseline
//! on the four §5.2 case studies: the refactor must not change *what* is computed — the
//! similarity sets and difference sequences of the suspected comparison are identical —
//! while the compare-op count may only shrink (prefix/suffix stripping now happens
//! inside `lcs_dp`). The regression analysis itself must be deterministic run-to-run.

// The keyed-pipeline side is driven through the deprecated one-shot shim on purpose:
// this suite pins the *algorithm* against the frozen seed baseline, independent of the
// session API (whose own equivalence suite lives at the workspace root).
#![allow(deprecated)]

use rprism::Engine;
use rprism_bench::seed_baseline::seed_views_diff;
use rprism_diff::{lcs_diff, views_diff, LcsDiffOptions, LcsKernel, ViewsDiffOptions};
use rprism_regress::DiffAlgorithm;
use rprism_workloads::casestudies;

#[test]
fn keyed_pipeline_matches_seed_baseline_on_all_case_studies() {
    for scenario in casestudies::all() {
        let traces = scenario
            .trace_all()
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let old = &traces.traces.old_regressing;
        let new = &traces.traces.new_regressing;

        let seed = seed_views_diff(old, new, &ViewsDiffOptions::default());
        // Both secondary-LCS kernels must reproduce the seed exactly: the bit-parallel
        // kernel (the default) replays the DP tie-breaks during traceback and meters
        // DP-equivalent compare counts, so it is indistinguishable from `Dp` here.
        for kernel in [LcsKernel::Dp, LcsKernel::BitParallel] {
            let options = ViewsDiffOptions::builder().secondary_kernel(kernel).build();
            let keyed = views_diff(old, new, &options);

            assert_eq!(
                seed.matching.normalized_pairs(),
                keyed.matching.normalized_pairs(),
                "{} ({kernel:?}): similarity sets diverged",
                scenario.name
            );
            assert_eq!(
                seed.sequences, keyed.sequences,
                "{} ({kernel:?}): difference sequences diverged",
                scenario.name
            );
            // The keyed pipeline folds prefix/suffix stripping into the LCS kernel, so
            // it may only ever do *less* comparison work than the seed, never more.
            assert!(
                keyed.cost.compare_ops <= seed.cost.compare_ops,
                "{} ({kernel:?}): keyed pipeline did more compares ({}) than the seed ({})",
                scenario.name,
                keyed.cost.compare_ops,
                seed.cost.compare_ops
            );
        }
    }
}

#[test]
fn lcs_backends_produce_identical_matchings_on_all_case_studies() {
    // The §3.2 baseline with the bit-parallel kernel is matching-identical to the DP
    // kernel — same pairs, same sequences, same metered compares — on every suspected
    // comparison of the four case studies.
    for scenario in casestudies::all() {
        let traces = scenario.trace_all().unwrap();
        let old = &traces.traces.old_regressing;
        let new = &traces.traces.new_regressing;

        let run = |kernel: LcsKernel| {
            lcs_diff(
                old,
                new,
                &LcsDiffOptions::builder().kernel(kernel).build(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name))
        };
        let dp = run(LcsKernel::Dp);
        let bp = run(LcsKernel::BitParallel);
        assert_eq!(
            dp.matching.normalized_pairs(),
            bp.matching.normalized_pairs(),
            "{}: LCS kernels diverged",
            scenario.name
        );
        assert_eq!(dp.sequences, bp.sequences, "{}", scenario.name);
        assert_eq!(dp.cost.compare_ops, bp.cost.compare_ops, "{}", scenario.name);
    }
}

#[test]
fn anchored_analysis_reaches_the_same_verdicts_as_the_exact_modes() {
    // Verdict-equivalence, as documented in MIGRATION.md: the anchored mode's
    // matchings may legitimately differ from the exact modes (anchors commit early),
    // but the *analysis conclusions* must not — on every case study it covers exactly
    // the ground-truth markers the exact views analysis covers, misses none it finds,
    // and agrees on whether the regression was detected at all.
    for scenario in casestudies::all() {
        let exact = scenario
            .analyze_and_evaluate(&DiffAlgorithm::Views(ViewsDiffOptions::default()))
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let anchored = scenario
            .analyze_and_evaluate(&DiffAlgorithm::Anchored(Default::default()))
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));

        assert_eq!(exact.report.algorithm, "views");
        assert_eq!(anchored.report.algorithm, "anchored");
        assert_eq!(
            anchored.quality.covered_markers, exact.quality.covered_markers,
            "{}: anchored covered different ground-truth markers",
            scenario.name
        );
        assert_eq!(
            anchored.quality.false_negatives, exact.quality.false_negatives,
            "{}: anchored missed markers the exact analysis found",
            scenario.name
        );
        assert_eq!(
            anchored.quality.reported_sequences > 0,
            exact.quality.reported_sequences > 0,
            "{}: anchored disagreed on whether a regression exists",
            scenario.name
        );
    }
}

#[test]
fn analysis_set_sizes_are_stable_across_runs() {
    // The full regression analysis (parallel preparation, keyed diffs, symbol-keyed
    // difference sets) is deterministic: two runs agree on every set size and verdict.
    for scenario in casestudies::all() {
        let traces = scenario.trace_all().unwrap();
        let engine = Engine::builder()
            .views_options(ViewsDiffOptions::default())
            .analysis_mode(scenario.analysis_mode())
            .build();
        let run = || {
            engine
                .analyze(&traces.traces)
                .expect("views analysis never fails")
        };
        let a = run();
        let b = run();
        assert_eq!(a.suspected.len(), b.suspected.len(), "{}", scenario.name);
        assert_eq!(a.expected.len(), b.expected.len(), "{}", scenario.name);
        assert_eq!(a.regression.len(), b.regression.len(), "{}", scenario.name);
        assert_eq!(a.candidates.len(), b.candidates.len(), "{}", scenario.name);
        assert_eq!(a.compare_ops, b.compare_ops, "{}", scenario.name);
        let verdicts =
            |r: &rprism_regress::RegressionReport| -> Vec<bool> {
                r.sequences.iter().map(|s| s.regression_related).collect()
            };
        assert_eq!(verdicts(&a), verdicts(&b), "{}", scenario.name);
    }
}
