//! Conformance cases for the byte-level edge conditions fixed alongside streaming
//! ingestion:
//!
//! * **Canonical varints** — the binary reader must reject non-canonical (overlong)
//!   LEB128 encodings. Before the fix, an overlong varint with a matching checksum
//!   decoded silently and re-encoded to *different* bytes, breaking the format's
//!   byte-stability guarantee; these are regression tests that fail on that behaviour.
//! * **Sniffing** — a UTF-8 BOM is accepted (and stripped) in front of both encodings,
//!   a stream that ends inside the `RPTR` magic reports truncation rather than a JSONL
//!   parse error, and an empty stream names the problem.

use rprism_format::{trace_from_bytes, trace_to_bytes, Encoding, FormatError};
use rprism_trace::testgen::{arbitrary_trace, Rng};
use rprism_trace::Trace;

fn sample(seed: u64, len: usize) -> Trace {
    let mut rng = Rng::new(seed);
    arbitrary_trace(&mut rng, len)
}

/// FNV-1a 64 over `bytes` (the checksum function of the binary footer).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Rewrites the single-byte varint at `pos` into its two-byte overlong form and fixes
/// the footer checksum so only the canonicality check can reject the stream.
fn flip_varint_to_overlong(bytes: &[u8], pos: usize) -> Vec<u8> {
    let value = bytes[pos];
    assert!(value < 0x80, "test expects a single-byte varint at {pos}");
    let mut damaged = Vec::with_capacity(bytes.len() + 1);
    damaged.extend_from_slice(&bytes[..pos]);
    damaged.push(value | 0x80);
    damaged.push(0x00);
    damaged.extend_from_slice(&bytes[pos + 1..bytes.len() - 8]);
    let checksum = fnv64(&damaged);
    damaged.extend_from_slice(&checksum.to_le_bytes());
    damaged
}

#[test]
fn overlong_entry_count_varint_is_rejected_despite_valid_checksum() {
    let trace = sample(0x0b07, 12);
    let bytes = trace_to_bytes(&trace, Encoding::Binary).unwrap();
    // Footer: TAG_END, varint(entry count), checksum u64 — 12 entries is one byte.
    let count_pos = bytes.len() - 9;
    assert_eq!(bytes[count_pos], 12);
    let damaged = flip_varint_to_overlong(&bytes, count_pos);
    match trace_from_bytes(&damaged) {
        Err(FormatError::Corrupt { detail, .. }) => {
            assert!(detail.contains("overlong"), "unexpected detail {detail:?}")
        }
        other => panic!("overlong entry count accepted: {other:?}"),
    }
}

#[test]
fn overlong_string_length_varint_is_rejected_despite_valid_checksum() {
    let trace = sample(0x51ee, 12);
    let bytes = trace_to_bytes(&trace, Encoding::Binary).unwrap();
    // Header: magic(4) + version(2) + flags(2) + three length-prefixed meta strings.
    let mut pos = 8;
    for _ in 0..3 {
        let len = bytes[pos] as usize;
        assert!(len < 0x80);
        pos += 1 + len;
    }
    // First record must be a `sym` definition; its length varint follows the tag.
    assert_eq!(bytes[pos], 0x01, "expected a sym record after the header");
    let damaged = flip_varint_to_overlong(&bytes, pos + 1);
    match trace_from_bytes(&damaged) {
        Err(FormatError::Corrupt { detail, .. }) => {
            assert!(detail.contains("overlong"), "unexpected detail {detail:?}")
        }
        other => panic!("overlong string length accepted: {other:?}"),
    }
}

#[test]
fn every_single_byte_varint_flipped_to_overlong_is_rejected() {
    // Fuzz-suite variant of the regression: take every byte that terminates a varint
    // candidate (high bit clear), rewrite it to the overlong form with a repaired
    // checksum, and require a structured error — never a silent decode. Bytes that are
    // not actually varint positions may fail with any structured error; the property
    // under test is that nothing decodes from bytes the writer could not have produced.
    let trace = sample(0xfa22, 8);
    let bytes = trace_to_bytes(&trace, Encoding::Binary).unwrap();
    let body_end = bytes.len() - 8;
    let original = trace_from_bytes(&bytes).unwrap();
    let mut rejected = 0usize;
    for pos in 8..body_end {
        if bytes[pos] >= 0x80 {
            continue;
        }
        let damaged = flip_varint_to_overlong(&bytes, pos);
        match trace_from_bytes(&damaged) {
            Err(_) => rejected += 1,
            Ok(decoded) => {
                // A flip inside string *content* produces a different but valid string;
                // the result must then differ from the original trace (no aliasing of
                // two byte streams onto one trace).
                assert_ne!(
                    decoded, original,
                    "byte {pos} flipped to overlong decoded to the original trace"
                );
            }
        }
    }
    assert!(rejected > 0, "no overlong rewrite was rejected");
}

#[test]
fn utf8_bom_is_stripped_from_both_encodings() {
    let trace = sample(0xb0b0, 20);
    for encoding in [Encoding::Binary, Encoding::Jsonl] {
        let bytes = trace_to_bytes(&trace, encoding).unwrap();
        let mut with_bom = vec![0xef, 0xbb, 0xbf];
        with_bom.extend_from_slice(&bytes);
        let decoded = trace_from_bytes(&with_bom)
            .unwrap_or_else(|e| panic!("BOM-prefixed {encoding} stream rejected: {e}"));
        assert_eq!(decoded, trace, "BOM-prefixed {encoding} round trip diverged");
    }
}

#[test]
fn stream_ending_inside_the_magic_reports_truncation_not_json_noise() {
    for cut in 1..4 {
        let err = trace_from_bytes(&rprism_format::MAGIC[..cut]).unwrap_err();
        assert!(
            matches!(err, FormatError::Truncated { offset } if offset == cut as u64),
            "magic prefix of {cut} bytes: {err:?}"
        );
    }
}

#[test]
fn empty_stream_has_a_dedicated_message() {
    match trace_from_bytes(b"") {
        Err(FormatError::Corrupt { detail, .. }) => {
            assert!(detail.contains("empty"), "unexpected detail {detail:?}")
        }
        other => panic!("empty stream: {other:?}"),
    }
    // A BOM alone is still an empty stream.
    match trace_from_bytes(&[0xef, 0xbb, 0xbf]) {
        Err(FormatError::Corrupt { detail, .. }) => {
            assert!(detail.contains("empty"), "unexpected detail {detail:?}")
        }
        other => panic!("BOM-only stream: {other:?}"),
    }
}
