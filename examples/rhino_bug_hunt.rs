//! Generates Rhino-like workloads with injected regressions (following the paper's
//! root-cause distribution) and checks how precisely the analysis pins down each cause.
//!
//! Run with `cargo run --release --example rhino_bug_hunt [-- <bugs>]`.

use rprism_regress::DiffAlgorithm;
use rprism_workloads::{dataset, RhinoConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bugs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let template = RhinoConfig {
        seed: 0,
        modules: 5,
        script_length: 30,
        max_injection_attempts: 40,
    };

    for bug in dataset(500, bugs, &template) {
        let outcome = bug
            .scenario
            .analyze_and_evaluate(&DiffAlgorithm::Views(Default::default()))?;
        println!(
            "{}: injected {} in {}.{} — {} diff sequences, {} regression-related, {} false positives, {} false negatives",
            bug.scenario.name,
            bug.mutation.cause.label(),
            bug.mutation.class,
            bug.mutation.method,
            outcome.report.sequences.len(),
            outcome.report.num_regression_sequences(),
            outcome.quality.false_positives,
            outcome.quality.false_negatives,
        );
    }
    Ok(())
}
