//! Object representations stored in trace entries.
//!
//! The paper first represents an object in a trace simply by its location `l` (§2.2), and
//! then — for differencing across program versions, where locations are meaningless —
//! extends representations to tuples `⟨l, r⟩` where `r` is a recursively computed value
//! serialization (Fig. 8):
//!
//! ```text
//! object θ' ::= ⟨l, r⟩
//! serialization r ::= D:[d] | C:[r̄]
//! ```
//!
//! RPrism approximates `r` in the implementation with Java's `hashCode`/`toString`
//! (truncated to 128 characters), forcing the representation to be *empty* when an object
//! still uses the default `java.lang.Object` implementations, because such values are not
//! stable across program versions (§5). We reproduce all three ingredients:
//!
//! * [`ValueRepr`] — the full recursive serialization `r` (bounded by a depth limit),
//! * [`ValueFingerprint`] — a stable 64-bit hash of the serialization (the `hashCode`
//!   analogue) plus a truncated printed form (the `toString` analogue),
//! * `ObjRep::Opaque`-style empty fingerprints for identity-only objects,
//! * per-class [`CreationSeq`] numbers, the alternative correlation basis used by target-
//!   and active-object view correlation ("class-specific object creation sequence number",
//!   §3.1).


/// The maximum number of characters kept from a printed value representation, mirroring
/// RPrism's truncation of `toString` output (§5).
pub const PRINTED_REPR_MAX: usize = 128;

/// The maximum recursion depth used when serializing object graphs into [`ValueRepr`]s.
pub const VALUE_REPR_MAX_DEPTH: usize = 4;

/// A heap location `l`. Locations are only meaningful within a single execution; they are
/// never compared across traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub u64);

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A per-class object creation sequence number: the n-th instance of class `C` created by
/// an execution gets sequence number `n`. Unlike locations, creation sequence numbers are
/// comparable across executions of different program versions (paper §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CreationSeq(pub u64);

impl std::fmt::Display for CreationSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The recursive value serialization `r ::= D:[d] | C:[r̄]` of Fig. 8.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueRepr {
    /// A primitive value `D:[d]`: the primitive type name and its printed value.
    Prim {
        /// The primitive type name (`Int`, `Bool`, …).
        type_name: String,
        /// The printed value (`"42"`, `"true"`, …).
        printed: String,
    },
    /// An object value `C:[r̄]`: the class name and the serializations of its fields.
    Object {
        /// The dynamic class of the object.
        class: String,
        /// Recursively serialized field values, in field declaration order.
        fields: Vec<ValueRepr>,
    },
    /// A reference cycle or depth cut-off encountered during serialization.
    Truncated,
    /// The null reference.
    Null,
    /// An object whose representation is deliberately empty because it carries no
    /// version-stable value information (the "default hashCode/toString" case of §5).
    Opaque,
}

impl ValueRepr {
    /// Computes the stable 64-bit fingerprint of this serialization.
    ///
    /// The hash is a hand-rolled FNV-1a so that fingerprints are deterministic across
    /// processes and Rust versions (the analyses persist and compare them).
    pub fn fingerprint(&self) -> ValueFingerprint {
        let mut h = Fnv1a::new();
        self.hash_into(&mut h);
        ValueFingerprint(h.finish())
    }

    fn hash_into(&self, h: &mut Fnv1a) {
        match self {
            ValueRepr::Prim { type_name, printed } => {
                h.write_u8(1);
                h.write_str(type_name);
                h.write_str(printed);
            }
            ValueRepr::Object { class, fields } => {
                h.write_u8(2);
                h.write_str(class);
                for f in fields {
                    f.hash_into(h);
                }
            }
            ValueRepr::Truncated => h.write_u8(3),
            ValueRepr::Null => h.write_u8(4),
            ValueRepr::Opaque => h.write_u8(5),
        }
    }

    /// A compact printed form (the `toString` analogue), truncated to
    /// [`PRINTED_REPR_MAX`] characters.
    pub fn printed(&self) -> String {
        let mut s = String::new();
        self.print_into(&mut s);
        truncate_printed(s)
    }

    fn print_into(&self, out: &mut String) {
        if out.len() > PRINTED_REPR_MAX {
            return;
        }
        match self {
            ValueRepr::Prim { printed, .. } => out.push_str(printed),
            ValueRepr::Object { class, fields } => {
                out.push_str(class);
                out.push('[');
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    f.print_into(out);
                }
                out.push(']');
            }
            ValueRepr::Truncated => out.push('…'),
            ValueRepr::Null => out.push_str("null"),
            ValueRepr::Opaque => {}
        }
    }
}

fn truncate_printed(s: String) -> String {
    if s.chars().count() <= PRINTED_REPR_MAX {
        s
    } else {
        s.chars().take(PRINTED_REPR_MAX).collect()
    }
}

/// A stable 64-bit hash of a [`ValueRepr`]; the version-independent identity used by
/// event equality and object-view correlation. The zero fingerprint is reserved for
/// representations that carry no information ([`ValueRepr::Opaque`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueFingerprint(pub u64);

impl ValueFingerprint {
    /// The fingerprint of an information-free representation. Two opaque fingerprints are
    /// *not* treated as evidence of correlation.
    pub const OPAQUE: ValueFingerprint = ValueFingerprint(0);

    /// Returns `true` if this fingerprint carries comparable information.
    pub fn is_meaningful(self) -> bool {
        self != Self::OPAQUE
    }
}

/// The representation of an object (or primitive value) as recorded in a trace entry: the
/// extended `⟨l, r⟩` tuple of Fig. 8, enriched with the dynamic class name and the
/// per-class creation sequence number used by the correlation heuristics.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjRep {
    /// The heap location, when the value is a heap object (`None` for primitives and
    /// `null`). Execution-local; never compared across traces.
    pub loc: Option<Loc>,
    /// The dynamic class name (or primitive type name).
    pub class: String,
    /// The stable value fingerprint (`hashCode` analogue); [`ValueFingerprint::OPAQUE`]
    /// when the value carries no version-stable information.
    pub fingerprint: ValueFingerprint,
    /// A truncated printed representation (`toString` analogue), for reports and debugging.
    pub printed: String,
    /// The per-class creation sequence number, when the value is a heap object.
    pub creation_seq: Option<CreationSeq>,
}

impl ObjRep {
    /// The representation of the null reference.
    pub fn null() -> Self {
        ObjRep {
            loc: None,
            class: "null".to_owned(),
            fingerprint: ValueRepr::Null.fingerprint(),
            printed: "null".to_owned(),
            creation_seq: None,
        }
    }

    /// The representation of a primitive value, from its type name and printed form.
    pub fn prim(type_name: impl Into<String>, printed: impl Into<String>) -> Self {
        let type_name = type_name.into();
        let printed = truncate_printed(printed.into());
        let repr = ValueRepr::Prim {
            type_name: type_name.clone(),
            printed: printed.clone(),
        };
        ObjRep {
            loc: None,
            class: type_name,
            fingerprint: repr.fingerprint(),
            printed,
            creation_seq: None,
        }
    }

    /// The representation of a heap object from its full value serialization.
    pub fn object(loc: Loc, class: impl Into<String>, seq: CreationSeq, repr: &ValueRepr) -> Self {
        ObjRep {
            loc: Some(loc),
            class: class.into(),
            fingerprint: repr.fingerprint(),
            printed: repr.printed(),
            creation_seq: Some(seq),
        }
    }

    /// The representation of a heap object that provides no version-stable value
    /// information (identity-only object, §5): the fingerprint is forced to be empty.
    pub fn opaque_object(loc: Loc, class: impl Into<String>, seq: CreationSeq) -> Self {
        ObjRep {
            loc: Some(loc),
            class: class.into(),
            fingerprint: ValueFingerprint::OPAQUE,
            printed: String::new(),
            creation_seq: Some(seq),
        }
    }

    /// Returns `true` when this representation denotes a heap object (it has a location).
    pub fn is_heap_object(&self) -> bool {
        self.loc.is_some()
    }

    /// The "underlying primitive value" identity of this representation, used by event
    /// equality (`=e`): class name plus fingerprint. Locations are deliberately excluded.
    pub fn value_identity(&self) -> (&str, ValueFingerprint) {
        (&self.class, self.fingerprint)
    }

    /// Returns `true` if two representations plausibly denote "the same" object across
    /// two executions: either their value fingerprints match (and are meaningful), or
    /// they are instances of the same class with the same creation sequence number.
    /// This is the object-correlation heuristic of §3.1.
    pub fn correlates_with(&self, other: &ObjRep) -> bool {
        if self.class != other.class {
            return false;
        }
        if self.fingerprint.is_meaningful()
            && other.fingerprint.is_meaningful()
            && self.fingerprint == other.fingerprint
        {
            return true;
        }
        match (self.creation_seq, other.creation_seq) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for ObjRep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.loc, self.creation_seq) {
            (Some(_), Some(seq)) => write!(f, "{}-{}", self.class, seq.0 + 1),
            _ => {
                if self.printed.is_empty() {
                    write!(f, "{}", self.class)
                } else {
                    write!(f, "{}({})", self.class, self.printed)
                }
            }
        }
    }
}

/// A tiny deterministic FNV-1a hasher (not `DefaultHasher`, whose output may change
/// between Rust releases).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.write_u8(*b);
        }
        // Delimit to avoid ambiguity between consecutive strings.
        self.write_u8(0xff);
    }

    fn finish(&self) -> u64 {
        // Reserve 0 for the opaque fingerprint.
        if self.0 == 0 {
            1
        } else {
            self.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_repr(v: i64) -> ValueRepr {
        ValueRepr::Prim {
            type_name: "Int".into(),
            printed: v.to_string(),
        }
    }

    #[test]
    fn fingerprints_are_deterministic_and_distinguish_values() {
        assert_eq!(int_repr(42).fingerprint(), int_repr(42).fingerprint());
        assert_ne!(int_repr(42).fingerprint(), int_repr(43).fingerprint());
        assert_ne!(
            int_repr(42).fingerprint(),
            ValueRepr::Prim {
                type_name: "Float".into(),
                printed: "42".into()
            }
            .fingerprint()
        );
    }

    #[test]
    fn object_reprs_hash_recursively() {
        let a = ValueRepr::Object {
            class: "Range".into(),
            fields: vec![int_repr(32), int_repr(127)],
        };
        let b = ValueRepr::Object {
            class: "Range".into(),
            fields: vec![int_repr(1), int_repr(127)],
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.printed(), "Range[32,127]");
    }

    #[test]
    fn printed_repr_is_truncated() {
        let long = "x".repeat(500);
        let rep = ObjRep::prim("Str", long);
        assert_eq!(rep.printed.chars().count(), PRINTED_REPR_MAX);
    }

    #[test]
    fn opaque_objects_do_not_correlate_by_fingerprint() {
        let a = ObjRep::opaque_object(Loc(1), "Logger", CreationSeq(0));
        let b = ObjRep::opaque_object(Loc(99), "Logger", CreationSeq(0));
        // Same creation sequence — correlated via seq, not via fingerprint.
        assert!(a.correlates_with(&b));
        let c = ObjRep::opaque_object(Loc(5), "Logger", CreationSeq(3));
        assert!(!a.correlates_with(&c));
        assert!(!a.fingerprint.is_meaningful());
    }

    #[test]
    fn correlation_by_value_fingerprint() {
        let repr = ValueRepr::Object {
            class: "Range".into(),
            fields: vec![int_repr(32), int_repr(127)],
        };
        let a = ObjRep::object(Loc(1), "Range", CreationSeq(0), &repr);
        let b = ObjRep::object(Loc(77), "Range", CreationSeq(5), &repr);
        assert!(a.correlates_with(&b));
        let other = ValueRepr::Object {
            class: "Range".into(),
            fields: vec![int_repr(1), int_repr(127)],
        };
        let c = ObjRep::object(Loc(78), "Range", CreationSeq(6), &other);
        assert!(!a.correlates_with(&c));
    }

    #[test]
    fn different_classes_never_correlate() {
        let a = ObjRep::opaque_object(Loc(1), "A", CreationSeq(0));
        let b = ObjRep::opaque_object(Loc(1), "B", CreationSeq(0));
        assert!(!a.correlates_with(&b));
    }

    #[test]
    fn null_and_prims_have_no_location() {
        assert!(!ObjRep::null().is_heap_object());
        assert!(!ObjRep::prim("Int", "5").is_heap_object());
        assert!(ObjRep::opaque_object(Loc(0), "X", CreationSeq(0)).is_heap_object());
    }

    #[test]
    fn display_uses_class_and_sequence() {
        let a = ObjRep::opaque_object(Loc(9), "Logger", CreationSeq(0));
        assert_eq!(a.to_string(), "Logger-1");
        assert_eq!(ObjRep::prim("Int", "5").to_string(), "Int(5)");
        assert_eq!(ObjRep::null().to_string(), "null(null)");
    }

    #[test]
    fn value_identity_ignores_location() {
        let repr = int_repr(7);
        let a = ObjRep::object(Loc(1), "Int", CreationSeq(0), &repr);
        let b = ObjRep::object(Loc(2), "Int", CreationSeq(1), &repr);
        assert_eq!(a.value_identity(), b.value_identity());
    }
}
