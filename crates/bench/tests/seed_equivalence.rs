//! Equivalence of the keyed, parallel diff pipeline with the frozen seed-style baseline
//! on the four §5.2 case studies: the refactor must not change *what* is computed — the
//! similarity sets and difference sequences of the suspected comparison are identical —
//! while the compare-op count may only shrink (prefix/suffix stripping now happens
//! inside `lcs_dp`). The regression analysis itself must be deterministic run-to-run.

// The keyed-pipeline side is driven through the deprecated one-shot shim on purpose:
// this suite pins the *algorithm* against the frozen seed baseline, independent of the
// session API (whose own equivalence suite lives at the workspace root).
#![allow(deprecated)]

use rprism::Engine;
use rprism_bench::seed_baseline::seed_views_diff;
use rprism_diff::{views_diff, ViewsDiffOptions};
use rprism_workloads::casestudies;

#[test]
fn keyed_pipeline_matches_seed_baseline_on_all_case_studies() {
    for scenario in casestudies::all() {
        let traces = scenario
            .trace_all()
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let old = &traces.traces.old_regressing;
        let new = &traces.traces.new_regressing;

        let seed = seed_views_diff(old, new, &ViewsDiffOptions::default());
        let keyed = views_diff(old, new, &ViewsDiffOptions::default());

        assert_eq!(
            seed.matching.normalized_pairs(),
            keyed.matching.normalized_pairs(),
            "{}: similarity sets diverged",
            scenario.name
        );
        assert_eq!(
            seed.sequences, keyed.sequences,
            "{}: difference sequences diverged",
            scenario.name
        );
        // The keyed pipeline folds prefix/suffix stripping into lcs_dp, so it may only
        // ever do *less* comparison work than the seed, never more.
        assert!(
            keyed.cost.compare_ops <= seed.cost.compare_ops,
            "{}: keyed pipeline did more compares ({}) than the seed ({})",
            scenario.name,
            keyed.cost.compare_ops,
            seed.cost.compare_ops
        );
    }
}

#[test]
fn analysis_set_sizes_are_stable_across_runs() {
    // The full regression analysis (parallel preparation, keyed diffs, symbol-keyed
    // difference sets) is deterministic: two runs agree on every set size and verdict.
    for scenario in casestudies::all() {
        let traces = scenario.trace_all().unwrap();
        let engine = Engine::builder()
            .views_options(ViewsDiffOptions::default())
            .analysis_mode(scenario.analysis_mode())
            .build();
        let run = || {
            engine
                .analyze(&traces.traces)
                .expect("views analysis never fails")
        };
        let a = run();
        let b = run();
        assert_eq!(a.suspected.len(), b.suspected.len(), "{}", scenario.name);
        assert_eq!(a.expected.len(), b.expected.len(), "{}", scenario.name);
        assert_eq!(a.regression.len(), b.regression.len(), "{}", scenario.name);
        assert_eq!(a.candidates.len(), b.candidates.len(), "{}", scenario.name);
        assert_eq!(a.compare_ops, b.compare_ops, "{}", scenario.name);
        let verdicts =
            |r: &rprism_regress::RegressionReport| -> Vec<bool> {
                r.sequences.iter().map(|s| s.regression_related).collect()
            };
        assert_eq!(verdicts(&a), verdicts(&b), "{}", scenario.name);
    }
}
